//! Lepton → JPEG decompression: multithreaded, streaming, chunk-
//! independent.
//!
//! Each thread segment runs the full §3.4 pipeline concurrently:
//! arithmetic-decode a block with the model, immediately Huffman-encode
//! it into that segment's output stream (resumed mid-byte from the
//! segment's Huffman handover word). Segment outputs are forwarded to
//! the caller's sink in order as they are produced, so the first bytes
//! of the file leave the decoder long before the last segment finishes
//! (time-to-first-byte, §1).
//!
//! Segment jobs run on the pre-spawned [`Engine`] pool with per-worker
//! model arenas (reset, not reallocated, between jobs). The
//! single-segment case — most small files — runs inline on the calling
//! thread and pushes bytes straight into the sink: no queue handoff, no
//! channel, and streaming latency identical to the multithreaded path.

use crate::driver::{walk_segment, BlockOp};
use crate::engine::{Engine, EnvJob, Scratch};
use crate::error::LeptonError;
use crate::format::{packets, read_container, ContainerHeader, SegmentInfo};
use crate::security::{JobMeter, ResourceBudget};
use lepton_arith::{BoolDecoder, VecSource};
use lepton_jpeg::bitio::ScanWriter;
use lepton_jpeg::parser::{parse_with_limits, ParseLimits, ParsedJpeg};
use lepton_jpeg::scan::ScanEncoders;
use lepton_jpeg::CoefBlock;
use lepton_model::context::BlockNeighbors;
use lepton_model::{ComponentModel, ModelConfig};
use std::sync::mpsc::Sender;

/// Drain threshold: how many completed bytes accumulate before a chunk
/// is forwarded to the output channel.
const DRAIN_BYTES: usize = 32 << 10;

/// Where one segment's produced bytes go. Pooled segments send through
/// an *unbounded* channel to the in-order drain — a producer job must
/// never block holding a shared pool worker (a stalled consumer would
/// then starve unrelated codec calls), so buffering is bounded by the
/// in-flight file's output instead of a channel cap. The inline
/// single-segment path writes straight into the caller's sink.
trait SegSink {
    /// Forward `bytes`; `false` means the consumer is gone and the
    /// producer should finish quietly without sending more.
    fn send(&mut self, bytes: Vec<u8>) -> bool;
}

impl SegSink for Sender<Vec<u8>> {
    fn send(&mut self, bytes: Vec<u8>) -> bool {
        Sender::send(self, bytes).is_ok()
    }
}

/// Inline path: no channel, no buffering beyond the scan writer.
struct DirectSink<'s> {
    sink: &'s mut dyn FnMut(&[u8]),
}

impl SegSink for DirectSink<'_> {
    fn send(&mut self, bytes: Vec<u8>) -> bool {
        (self.sink)(&bytes);
        true
    }
}

/// Decode one thread segment: model-decode each block and Huffman-encode
/// it into the resumable scan writer, draining output incrementally.
/// The model pair is borrowed from the executing worker's arena.
struct SegDecoder<'a, T: SegSink> {
    parsed: &'a ParsedJpeg,
    /// Per-component Huffman encoders, resolved once per container
    /// (not per segment job) and shared by every segment.
    huff: &'a ScanEncoders<'a>,
    dec: BoolDecoder<VecSource>,
    models: &'a mut [ComponentModel; 2],
    writer: ScanWriter,
    prev_dc: [i16; 4],
    rst_emitted: u32,
    rst_limit: u32,
    pad_bit: bool,
    interval: u32,
    /// Output budget (exact bytes this segment owes).
    budget: usize,
    sent: usize,
    tx: T,
    /// Receiver disappeared; stop sending but finish quietly.
    receiver_gone: bool,
}

impl<T: SegSink> SegDecoder<'_, T> {
    fn drain(&mut self, force: bool) {
        if self.receiver_gone || (!force && self.writer.pending_len() < DRAIN_BYTES) {
            return;
        }
        let mut bytes = self.writer.take_bytes();
        if self.sent + bytes.len() > self.budget {
            bytes.truncate(self.budget - self.sent);
        }
        if bytes.is_empty() {
            return;
        }
        self.sent += bytes.len();
        if !self.tx.send(bytes) {
            self.receiver_gone = true;
        }
    }
}

impl<T: SegSink> BlockOp for SegDecoder<'_, T> {
    type Error = LeptonError;

    fn mcu_start(&mut self, mcu: u32) -> Result<(), LeptonError> {
        if self.interval > 0
            && mcu > 0
            && mcu.is_multiple_of(self.interval)
            && self.rst_emitted < self.rst_limit
        {
            self.writer.align(self.pad_bit);
            self.writer.write_rst((self.rst_emitted % 8) as u8);
            self.rst_emitted += 1;
            self.prev_dc = [0; 4];
        }
        Ok(())
    }

    fn block(
        &mut self,
        scan_idx: usize,
        class: usize,
        _bx: usize,
        _gy: usize,
        nbr: &BlockNeighbors<'_>,
    ) -> Result<CoefBlock, LeptonError> {
        let block = self.models[class].decode_block(&mut self.dec, nbr);
        let comp_index = self.parsed.scan.components[scan_idx].comp_index;
        self.huff
            .component(scan_idx)
            .encode(&mut self.writer, &block, &mut self.prev_dc[comp_index])
            .map_err(LeptonError::Jpeg)?;
        Ok(block)
    }

    fn mcu_end(&mut self, _mcu: u32) -> Result<(), LeptonError> {
        self.drain(false);
        Ok(())
    }
}

/// Decompression options.
#[derive(Clone, Copy, Debug, Default)]
pub struct DecompressOptions {
    /// Model configuration — must match the encoder's (the format does
    /// not negotiate this; like the paper, model changes are version
    /// bumps, see §6.7).
    pub model: ModelConfig,
    /// Memory budget the decode job is metered against (§4.2). Every
    /// sizable arena — output buffer, demuxed arithmetic streams, model
    /// pairs, driver row rings — charges a [`JobMeter`] opened on this
    /// budget; a breach returns [`crate::LeptonError::BudgetExceeded`] instead
    /// of allocating.
    pub budget: ResourceBudget,
}

/// Decompress a Lepton container into the exact original bytes of the
/// chunk it covers (on the shared [`Engine::global`] pool).
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, LeptonError> {
    decompress_on(Engine::global(), data, &DecompressOptions::default())
}

/// Decompress with explicit options.
pub fn decompress_opts(data: &[u8], opts: &DecompressOptions) -> Result<Vec<u8>, LeptonError> {
    decompress_on(Engine::global(), data, opts)
}

/// Engine-backed decompression, shared by the free functions and
/// [`Engine::decompress`].
pub(crate) fn decompress_on(
    engine: &Engine,
    data: &[u8],
    opts: &DecompressOptions,
) -> Result<Vec<u8>, LeptonError> {
    let container = read_container(data)?;
    // The declared output size is untrusted: cap the pre-allocation
    // hint at the budget. The real charge happens inside the streaming
    // decode (against the job meter) before any byte is produced.
    let hint = (container.header.output_size as usize).min(opts.budget.decode_bytes);
    let mut out = Vec::with_capacity(hint);
    decompress_streaming_on(engine, data, opts, &mut |bytes: &[u8]| {
        out.extend_from_slice(bytes)
    })?;
    Ok(out)
}

/// Streaming decompression: `sink` receives output fragments strictly in
/// file order, starting before the whole container is decoded.
pub fn decompress_streaming(
    data: &[u8],
    opts: &DecompressOptions,
    sink: &mut dyn FnMut(&[u8]),
) -> Result<(), LeptonError> {
    decompress_streaming_on(Engine::global(), data, opts, sink)
}

/// Engine-backed streaming decompression.
pub(crate) fn decompress_streaming_on(
    engine: &Engine,
    data: &[u8],
    opts: &DecompressOptions,
    sink: &mut dyn FnMut(&[u8]),
) -> Result<(), LeptonError> {
    // Stage trace for the whole decode; disarms under an outer span
    // (e.g. a blockstore read already being traced), whose stages the
    // marks below then feed.
    let span = lepton_obs::span_enter("decompress");
    let mut produced_total = 0u64;
    let r = decompress_streaming_traced(engine, data, opts, &mut |bytes: &[u8]| {
        produced_total += bytes.len() as u64;
        sink(bytes)
    });
    match &r {
        Ok(()) => span.finish("ok", data.len() as u64, produced_total),
        Err(e) => span.finish(
            crate::error::ExitCode::classify(e).label(),
            data.len() as u64,
            produced_total,
        ),
    }
    r
}

fn decompress_streaming_traced(
    engine: &Engine,
    data: &[u8],
    opts: &DecompressOptions,
    sink: &mut dyn FnMut(&[u8]),
) -> Result<(), LeptonError> {
    let container = read_container(data)?;
    let header = &container.header;

    // Open the job's meter. The container's declared output size and
    // the header blob parts (already decompressed by `read_container`
    // under its own hard caps) are the first charges: a container that
    // *claims* an output beyond the budget is refused here, before any
    // decode work or output allocation.
    let meter = opts.budget.decode_meter();
    meter.charge(header.output_size as usize)?;
    meter.charge(
        header
            .jpeg_header
            .len()
            .saturating_add(header.prepend.len())
            .saturating_add(header.append.len()),
    )?;

    // Tables and geometry come from the (possibly non-emitted) header.
    // The decoder streams row-by-row, so no plane-size budget applies.
    let parsed = parse_with_limits(
        &header.jpeg_header,
        &ParseLimits {
            max_coef_bytes: usize::MAX,
        },
    )?;
    if parsed.header_len != header.jpeg_header.len() {
        return Err(LeptonError::CorruptContainer("header length mismatch"));
    }
    for seg in &header.segments {
        if seg.mcu_end > parsed.frame.mcu_count() as u32 {
            return Err(LeptonError::CorruptContainer("segment beyond image"));
        }
    }

    // Reconcile the segment table with the declared total *before*
    // decoding. Per-segment `out_bytes` are attacker-declared and cap
    // each segment's emission; without this check a forged table could
    // emit (and the whole-buffer path accumulate) far more than the
    // `output_size` charged against the meter, with the mismatch only
    // caught after the fact. Honest containers always satisfy the
    // equality — it is exactly what the final `produced` check demands.
    let declared_out = if header.emit_header {
        header.jpeg_header.len()
    } else {
        0
    }
    .saturating_add(header.prepend.len())
    .saturating_add(header.append.len())
    .saturating_add(
        header
            .segments
            .iter()
            .map(|s| usize::try_from(s.out_bytes).unwrap_or(usize::MAX))
            .fold(0usize, usize::saturating_add),
    );
    if declared_out != header.output_size as usize {
        return Err(LeptonError::CorruptContainer(
            "segment output sizes disagree with declared total",
        ));
    }
    lepton_obs::mark_stage("container_parse");

    let mut produced = 0usize;
    if header.emit_header {
        produced += header.jpeg_header.len();
        sink(&header.jpeg_header);
    }
    produced += header.prepend.len();
    sink(&header.prepend);

    // Demux the interleaved arithmetic section. The per-segment
    // `arith_bytes` fields are attacker-declared u64s feeding
    // `Vec::with_capacity`: charge the meter with the declared total
    // *before* allocating, so a length-field lie aborts with a typed
    // budget error instead of an allocation.
    let nseg = header.segments.len();
    let declared: usize = header
        .segments
        .iter()
        .map(|s| usize::try_from(s.arith_bytes).unwrap_or(usize::MAX))
        .fold(0usize, usize::saturating_add);
    meter.charge(declared)?;
    let mut streams: Vec<Vec<u8>> = (0..nseg)
        .map(|i| Vec::with_capacity(header.segments[i].arith_bytes as usize))
        .collect();
    for p in packets(container.arith_section) {
        let (sid, payload) = p?;
        let sid = sid as usize;
        if sid >= nseg {
            return Err(LeptonError::CorruptContainer("packet for unknown segment"));
        }
        streams[sid].extend_from_slice(payload);
    }
    // Segments may ship more bytes than they declared (the declaration
    // sized the pre-allocation; the packets are bounded by the input
    // itself). Charge any excess so the running total stays honest.
    let actual: usize = streams.iter().map(Vec::len).sum();
    meter.charge(actual.saturating_sub(declared))?;

    produced += decode_segments(engine, &parsed, header, streams, opts, sink, &meter)?;
    // Covers the overlapped arithmetic decode + Huffman re-encode
    // drain (they pipeline; wall time is not separable per sub-stage).
    lepton_obs::mark_stage("arith_decode");

    produced += header.append.len();
    sink(&header.append);
    if produced != header.output_size as usize {
        return Err(LeptonError::CorruptContainer("output size mismatch"));
    }
    Ok(())
}

/// Decode one segment with the executor's arena, forwarding produced
/// bytes through `tx`. Returns the bytes sent.
#[allow(clippy::too_many_arguments)]
fn decode_segment_job<T: SegSink>(
    scratch: &mut Scratch,
    parsed: &ParsedJpeg,
    huff: &ScanEncoders<'_>,
    header: &ContainerHeader,
    seg: &SegmentInfo,
    stream: Vec<u8>,
    model_cfg: ModelConfig,
    tx: T,
    meter: &JobMeter,
) -> Result<usize, LeptonError> {
    // The per-segment arenas this job is about to touch: a model pair
    // (reset, not reallocated, but still part of the job's working set
    // — same constant `decode_working_set` plans with) and the walk's
    // row rings.
    meter.charge(2 * 2 * 90_000 + crate::driver::ring_bytes(parsed))?;
    let pad_bit = header.pad_bit != 0; // "unknown" defaults to 1s
    let handover = seg.handover.to_handover(seg.mcu_start);
    let mut op = SegDecoder {
        parsed,
        huff,
        dec: BoolDecoder::new(VecSource::new(stream)),
        models: scratch.models_mut(model_cfg),
        writer: ScanWriter::resume(handover.partial, handover.bits_used),
        prev_dc: handover.prev_dc,
        rst_emitted: handover.rst_so_far,
        rst_limit: header.rst_count,
        pad_bit,
        interval: parsed.restart_interval as u32,
        budget: seg.out_bytes as usize,
        sent: 0,
        tx,
        receiver_gone: false,
    };
    walk_segment(parsed, seg.mcu_start, seg.mcu_end, &mut op)?;
    // Final flush with padding; truncation caps the tail
    // spill-over of non-final chunks.
    op.writer.align(pad_bit);
    op.drain(true);
    if !op.receiver_gone && op.sent != op.budget {
        return Err(LeptonError::CorruptContainer(
            "segment produced wrong byte count",
        ));
    }
    Ok(op.sent)
}

/// Run all segment decoders on the engine; forward their outputs to
/// `sink` in segment order. Returns bytes forwarded.
fn decode_segments(
    engine: &Engine,
    parsed: &ParsedJpeg,
    header: &ContainerHeader,
    streams: Vec<Vec<u8>>,
    opts: &DecompressOptions,
    sink: &mut dyn FnMut(&[u8]),
    meter: &JobMeter,
) -> Result<usize, LeptonError> {
    let nseg = header.segments.len();
    if nseg == 0 {
        return Ok(0);
    }
    let model_cfg = opts.model;
    // Huffman table refs resolve once per container; every segment job
    // shares them instead of rebuilding the per-component Vec.
    let huff = ScanEncoders::resolve(parsed).map_err(LeptonError::Jpeg)?;

    if nseg == 1 {
        // Inline fast path: decode on the calling thread with a pooled
        // arena, pushing bytes straight into the sink.
        let stream = streams.into_iter().next().expect("one segment");
        let seg = &header.segments[0];
        return engine.run_inline(|scratch| {
            decode_segment_job(
                scratch,
                parsed,
                &huff,
                header,
                seg,
                stream,
                model_cfg,
                DirectSink { sink },
                meter,
            )
        });
    }

    // Multi-segment: queue jobs to the pool and drain the channels in
    // segment order. Channels are unbounded so producer jobs finish
    // regardless of how fast the caller's sink consumes — a job
    // blocked on a send would sit on a shared global-engine worker and
    // starve unrelated codec calls. The engine still starts jobs in
    // submission (= segment) order, so the segment the drain waits on
    // is always running or finished and out-of-order buffering stays
    // within the in-flight output.
    let mut results: Vec<Option<Result<usize, LeptonError>>> = (0..nseg).map(|_| None).collect();
    let mut receivers = Vec::with_capacity(nseg);
    let mut jobs: Vec<EnvJob<'_>> = Vec::with_capacity(nseg);
    for ((i, stream), slot) in streams.into_iter().enumerate().zip(results.iter_mut()) {
        let (tx, rx) = std::sync::mpsc::channel::<Vec<u8>>();
        receivers.push(rx);
        let seg: &SegmentInfo = &header.segments[i];
        let huff = &huff;
        jobs.push(Box::new(move |scratch: &mut Scratch| {
            *slot = Some(decode_segment_job(
                scratch, parsed, huff, header, seg, stream, model_cfg, tx, meter,
            ));
        }));
    }

    let guard = engine.submit(jobs);
    let mut forwarded = 0usize;
    for rx in receivers {
        for chunk in rx {
            forwarded += chunk.len();
            sink(&chunk);
        }
    }
    guard.join();
    for slot in results {
        slot.expect("filled")?;
    }
    Ok(forwarded)
}
