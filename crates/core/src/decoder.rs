//! Lepton → JPEG decompression: multithreaded, streaming, chunk-
//! independent.
//!
//! Each thread segment runs the full §3.4 pipeline concurrently:
//! arithmetic-decode a block with the model, immediately Huffman-encode
//! it into that segment's output stream (resumed mid-byte from the
//! segment's Huffman handover word). Segment outputs are forwarded to
//! the caller's sink in order as they are produced, so the first bytes
//! of the file leave the decoder long before the last segment finishes
//! (time-to-first-byte, §1).

use crate::driver::{walk_segment, BlockOp};
use crate::error::LeptonError;
use crate::format::{packets, read_container, ContainerHeader, SegmentInfo};
use lepton_arith::{BoolDecoder, VecSource};
use lepton_jpeg::bitio::ScanWriter;
use lepton_jpeg::parser::{parse_with_limits, ParseLimits, ParsedJpeg};
use lepton_jpeg::scan::BlockHuffEncoder;
use lepton_jpeg::CoefBlock;
use lepton_model::context::BlockNeighbors;
use lepton_model::{ComponentModel, ModelConfig};
use std::sync::mpsc::SyncSender;

/// Drain threshold: how many completed bytes accumulate before a chunk
/// is forwarded to the output channel.
const DRAIN_BYTES: usize = 32 << 10;

/// Decode one thread segment: model-decode each block and Huffman-encode
/// it into the resumable scan writer, draining output incrementally.
struct SegDecoder<'a> {
    parsed: &'a ParsedJpeg,
    huff: Vec<BlockHuffEncoder<'a>>,
    dec: BoolDecoder<VecSource>,
    models: [ComponentModel; 2],
    writer: ScanWriter,
    prev_dc: [i16; 4],
    rst_emitted: u32,
    rst_limit: u32,
    pad_bit: bool,
    interval: u32,
    /// Output budget (exact bytes this segment owes).
    budget: usize,
    sent: usize,
    tx: SyncSender<Vec<u8>>,
    /// Receiver disappeared; stop sending but finish quietly.
    receiver_gone: bool,
}

impl SegDecoder<'_> {
    fn drain(&mut self, force: bool) {
        if self.receiver_gone || (!force && self.writer.pending_len() < DRAIN_BYTES) {
            return;
        }
        let mut bytes = self.writer.take_bytes();
        if self.sent + bytes.len() > self.budget {
            bytes.truncate(self.budget - self.sent);
        }
        if bytes.is_empty() {
            return;
        }
        self.sent += bytes.len();
        if self.tx.send(bytes).is_err() {
            self.receiver_gone = true;
        }
    }
}

impl BlockOp for SegDecoder<'_> {
    type Error = LeptonError;

    fn mcu_start(&mut self, mcu: u32) -> Result<(), LeptonError> {
        if self.interval > 0
            && mcu > 0
            && mcu.is_multiple_of(self.interval)
            && self.rst_emitted < self.rst_limit
        {
            self.writer.align(self.pad_bit);
            self.writer.write_rst((self.rst_emitted % 8) as u8);
            self.rst_emitted += 1;
            self.prev_dc = [0; 4];
        }
        Ok(())
    }

    fn block(
        &mut self,
        scan_idx: usize,
        class: usize,
        _bx: usize,
        _gy: usize,
        nbr: &BlockNeighbors<'_>,
    ) -> Result<CoefBlock, LeptonError> {
        let block = self.models[class].decode_block(&mut self.dec, nbr);
        let comp_index = self.parsed.scan.components[scan_idx].comp_index;
        self.huff[scan_idx]
            .encode(&mut self.writer, &block, &mut self.prev_dc[comp_index])
            .map_err(LeptonError::Jpeg)?;
        Ok(block)
    }

    fn mcu_end(&mut self, _mcu: u32) -> Result<(), LeptonError> {
        self.drain(false);
        Ok(())
    }
}

/// Decompression options.
#[derive(Clone, Copy, Debug, Default)]
pub struct DecompressOptions {
    /// Model configuration — must match the encoder's (the format does
    /// not negotiate this; like the paper, model changes are version
    /// bumps, see §6.7).
    pub model: ModelConfig,
}

/// Decompress a Lepton container into the exact original bytes of the
/// chunk it covers.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, LeptonError> {
    decompress_opts(data, &DecompressOptions::default())
}

/// Decompress with explicit options.
pub fn decompress_opts(data: &[u8], opts: &DecompressOptions) -> Result<Vec<u8>, LeptonError> {
    let container = read_container(data)?;
    let mut out = Vec::with_capacity(container.header.output_size as usize);
    decompress_streaming(data, opts, &mut |bytes: &[u8]| out.extend_from_slice(bytes))?;
    Ok(out)
}

/// Streaming decompression: `sink` receives output fragments strictly in
/// file order, starting before the whole container is decoded.
pub fn decompress_streaming(
    data: &[u8],
    opts: &DecompressOptions,
    sink: &mut dyn FnMut(&[u8]),
) -> Result<(), LeptonError> {
    let container = read_container(data)?;
    let header = &container.header;

    // Tables and geometry come from the (possibly non-emitted) header.
    // The decoder streams row-by-row, so no plane-size budget applies.
    let parsed = parse_with_limits(
        &header.jpeg_header,
        &ParseLimits {
            max_coef_bytes: usize::MAX,
        },
    )?;
    if parsed.header_len != header.jpeg_header.len() {
        return Err(LeptonError::CorruptContainer("header length mismatch"));
    }
    for seg in &header.segments {
        if seg.mcu_end > parsed.frame.mcu_count() as u32 {
            return Err(LeptonError::CorruptContainer("segment beyond image"));
        }
    }

    let mut produced = 0usize;
    if header.emit_header {
        produced += header.jpeg_header.len();
        sink(&header.jpeg_header);
    }
    produced += header.prepend.len();
    sink(&header.prepend);

    // Demux the interleaved arithmetic section.
    let nseg = header.segments.len();
    let mut streams: Vec<Vec<u8>> = (0..nseg)
        .map(|i| Vec::with_capacity(header.segments[i].arith_bytes as usize))
        .collect();
    for p in packets(container.arith_section) {
        let (sid, payload) = p?;
        let sid = sid as usize;
        if sid >= nseg {
            return Err(LeptonError::CorruptContainer("packet for unknown segment"));
        }
        streams[sid].extend_from_slice(payload);
    }

    produced += decode_segments(&parsed, header, streams, opts, sink)?;

    produced += header.append.len();
    sink(&header.append);
    if produced != header.output_size as usize {
        return Err(LeptonError::CorruptContainer("output size mismatch"));
    }
    Ok(())
}

/// Run all segment decoders concurrently; forward their outputs to
/// `sink` in segment order. Returns bytes forwarded.
fn decode_segments(
    parsed: &ParsedJpeg,
    header: &ContainerHeader,
    streams: Vec<Vec<u8>>,
    opts: &DecompressOptions,
    sink: &mut dyn FnMut(&[u8]),
) -> Result<usize, LeptonError> {
    let nseg = header.segments.len();
    if nseg == 0 {
        return Ok(0);
    }
    let pad_bit = header.pad_bit != 0; // "unknown" defaults to 1s
    let interval = parsed.restart_interval as u32;
    let mut forwarded = 0usize;

    std::thread::scope(|scope| -> Result<(), LeptonError> {
        let mut receivers = Vec::with_capacity(nseg);
        let mut handles = Vec::with_capacity(nseg);
        for (i, stream) in streams.into_iter().enumerate() {
            let (tx, rx) = std::sync::mpsc::sync_channel::<Vec<u8>>(64);
            receivers.push(rx);
            let seg: &SegmentInfo = &header.segments[i];
            let model_cfg = opts.model;
            handles.push(scope.spawn(move || -> Result<(), LeptonError> {
                let huff: Vec<BlockHuffEncoder> = (0..parsed.scan.components.len())
                    .map(|si| BlockHuffEncoder::for_component(parsed, si))
                    .collect::<Result<_, _>>()
                    .map_err(LeptonError::Jpeg)?;
                let handover = seg.handover.to_handover(seg.mcu_start);
                let mut op = SegDecoder {
                    parsed,
                    huff,
                    dec: BoolDecoder::new(VecSource::new(stream)),
                    models: [
                        ComponentModel::new(model_cfg),
                        ComponentModel::new(model_cfg),
                    ],
                    writer: ScanWriter::resume(handover.partial, handover.bits_used),
                    prev_dc: handover.prev_dc,
                    rst_emitted: handover.rst_so_far,
                    rst_limit: header.rst_count,
                    pad_bit,
                    interval,
                    budget: seg.out_bytes as usize,
                    sent: 0,
                    tx,
                    receiver_gone: false,
                };
                walk_segment(parsed, seg.mcu_start, seg.mcu_end, &mut op)?;
                // Final flush with padding; truncation caps the tail
                // spill-over of non-final chunks.
                op.writer.align(pad_bit);
                op.drain(true);
                if !op.receiver_gone && op.sent != op.budget {
                    return Err(LeptonError::CorruptContainer(
                        "segment produced wrong byte count",
                    ));
                }
                Ok(())
            }));
        }

        for rx in receivers {
            for chunk in rx {
                forwarded += chunk.len();
                sink(&chunk);
            }
        }
        for h in handles {
            h.join().expect("segment decoder panicked")?;
        }
        Ok(())
    })?;
    Ok(forwarded)
}
