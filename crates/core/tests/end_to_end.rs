//! End-to-end Lepton round trips: compress → decompress == identity,
//! across image shapes, thread counts, chunking, and streaming.

use lepton_core::{
    compress, compress_chunked, compress_with_stats, decompress, decompress_streaming,
    CompressOptions, DecompressOptions, ThreadPolicy,
};
use lepton_jpeg::encoder::{encode_jpeg, EncodeOptions, Image, PixelData, Subsampling};

fn prng_bytes(seed: u64, n: usize) -> Vec<u8> {
    let mut x = seed.max(1);
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 32) as u8
        })
        .collect()
}

fn photo_rgb(w: usize, h: usize, seed: u64) -> Vec<u8> {
    let noise = prng_bytes(seed, w * h * 3);
    let mut data = Vec::with_capacity(w * h * 3);
    for y in 0..h {
        for x in 0..w {
            let i = (y * w + x) * 3;
            let r = 120.0 + 90.0 * ((x as f32) / 23.0).sin() + (noise[i] as f32 - 128.0) * 0.12;
            let g = 110.0 + 75.0 * ((y as f32) / 17.0).cos() + (noise[i + 1] as f32 - 128.0) * 0.12;
            let b = 95.0
                + 65.0 * (((x * y) as f32) / 701.0).sin()
                + (noise[i + 2] as f32 - 128.0) * 0.12;
            data.push(r.clamp(0.0, 255.0) as u8);
            data.push(g.clamp(0.0, 255.0) as u8);
            data.push(b.clamp(0.0, 255.0) as u8);
        }
    }
    let img = Image {
        width: w,
        height: h,
        data: PixelData::Rgb(data),
    };
    encode_jpeg(&img, &EncodeOptions::default()).unwrap()
}

fn photo_gray(w: usize, h: usize, seed: u64, opts: &EncodeOptions) -> Vec<u8> {
    let noise = prng_bytes(seed, w * h);
    let data = (0..w * h)
        .map(|i| {
            let (x, y) = ((i % w) as f32, (i / w) as f32);
            let v = 128.0
                + 70.0 * (x / 29.0).sin() * (y / 31.0).cos()
                + (noise[i] as f32 - 128.0) * 0.1;
            v.clamp(0.0, 255.0) as u8
        })
        .collect();
    let img = Image {
        width: w,
        height: h,
        data: PixelData::Gray(data),
    };
    encode_jpeg(&img, opts).unwrap()
}

#[test]
fn roundtrip_gray_single_thread() {
    let jpg = photo_gray(64, 48, 1, &EncodeOptions::default());
    let opts = CompressOptions {
        threads: ThreadPolicy::Fixed(1),
        ..Default::default()
    };
    let lepton = compress(&jpg, &opts).unwrap();
    assert_eq!(decompress(&lepton).unwrap(), jpg);
    assert!(
        lepton.len() < jpg.len(),
        "{} !< {}",
        lepton.len(),
        jpg.len()
    );
}

#[test]
fn roundtrip_color_multithreaded() {
    let jpg = photo_rgb(96, 80, 2);
    for n in [1usize, 2, 3, 4, 8] {
        let opts = CompressOptions {
            threads: ThreadPolicy::Fixed(n),
            ..Default::default()
        };
        let lepton = compress(&jpg, &opts).unwrap();
        assert_eq!(decompress(&lepton).unwrap(), jpg, "threads={n}");
    }
}

#[test]
fn compression_ratio_in_paper_range() {
    // The paper reports ~77% of original size on photographic content.
    // Synthetic photos differ, but we should land clearly below 95% and
    // above 40% on realistic content.
    let jpg = photo_rgb(256, 192, 3);
    let (lepton, stats) = compress_with_stats(&jpg, &CompressOptions::default()).unwrap();
    let ratio = lepton.len() as f64 / jpg.len() as f64;
    assert!(ratio < 0.95, "ratio {ratio}");
    assert!(ratio > 0.40, "ratio {ratio}");
    assert_eq!(stats.input_bytes, jpg.len());
    assert_eq!(stats.output_bytes, lepton.len());
    assert!(stats.scan_in.ac77_bits > 0);
    assert!(stats.scan_out.total() > 0);
}

#[test]
fn single_thread_compresses_no_worse() {
    // "Lepton 1-way": one model over the whole image compresses at least
    // as well as 8 independent segments (§3.4).
    let jpg = photo_rgb(160, 120, 4);
    let one = compress(
        &jpg,
        &CompressOptions {
            threads: ThreadPolicy::Fixed(1),
            ..Default::default()
        },
    )
    .unwrap();
    let many = compress(
        &jpg,
        &CompressOptions {
            threads: ThreadPolicy::Fixed(8),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        one.len() <= many.len() + 16,
        "1-way {} vs 8-way {}",
        one.len(),
        many.len()
    );
}

#[test]
fn roundtrip_with_restarts() {
    let opts_jpg = EncodeOptions {
        restart_interval: 5,
        ..Default::default()
    };
    let jpg = photo_gray(128, 96, 5, &opts_jpg);
    for n in [1usize, 4] {
        let opts = CompressOptions {
            threads: ThreadPolicy::Fixed(n),
            ..Default::default()
        };
        let lepton = compress(&jpg, &opts).unwrap();
        assert_eq!(decompress(&lepton).unwrap(), jpg, "threads={n}");
    }
}

#[test]
fn roundtrip_trailing_garbage() {
    let mut jpg = photo_gray(40, 40, 6, &EncodeOptions::default());
    jpg.extend_from_slice(&prng_bytes(77, 1000));
    let lepton = compress(&jpg, &CompressOptions::default()).unwrap();
    assert_eq!(decompress(&lepton).unwrap(), jpg);
}

#[test]
fn roundtrip_all_subsamplings_and_pads() {
    for sub in [Subsampling::S444, Subsampling::S422, Subsampling::S420] {
        for pad in [true, false] {
            let img = Image {
                width: 50,
                height: 42,
                data: PixelData::Rgb(prng_bytes(8, 50 * 42 * 3)),
            };
            let jpg = encode_jpeg(
                &img,
                &EncodeOptions {
                    subsampling: sub,
                    pad_bit: pad,
                    quality: 60,
                    ..Default::default()
                },
            )
            .unwrap();
            let lepton = compress(&jpg, &CompressOptions::default()).unwrap();
            assert_eq!(decompress(&lepton).unwrap(), jpg, "{sub:?} pad={pad}");
        }
    }
}

#[test]
fn chunked_roundtrip_reassembles() {
    let jpg = photo_rgb(640, 480, 9);
    assert!(jpg.len() > 1 << 15, "test image too small: {}", jpg.len());
    for chunk_size in [1 << 12, 1 << 13, 1 << 15] {
        let chunks = compress_chunked(&jpg, chunk_size, &CompressOptions::default()).unwrap();
        assert!(
            chunks.len() > 1,
            "want multiple chunks for size {chunk_size}"
        );
        let mut rebuilt = Vec::new();
        for c in &chunks {
            rebuilt.extend(decompress(c).unwrap());
        }
        assert_eq!(rebuilt, jpg, "chunk_size={chunk_size}");
    }
}

#[test]
fn chunks_decode_independently_in_any_order() {
    let jpg = photo_rgb(180, 140, 10);
    let chunks = compress_chunked(&jpg, 1 << 13, &CompressOptions::default()).unwrap();
    // Decode chunks in reverse order, then reassemble.
    let mut parts: Vec<(usize, Vec<u8>)> = Vec::new();
    for (i, c) in chunks.iter().enumerate().rev() {
        parts.push((i, decompress(c).unwrap()));
    }
    parts.sort_by_key(|p| p.0);
    let rebuilt: Vec<u8> = parts.into_iter().flat_map(|p| p.1).collect();
    assert_eq!(rebuilt, jpg);
}

#[test]
fn streaming_prefix_property() {
    // The first sink calls must deliver the file prefix before the whole
    // decode completes; collect fragment boundaries and verify order.
    let jpg = photo_rgb(128, 96, 11);
    let lepton = compress(&jpg, &CompressOptions::default()).unwrap();
    let mut fragments: Vec<usize> = Vec::new();
    let mut out = Vec::new();
    decompress_streaming(&lepton, &DecompressOptions::default(), &mut |b: &[u8]| {
        fragments.push(b.len());
        out.extend_from_slice(b);
    })
    .unwrap();
    assert_eq!(out, jpg);
    assert!(
        fragments.len() >= 3,
        "expected multiple fragments, got {fragments:?}"
    );
}

#[test]
fn deterministic_output() {
    let jpg = photo_rgb(100, 76, 12);
    let opts = CompressOptions::default();
    let a = compress(&jpg, &opts).unwrap();
    let b = compress(&jpg, &opts).unwrap();
    assert_eq!(a, b, "compression must be deterministic");
}

#[test]
fn rejects_non_jpeg_inputs() {
    use lepton_core::{ExitCode, LeptonError};
    let e = compress(b"not a jpeg at all", &CompressOptions::default()).unwrap_err();
    assert_eq!(ExitCode::classify(&e), ExitCode::NotAnImage);
    let e = compress(&[], &CompressOptions::default()).unwrap_err();
    assert!(matches!(e, LeptonError::Jpeg(_)));
}

#[test]
fn decompress_rejects_corruption_without_panic() {
    let jpg = photo_gray(64, 64, 13, &EncodeOptions::default());
    let lepton = compress(&jpg, &CompressOptions::default()).unwrap();
    // Flip bytes throughout the container; decode must error or produce
    // different bytes, never panic or hang.
    for pos in (0..lepton.len()).step_by(97) {
        let mut bad = lepton.clone();
        bad[pos] ^= 0x5A;
        if let Ok(out) = decompress(&bad) {
            // Arithmetic garbage may still "decode"; it must simply
            // not panic. (Equality is possible only if we flipped a
            // byte the parser ignores — the revision field.)
            let _ = out;
        }
    }
}

#[test]
fn empty_and_tiny_inputs() {
    // 1x1 image.
    let img = Image {
        width: 1,
        height: 1,
        data: PixelData::Gray(vec![42]),
    };
    let jpg = encode_jpeg(&img, &EncodeOptions::default()).unwrap();
    let lepton = compress(&jpg, &CompressOptions::default()).unwrap();
    assert_eq!(decompress(&lepton).unwrap(), jpg);
}

#[test]
fn verify_harness_agrees() {
    use lepton_core::verify::{qualify, verify_roundtrip, Verdict};
    let jpg = photo_rgb(80, 60, 14);
    match verify_roundtrip(&jpg, &CompressOptions::default()) {
        Verdict::Verified { compressed } => assert!(compressed < jpg.len()),
        v => panic!("expected verified, got {v:?}"),
    }
    let not_jpeg = prng_bytes(15, 500);
    let files: Vec<&[u8]> = vec![&jpg, &not_jpeg];
    let q = qualify(files, &CompressOptions::default());
    assert!(q.qualified());
    assert_eq!(q.verified, 1);
    assert_eq!(q.rejected.len(), 1);
}
