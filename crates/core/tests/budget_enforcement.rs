//! ResourceBudget enforcement at the codec entry points.
//!
//! An undersized budget must fail *cleanly* — a typed
//! `BudgetExceeded` carrying the stage, the required bytes, and the
//! limit — at every entry point, and the default §4.2/§6.2 budgets
//! must pass the full clean corpus unchanged (the meter is a backstop
//! behind header-derived sizing, not a new constraint on real files).

use lepton_core::{
    compress, compress_chunked, decompress_opts, decompress_streaming, BudgetStage,
    CompressOptions, DecompressOptions, Engine, LeptonError, ResourceBudget,
};
use lepton_corpus::{Corpus, CorpusSpec};

fn corpus() -> Vec<Vec<u8>> {
    Corpus::generate(&CorpusSpec {
        count: 4,
        min_dim: 64,
        max_dim: 192,
        clean_fraction: 1.0,
        seed: 0xB0D6E7,
    })
    .files
    .into_iter()
    .map(|f| f.data)
    .collect()
}

fn starved_encode() -> CompressOptions {
    CompressOptions {
        budget: ResourceBudget {
            encode_bytes: 1 << 10,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn starved_decode() -> DecompressOptions {
    DecompressOptions {
        budget: ResourceBudget {
            decode_bytes: 1 << 10,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn expect_budget(r: Result<impl Sized, LeptonError>, stage: BudgetStage) {
    match r {
        Err(LeptonError::BudgetExceeded {
            stage: s,
            required,
            limit,
        }) => {
            assert_eq!(s, stage);
            assert!(
                required > limit,
                "error must carry the breach: {required} vs {limit}"
            );
        }
        Err(other) => panic!("expected BudgetExceeded({stage:?}), got {other}"),
        Ok(_) => panic!("expected BudgetExceeded({stage:?}), got success"),
    }
}

#[test]
fn undersized_encode_budget_fails_cleanly_everywhere() {
    let jpeg = corpus().remove(0);
    let opts = starved_encode();
    expect_budget(compress(&jpeg, &opts), BudgetStage::Encode);
    expect_budget(compress_chunked(&jpeg, 4096, &opts), BudgetStage::Encode);
    let engine = Engine::new(2);
    expect_budget(engine.compress(&jpeg, &opts), BudgetStage::Encode);
    expect_budget(
        engine.compress_chunked(&jpeg, 4096, &opts),
        BudgetStage::Encode,
    );
}

#[test]
fn undersized_decode_budget_fails_cleanly_everywhere() {
    let jpeg = corpus().remove(0);
    let container = compress(&jpeg, &CompressOptions::default()).unwrap();
    let opts = starved_decode();
    expect_budget(decompress_opts(&container, &opts), BudgetStage::Decode);
    let mut sunk = 0usize;
    expect_budget(
        decompress_streaming(&container, &opts, &mut |b| sunk += b.len()),
        BudgetStage::Decode,
    );
    assert_eq!(sunk, 0, "refusal happens before any output is emitted");
    let engine = Engine::new(2);
    expect_budget(
        engine.decompress_opts(&container, &opts),
        BudgetStage::Decode,
    );
}

#[test]
fn verification_decode_is_metered_too() {
    // §5.7 admission asymmetry: compression *verifies* under the decode
    // budget, so a file that could not later be served within §4.2 is
    // already refused at admission — as a decode-stage breach.
    let jpeg = corpus().remove(0);
    let opts = CompressOptions {
        budget: ResourceBudget {
            decode_bytes: 1 << 10,
            ..Default::default()
        },
        verify: true,
        ..Default::default()
    };
    expect_budget(compress(&jpeg, &opts), BudgetStage::Decode);
}

#[test]
fn default_budget_passes_the_clean_corpus_unchanged() {
    // The meter is a backstop: with the paper's real budgets every
    // clean file compresses, round-trips byte-exactly, and decodes the
    // same with or without explicit options.
    let copts = CompressOptions::default();
    let dopts = DecompressOptions::default();
    for jpeg in corpus() {
        let container = compress(&jpeg, &copts).expect("default budget admits clean file");
        assert_eq!(decompress_opts(&container, &dopts).unwrap(), jpeg);
        let chunks = compress_chunked(&jpeg, 4096, &copts).unwrap();
        let mut joined = Vec::new();
        for chunk in &chunks {
            joined.extend_from_slice(&decompress_opts(chunk, &dopts).unwrap());
        }
        assert_eq!(joined, jpeg, "chunked path unchanged under the meter");
    }
}

#[test]
fn budget_error_reports_honest_numbers() {
    // The typed error is the operator's §6.2 telemetry row: its
    // `required` must reflect the real high-water demand, not a
    // truncated counter.
    let jpeg = corpus().remove(0);
    match compress(&jpeg, &starved_encode()) {
        Err(LeptonError::BudgetExceeded {
            required, limit, ..
        }) => {
            assert_eq!(limit, 1 << 10);
            // The very first charge (coefficient planes) already dwarfs
            // the 1 KiB limit for a 64px+ image.
            assert!(required >= 64 * 64 * 2, "required={required}");
        }
        other => panic!("{other:?}"),
    }
}
