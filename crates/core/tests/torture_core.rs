//! Corruption torture rig over every codec entry point.
//!
//! Feeds the full seeded mutation matrix (every [`MutationKind`] ×
//! seed, plus pristine bases and the handcrafted hostile set) through
//! `compress`, `compress_chunked`, `decompress`,
//! `decompress_streaming`, and the explicit `Engine` paths, asserting
//! the tri-state contract: byte-exact output, or a typed error on a
//! non-operational taxonomy row — never a panic.
//!
//! Wrong-bytes is gated where it is well-defined: pristine inputs must
//! round-trip exactly, compression runs with `verify: true` (a decode
//! mismatch surfaces as `RoundtripFailed`), and whole-buffer vs
//! streaming decode must agree byte-for-byte whenever both accept.
//!
//! Runs in quick mode by default (fixed seeds, small matrix) so CI's
//! fuzz-smoke job stays bounded; set `TORTURE_FULL=1` for a wider
//! sweep.

use lepton_core::{
    compress, compress_chunked, decompress, decompress_streaming, CompressOptions,
    DecompressOptions, Engine, LeptonError, ThreadPolicy,
};
use lepton_corpus::rig::{self, RigCase};
use lepton_corpus::{hostile_cases, mutation_matrix, probe, Corpus, CorpusSpec};

fn seeds() -> Vec<u64> {
    if std::env::var_os("TORTURE_FULL").is_some() {
        (0..6).map(|i| 0xF00D + i * 0x1111).collect()
    } else {
        vec![0xF00D, 0xBEEF]
    }
}

fn base_jpegs() -> Vec<(String, Vec<u8>)> {
    Corpus::generate(&CorpusSpec {
        count: 2,
        min_dim: 64,
        max_dim: 160,
        clean_fraction: 1.0,
        seed: 0x7012_7123,
    })
    .files
    .into_iter()
    .enumerate()
    .map(|(i, f)| (format!("jpeg{i}"), f.data))
    .collect()
}

fn jpeg_cases() -> Vec<RigCase> {
    let bases = base_jpegs();
    let named: Vec<(&str, Vec<u8>)> = bases.iter().map(|(n, d)| (n.as_str(), d.clone())).collect();
    let mut cases = mutation_matrix(&named, &seeds());
    cases.extend(hostile_cases());
    cases
}

fn container_cases() -> Vec<RigCase> {
    let opts = CompressOptions::default();
    let named: Vec<(String, Vec<u8>)> = base_jpegs()
        .into_iter()
        .map(|(n, d)| {
            (
                format!("{n}.lep"),
                compress(&d, &opts).expect("clean base compresses"),
            )
        })
        .collect();
    let named_refs: Vec<(&str, Vec<u8>)> =
        named.iter().map(|(n, d)| (n.as_str(), d.clone())).collect();
    mutation_matrix(&named_refs, &seeds())
}

#[test]
fn compress_survives_the_matrix() {
    let opts = CompressOptions::default(); // verify: true → wrong bytes impossible
    let report = rig::run(&jpeg_cases(), |input| {
        compress(input, &opts).map(|c| c.len())
    });
    report.assert_clean();
    // The pristine bases must be among the accepted inputs.
    assert!(report.accepted >= 2, "pristine bases must compress");
}

#[test]
fn compress_chunked_survives_the_matrix() {
    let opts = CompressOptions::default();
    let report = rig::run(&jpeg_cases(), |input| {
        compress_chunked(input, 4096, &opts).map(|chunks| chunks.iter().map(Vec::len).sum())
    });
    report.assert_clean();
    assert!(report.accepted >= 2);
}

#[test]
fn decompress_survives_the_matrix_and_agrees_with_streaming() {
    let dopts = DecompressOptions::default();
    let cases = container_cases();
    let report = rig::run(&cases, |input| decompress(input).map(|j| j.len()));
    report.assert_clean();

    // Streaming decode: same contract, and byte-agreement with the
    // whole-buffer path whenever both accept.
    let mut violations: Vec<String> = Vec::new();
    for case in &cases {
        let whole = probe(|| decompress(&case.input));
        let streamed = probe(|| {
            let mut out = Vec::new();
            decompress_streaming(&case.input, &dopts, &mut |b| out.extend_from_slice(b))
                .map(|()| out)
        });
        match (whole, streamed) {
            (Err(p), _) | (_, Err(p)) => violations.push(format!("{}: PANIC: {p}", case.label)),
            (Ok(Ok(a)), Ok(Ok(b))) if a != b => violations.push(format!(
                "{}: whole-buffer and streaming decode disagree ({} vs {} bytes)",
                case.label,
                a.len(),
                b.len()
            )),
            (Ok(Ok(_)), Ok(Err(e))) | (Ok(Err(e)), Ok(Ok(_))) => violations.push(format!(
                "{}: one decode path accepted, the other refused: {e}",
                case.label
            )),
            _ => {}
        }
    }
    assert!(
        violations.is_empty(),
        "decode-path divergence:\n{}",
        violations.join("\n")
    );
}

#[test]
fn pristine_containers_round_trip_byte_exactly() {
    let opts = CompressOptions::default();
    for (name, jpeg) in base_jpegs() {
        let container = compress(&jpeg, &opts).unwrap();
        assert_eq!(decompress(&container).unwrap(), jpeg, "{name}");
    }
}

#[test]
fn engine_paths_survive_the_matrix() {
    // Explicit pools at both segment policies: the inline single-thread
    // path and the pipelined batch path must honor the same contract.
    for workers in [1usize, 3] {
        let engine = Engine::new(workers);
        let opts = CompressOptions {
            threads: ThreadPolicy::Fixed(workers),
            ..Default::default()
        };
        let report = rig::run(&jpeg_cases(), |input| {
            engine.compress(input, &opts).map(|c| c.len())
        });
        report.assert_clean();

        let report = rig::run(&container_cases(), |input| {
            engine.decompress(input).map(|j| j.len())
        });
        report.assert_clean();
    }
}

#[test]
fn hostile_set_refuses_everything() {
    // Every handcrafted reachability input must be refused (none of
    // them is a valid baseline JPEG), each with a typed error.
    let opts = CompressOptions::default();
    let report = rig::run(&hostile_cases(), |input| {
        compress(input, &opts).map(|c| c.len())
    });
    report.assert_clean();
    assert_eq!(report.accepted, 0, "hostile inputs must all be refused");
    assert_eq!(
        report.rows.values().sum::<usize>(),
        report.cases,
        "every refusal lands on a taxonomy row"
    );
}

#[test]
fn emission_never_exceeds_the_charged_budget() {
    // The memory-breach gate: whatever a mutated container makes the
    // streaming decoder emit — accepted or refused partway — the total
    // stays within the decode budget the meter charged. A forged
    // segment table cannot over-emit: `out_bytes` is reconciled against
    // the charged `output_size` before decoding starts.
    let dopts = DecompressOptions::default();
    let cap = lepton_core::ResourceBudget::default().decode_bytes;
    for case in container_cases() {
        let mut emitted = 0usize;
        let r = probe(|| decompress_streaming(&case.input, &dopts, &mut |b| emitted += b.len()))
            .unwrap_or_else(|p| panic!("{}: PANIC: {p}", case.label));
        assert!(
            emitted <= cap,
            "{}: emitted {emitted} bytes > {cap} budget (result {r:?})",
            case.label
        );
    }
}

#[test]
fn mutation_driver_is_deterministic_across_runs() {
    // Same (kind, seed) → same bytes; the rig's labels are honest
    // provenance and CI failures reproduce locally.
    let (_, jpeg) = base_jpegs().remove(0);
    for kind in lepton_corpus::MutationKind::ALL {
        let a = lepton_corpus::mutate(&jpeg, kind, 42);
        let b = lepton_corpus::mutate(&jpeg, kind, 42);
        assert_eq!(a, b, "{kind:?}");
    }
}

#[test]
fn internal_error_is_the_only_operational_escape() {
    // The rig flags operational-row refusals as violations except for
    // Internal — make sure the carve-out works as documented.
    let cases = vec![RigCase {
        label: "x".into(),
        input: vec![0],
    }];
    let report = rig::run(&cases, |_| Err(LeptonError::Internal("invariant")));
    assert!(report.violations.is_empty());
    let report = rig::run(&cases, |_| Err(LeptonError::BadMagic));
    assert!(report.violations.is_empty());
}
