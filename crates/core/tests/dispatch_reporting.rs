//! The SIMD dispatch level must be *observable*, not just active:
//! every stats surface (registry snapshot → server `Stats` op →
//! `lepton stats`) and every bench JSON record reports which kernel
//! tier the build actually ran. A fleet operator diagnosing a slow
//! node needs to see "scalar" on the dashboard, not infer it from
//! throughput.

use lepton_core::Engine;
use lepton_obs::{MetricValue, Registry};

/// `Engine::global()` binds a `build.simd_level` gauge into the global
/// registry whose value is the detected dispatch level (0 = scalar,
/// 1 = SSE2, 2 = AVX2). This is the number `lepton stats` renders.
#[test]
fn global_engine_publishes_simd_level_gauge() {
    let _ = Engine::global();
    let snap = Registry::global().snapshot();
    let value = snap
        .entries
        .iter()
        .find_map(|(name, v)| (name == "build.simd_level").then_some(v))
        .expect("build.simd_level gauge bound by Engine::global()");
    match value {
        MetricValue::Gauge { value, .. } => {
            assert_eq!(*value, lepton_simd::level().as_gauge());
        }
        other => panic!("build.simd_level should be a gauge, got {other:?}"),
    }
}
