//! The exhaustive error-taxonomy gate (promotion of the
//! `tab_error_codes` experiment into a hard test).
//!
//! Two guarantees, checked together:
//!
//! 1. **Reachability** — every error the codec can report is actually
//!    produced by a constructed input: each `JpegError` variant, each
//!    `LeptonError` variant (except `Internal`, which mirrors the
//!    paper's operational "Impossible" row), and each of the 10
//!    input-reachable §6.2 exit-code rows. A variant nothing can reach
//!    is dead weight; a row nothing maps to is an untested claim.
//! 2. **Classification totality** — every produced error maps onto a
//!    taxonomy row, and never onto one of the 8 operational rows
//!    (signals, timeouts, operator action, storage faults) that inputs
//!    must not be able to fake.

use lepton_core::format::{packets, read_container, write_container};
use lepton_core::security::BudgetStage;
use lepton_core::verify::check_roundtrip;
use lepton_core::{
    compress, decompress, decompress_opts, CompressOptions, DecompressOptions, ExitCode,
    LeptonError, ResourceBudget,
};
use lepton_corpus::hostile;
use lepton_corpus::{Corpus, CorpusSpec};
use lepton_jpeg::JpegError;
use std::collections::BTreeSet;

fn clean_jpeg() -> Vec<u8> {
    Corpus::generate(&CorpusSpec {
        count: 1,
        min_dim: 64,
        max_dim: 96,
        clean_fraction: 1.0,
        seed: 0x7A_0E57,
    })
    .files
    .remove(0)
    .data
}

#[test]
fn every_jpeg_error_variant_is_input_reachable() {
    let opts = CompressOptions::default();
    type Expect = fn(&JpegError) -> bool;
    let cases: Vec<(&str, Vec<u8>, Expect)> = vec![
        ("not_a_jpeg", hostile::not_a_jpeg(), |e| {
            matches!(e, JpegError::NotAJpeg)
        }),
        ("truncated_header", hostile::truncated_header(), |e| {
            matches!(e, JpegError::Truncated)
        }),
        ("progressive", hostile::progressive_frame(), |e| {
            matches!(e, JpegError::Progressive)
        }),
        ("four_color", hostile::four_color(), |e| {
            matches!(e, JpegError::FourColor)
        }),
        ("precision_12", hostile::precision_12(), |e| {
            matches!(e, JpegError::UnsupportedPrecision(12))
        }),
        ("lossless_frame", hostile::lossless_frame(), |e| {
            matches!(e, JpegError::UnsupportedFrame(0xC3))
        }),
        ("bad_sampling", hostile::bad_sampling(), |e| {
            matches!(e, JpegError::UnsupportedSampling)
        }),
        ("dnl_scan", hostile::dnl_scan(), |e| {
            matches!(e, JpegError::UnsupportedScan)
        }),
        ("eoi_before_scan", hostile::eoi_before_scan(), |e| {
            matches!(e, JpegError::Malformed(_))
        }),
        ("bad_huffman", hostile::bad_huffman(), |e| {
            matches!(e, JpegError::BadHuffman(_))
        }),
        ("bad_quant", hostile::bad_quant(), |e| {
            matches!(e, JpegError::BadQuant(_))
        }),
        ("ac_out_of_range", hostile::ac_out_of_range(), |e| {
            matches!(e, JpegError::AcOutOfRange)
        }),
        ("dc_out_of_range", hostile::dc_out_of_range(), |e| {
            matches!(e, JpegError::DcOutOfRange)
        }),
        ("bad_scan_code", hostile::bad_scan_code(), |e| {
            matches!(e, JpegError::BadScanCode)
        }),
        ("mixed_pad_bits", hostile::mixed_pad_bits(), |e| {
            matches!(e, JpegError::MixedPadBits)
        }),
        ("huge_dims", hostile::huge_dims(), |e| {
            matches!(e, JpegError::TooLarge { .. })
        }),
        ("zero_dimension", hostile::zero_dimension(), |e| {
            matches!(e, JpegError::ZeroDimension)
        }),
    ];
    for (name, input, expect) in &cases {
        match compress(input, &opts) {
            Err(LeptonError::Jpeg(j)) if expect(&j) => {}
            other => panic!("{name}: expected its JpegError, got {other:?}"),
        }
    }
    // That list is every variant: constructing it forces a compile
    // error if a new variant appears without a reachability input.
    let witness = |e: &JpegError| match e {
        JpegError::NotAJpeg
        | JpegError::Truncated
        | JpegError::Progressive
        | JpegError::FourColor
        | JpegError::UnsupportedPrecision(_)
        | JpegError::UnsupportedFrame(_)
        | JpegError::UnsupportedSampling
        | JpegError::UnsupportedScan
        | JpegError::Malformed(_)
        | JpegError::BadHuffman(_)
        | JpegError::BadQuant(_)
        | JpegError::AcOutOfRange
        | JpegError::DcOutOfRange
        | JpegError::BadScanCode
        | JpegError::MixedPadBits
        | JpegError::TooLarge { .. }
        | JpegError::ZeroDimension => (),
    };
    witness(&JpegError::NotAJpeg);
    assert_eq!(cases.len(), 17, "one constructed input per variant");
}

#[test]
fn every_lepton_error_variant_is_reachable() {
    let jpeg = clean_jpeg();
    let opts = CompressOptions::default();
    let container = compress(&jpeg, &opts).expect("clean file compresses");

    // Jpeg(_): covered exhaustively above; one witness here.
    assert!(matches!(
        compress(&hostile::not_a_jpeg(), &opts),
        Err(LeptonError::Jpeg(_))
    ));

    // BadMagic: flip the magic.
    let mut bad_magic = container.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(decompress(&bad_magic), Err(LeptonError::BadMagic)));

    // UnsupportedVersion: bump the version byte.
    let mut bad_version = container.clone();
    bad_version[2] = 0x09;
    assert!(matches!(
        decompress(&bad_version),
        Err(LeptonError::UnsupportedVersion(9))
    ));

    // CorruptContainer: cut the container mid-structure.
    let cut = container.len() / 2;
    assert!(matches!(
        decompress(&container[..cut.max(30)]),
        Err(LeptonError::CorruptContainer(_))
    ));

    // BudgetExceeded { stage: Decode }: forge a container whose segment
    // table *declares* a terabyte arithmetic stream. Under the default
    // 24 MiB decode budget the meter refuses before allocating.
    let parsed = read_container(&container).expect("own container parses");
    let mut header = parsed.header.clone();
    let mut streams: Vec<Vec<u8>> = vec![Vec::new(); header.segments.len()];
    for p in packets(parsed.arith_section) {
        let (sid, payload) = p.expect("own container demuxes");
        streams[sid as usize].extend_from_slice(payload);
    }
    header.segments[0].arith_bytes = 1 << 40;
    let forged = write_container(&header, &streams);
    match decompress(&forged) {
        Err(LeptonError::BudgetExceeded { stage, .. }) => {
            assert_eq!(stage, BudgetStage::Decode)
        }
        other => panic!("declared-length lie must trip the decode meter, got {other:?}"),
    }

    // BudgetExceeded { stage: Encode }: an undersized encode budget
    // trips on the coefficient-plane charge.
    let tiny = CompressOptions {
        budget: ResourceBudget {
            encode_bytes: 1 << 10,
            ..Default::default()
        },
        ..Default::default()
    };
    match compress(&jpeg, &tiny) {
        Err(LeptonError::BudgetExceeded { stage, .. }) => {
            assert_eq!(stage, BudgetStage::Encode)
        }
        other => panic!("undersized encode budget must trip, got {other:?}"),
    }

    // RoundtripFailed: a container checked against the wrong original.
    let other_jpeg = hostile::dc_out_of_range(); // any different bytes
    assert!(matches!(
        check_roundtrip(&other_jpeg, &container, &DecompressOptions::default()),
        Err(LeptonError::RoundtripFailed)
    ));

    // Internal(_): deliberately NOT constructible from input — it is
    // the library analogue of the paper's operational "Impossible" row.
    assert!(ExitCode::classify(&LeptonError::Internal("x")).is_operational());
}

#[test]
fn taxonomy_rows_partition_and_input_rows_are_all_hit() {
    // Errors produced by constructed inputs, one per expected row.
    let opts = CompressOptions::default();
    let jpeg = clean_jpeg();
    let mut hit: BTreeSet<ExitCode> = BTreeSet::new();

    // Success row: a clean compress.
    assert!(compress(&jpeg, &opts).is_ok());
    hit.insert(ExitCode::Success);

    let inputs: Vec<Vec<u8>> = vec![
        hostile::progressive_frame(),
        hostile::dnl_scan(),
        hostile::not_a_jpeg(),
        hostile::four_color(),
        hostile::bad_sampling(),
        hostile::ac_out_of_range(),
        hostile::dc_out_of_range(),
        hostile::huge_dims(),
    ];
    for input in &inputs {
        let err = compress(input, &opts).expect_err("hostile input refused");
        hit.insert(ExitCode::classify(&err));
    }

    // MemDecodeLimit: the decode-side budget refusal.
    let container = compress(&jpeg, &opts).unwrap();
    let starved = DecompressOptions {
        budget: ResourceBudget {
            decode_bytes: 1 << 10,
            ..Default::default()
        },
        ..Default::default()
    };
    let err = decompress_opts(&container, &starved).expect_err("starved decode refused");
    hit.insert(ExitCode::classify(&err));

    // RoundtripFailed row.
    let err = check_roundtrip(
        &hostile::not_a_jpeg(),
        &container,
        &DecompressOptions::default(),
    )
    .expect_err("wrong original");
    hit.insert(ExitCode::classify(&err));

    let reachable: BTreeSet<ExitCode> = ExitCode::ALL
        .iter()
        .copied()
        .filter(|c| !c.is_operational())
        .collect();
    assert_eq!(
        hit, reachable,
        "constructed inputs must cover exactly the input-reachable rows"
    );

    // The operational rows stay out of reach of classify() over every
    // error the library can actually return for an input.
    for code in ExitCode::ALL {
        assert_eq!(
            code.is_operational(),
            matches!(
                code,
                ExitCode::ServerShutdown
                    | ExitCode::Impossible
                    | ExitCode::AbortSignal
                    | ExitCode::Timeout
                    | ExitCode::OomKill
                    | ExitCode::OperatorInterrupt
                    | ExitCode::StorageFull
                    | ExitCode::ReadOnlyStore
            )
        );
    }
}
