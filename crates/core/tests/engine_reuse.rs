//! Determinism under engine reuse (paper §5.2).
//!
//! The engine's whole point is that worker arenas — model bins, output
//! buffers, plane storage — are *reused* across jobs. Determinism
//! demands that reuse be invisible: a heavily shared, interleaved,
//! reconfigured pool must produce byte-for-byte the same Lepton
//! containers as a fresh engine running its very first job, and every
//! container must still round-trip exactly.

use lepton_core::{CompressOptions, Engine, ThreadPolicy};
use lepton_corpus::builder::{clean_jpeg, CorpusSpec};

fn corpus() -> Vec<Vec<u8>> {
    // Different sizes exercise 1-, 2- and multi-segment paths.
    [(64, 1u64), (128, 2), (200, 3)]
        .iter()
        .map(|&(dim, seed)| {
            clean_jpeg(
                &CorpusSpec {
                    min_dim: dim,
                    max_dim: dim + 16,
                    ..Default::default()
                },
                seed,
            )
        })
        .collect()
}

fn policies() -> Vec<ThreadPolicy> {
    vec![
        ThreadPolicy::Fixed(1),
        ThreadPolicy::Fixed(2),
        ThreadPolicy::Fixed(5),
        ThreadPolicy::Auto,
    ]
}

/// Compress the same corpus through a fresh engine vs. a heavily reused
/// pool: interleaved jobs, alternating thread policies, repeated
/// rounds. Outputs must be byte-identical and every container must
/// round-trip.
#[test]
fn reused_pool_matches_fresh_engine_byte_for_byte() {
    let files = corpus();
    let policies = policies();

    // References: every (file, policy) pair on a brand-new engine whose
    // arenas have never seen another job.
    let mut reference = Vec::new();
    for jpeg in &files {
        for policy in &policies {
            let fresh = Engine::new(2);
            let opts = CompressOptions {
                threads: *policy,
                verify: false,
                ..Default::default()
            };
            reference.push(fresh.compress(jpeg, &opts).expect("fresh compress"));
        }
    }

    // One shared pool, dirtied across three rounds of interleaved work:
    // compressions under every policy, decompressions between them
    // (decode jobs reuse the same arenas), different files back to
    // back. Every output must match its fresh-engine reference.
    let pool = Engine::new(2);
    for round in 0..3 {
        let mut k = 0;
        for jpeg in &files {
            for policy in &policies {
                let opts = CompressOptions {
                    threads: *policy,
                    verify: round == 1, // round 1 also runs the verify decode inline
                    ..Default::default()
                };
                let out = pool.compress(jpeg, &opts).expect("pooled compress");
                assert_eq!(
                    out, reference[k],
                    "round {round}: pooled output diverged from fresh engine"
                );
                // Interleave decode jobs so decode arenas are reused too.
                let back = pool.decompress(&out).expect("pooled decompress");
                assert_eq!(&back, jpeg, "round {round}: round-trip mismatch");
                k += 1;
            }
        }
    }
}

/// The free functions run on the global engine; they must agree with a
/// private engine and with themselves across repeated (arena-reusing)
/// calls.
#[test]
fn global_engine_is_deterministic_across_reuse() {
    let files = corpus();
    let opts = CompressOptions {
        threads: ThreadPolicy::Fixed(3),
        verify: false,
        ..Default::default()
    };
    let private = Engine::new(2);
    for jpeg in &files {
        let first = lepton_core::compress(jpeg, &opts).expect("compress");
        for _ in 0..2 {
            assert_eq!(
                lepton_core::compress(jpeg, &opts).expect("compress"),
                first,
                "global engine output changed across reuse"
            );
        }
        assert_eq!(
            private.compress(jpeg, &opts).expect("compress"),
            first,
            "private engine disagrees with global"
        );
        assert_eq!(lepton_core::decompress(&first).expect("decompress"), *jpeg);
    }
}

/// Chunked compression through a reused engine stays deterministic and
/// chunk containers keep decompressing independently.
#[test]
fn chunked_compression_deterministic_under_reuse() {
    let files = corpus();
    let pool = Engine::new(2);
    let opts = CompressOptions {
        threads: ThreadPolicy::Fixed(2),
        verify: false,
        ..Default::default()
    };
    let jpeg = &files[2];
    let chunk = jpeg.len() / 3 + 1;
    let reference = Engine::new(2)
        .compress_chunked(jpeg, chunk, &opts)
        .expect("chunked");
    // Dirty the pool, then compare.
    for f in &files {
        let _ = pool.compress(f, &opts).expect("compress");
    }
    let again = pool.compress_chunked(jpeg, chunk, &opts).expect("chunked");
    assert_eq!(again, reference, "chunked outputs diverged under reuse");
    let mut whole = Vec::new();
    for c in &again {
        whole.extend_from_slice(&pool.decompress(c).expect("chunk decompress"));
    }
    assert_eq!(&whole, jpeg);
}
