//! Property tests for the Lepton container format (App. A.1): header
//! blob round trip over arbitrary field values, and robustness of the
//! full decode path against corrupted containers.
//!
//! The corruption property encodes the deployment's core safety claim
//! (§5.7): a decoder facing *any* bytes — truncated, bit-flipped, or
//! adversarial — must return an error or (rarely) wrong-but-bounded
//! output; it must never panic, hang, or over-allocate.

use lepton_core::format::{
    read_container, write_container, ContainerHeader, SegmentInfo, SerializedHandover,
};
use lepton_core::{compress, decompress, CompressOptions};
use lepton_corpus::builder::{clean_jpeg, CorpusSpec};
use proptest::prelude::*;

fn arb_handover() -> impl Strategy<Value = SerializedHandover> {
    (0u8..8, any::<u8>(), any::<[i16; 4]>(), any::<u32>()).prop_map(
        |(bits_used, partial, prev_dc, rst_so_far)| SerializedHandover {
            bits_used,
            partial,
            prev_dc,
            rst_so_far,
        },
    )
}

fn arb_segment() -> impl Strategy<Value = SegmentInfo> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        arb_handover(),
        any::<u32>(),
    )
        .prop_map(|(a, b, out_bytes, handover, arith)| SegmentInfo {
            mcu_start: a.min(b),
            mcu_end: a.max(b),
            out_bytes: out_bytes as u64,
            handover,
            arith_bytes: arith as u64,
        })
}

fn arb_header() -> impl Strategy<Value = ContainerHeader> {
    (
        any::<bool>(),
        proptest::collection::vec(any::<u8>(), 0..512),
        any::<u32>(),
        0u8..=2,
        any::<u32>(),
        proptest::collection::vec(any::<u8>(), 0..64),
        proptest::collection::vec(any::<u8>(), 0..64),
        proptest::collection::vec(arb_segment(), 0..9),
    )
        .prop_map(
            |(
                emit_header,
                jpeg_header,
                output_size,
                pad_bit,
                rst_count,
                prepend,
                append,
                segments,
            )| {
                ContainerHeader {
                    emit_header,
                    jpeg_header,
                    output_size,
                    pad_bit,
                    rst_count,
                    prepend,
                    append,
                    segments,
                }
            },
        )
}

proptest! {
    /// Header blob serialization is self-inverse for arbitrary field
    /// values, not just the ones our encoder happens to produce.
    #[test]
    fn header_blob_roundtrip(header in arb_header()) {
        let blob = header.serialize_blob();
        let parsed = ContainerHeader::parse_blob(&blob).expect("own blob parses");
        prop_assert_eq!(parsed, header);
    }

    /// Truncating a header blob anywhere must produce a clean error.
    #[test]
    fn truncated_header_blob_errors(header in arb_header(), cut_frac in 0.0f64..1.0) {
        let blob = header.serialize_blob();
        if blob.is_empty() {
            return Ok(());
        }
        let cut = ((blob.len() - 1) as f64 * cut_frac) as usize;
        let result = ContainerHeader::parse_blob(&blob[..cut]);
        if cut < blob.len() {
            prop_assert!(result.is_err(), "short blob must not parse (cut {cut}/{})", blob.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whole-container robustness: flip bits, truncate, or append to a
    /// real container; decode must error or produce bytes — never
    /// panic. (The qualification fuzzing regime, §6.7.)
    #[test]
    fn mutated_containers_never_panic(
        seed in any::<u64>(),
        flips in proptest::collection::vec((any::<u32>(), 0u8..8), 1..12),
        cut_frac in 0.2f64..1.0,
    ) {
        let spec = CorpusSpec {
            min_dim: 48,
            max_dim: 120,
            ..Default::default()
        };
        let jpg = clean_jpeg(&spec, seed);
        let container = compress(&jpg, &CompressOptions::default()).unwrap();

        // Bit flips.
        let mut mutated = container.clone();
        for &(pos, bit) in &flips {
            let i = (pos as usize) % mutated.len();
            mutated[i] ^= 1 << bit;
        }
        let _ = decompress(&mutated);

        // Truncation.
        let cut = (container.len() as f64 * cut_frac) as usize;
        let _ = decompress(&container[..cut]);

        // Trailing garbage.
        let mut extended = container.clone();
        extended.extend_from_slice(&[0xAA; 64]);
        let _ = decompress(&extended);
    }

    /// Raw-bytes-as-container: arbitrary data with the right magic must
    /// still fail cleanly.
    #[test]
    fn magic_prefixed_noise_errors_cleanly(noise in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut data = vec![0xCF, 0x84, 0x01];
        data.extend_from_slice(&noise);
        prop_assert!(decompress(&data).is_err());
    }
}

#[test]
fn container_section_iteration_matches_segments() {
    // A structural (non-property) check kept next to the properties:
    // the container writer's packet interleaving must cover exactly
    // the segment arith byte counts it declares.
    let spec = CorpusSpec {
        min_dim: 200,
        max_dim: 260,
        ..Default::default()
    };
    let jpg = clean_jpeg(&spec, 99);
    let opts = CompressOptions {
        threads: lepton_core::ThreadPolicy::Fixed(4),
        ..Default::default()
    };
    let data = compress(&jpg, &opts).unwrap();
    let container = read_container(&data).unwrap();
    let declared: u64 = container
        .header
        .segments
        .iter()
        .map(|s| s.arith_bytes)
        .sum();
    let mut actual = 0u64;
    for packet in lepton_core::format::packets(container.arith_section) {
        let (_, payload) = packet.expect("well-formed packet stream");
        actual += payload.len() as u64;
    }
    assert_eq!(actual, declared);

    // And the writer is the parser's inverse at the container level.
    let rewritten = {
        let streams: Vec<Vec<u8>> = {
            // Reassemble per-segment streams from packets.
            let mut per: Vec<Vec<u8>> = vec![Vec::new(); container.header.segments.len()];
            for packet in lepton_core::format::packets(container.arith_section) {
                let (sid, payload) = packet.unwrap();
                per[sid as usize].extend_from_slice(payload);
            }
            per
        };
        write_container(&container.header, &streams)
    };
    assert_eq!(
        decompress(&rewritten).unwrap(),
        jpg,
        "rewritten container decodes to the same JPEG"
    );
}
