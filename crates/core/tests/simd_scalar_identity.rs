//! Whole-pipeline SIMD/scalar identity: the container bytes produced
//! with every SIMD kernel engaged must equal the bytes produced with
//! dispatch forced to scalar — and each must decompress back to the
//! original JPEG under the *other* level. This is the end-to-end gate
//! over all four vectorized kernels (destuff scan, multi-symbol
//! Huffman, border IDCTs, deferred bin refresh) at once.

use lepton_core::{CompressOptions, Engine, ThreadPolicy};
use lepton_corpus::{Corpus, CorpusSpec};
use lepton_simd::{force_level, SimdLevel};

#[test]
fn containers_byte_identical_across_dispatch_levels() {
    let files: Vec<Vec<u8>> = Corpus::generate(&CorpusSpec {
        count: 6,
        min_dim: 96,
        max_dim: 320,
        clean_fraction: 1.0,
        seed: 0x51D_1DE7,
    })
    .files
    .into_iter()
    .map(|f| f.data)
    .collect();
    let engine = Engine::new(2);
    let detected = {
        force_level(None);
        lepton_simd::level()
    };
    // Pair decode is a perf opt-in (off by default); force it on so
    // the SIMD legs below cover the multi-symbol path end-to-end.
    lepton_jpeg::scan::set_ac_pair_decode(Some(true));
    // Fixed thread counts cover the inline single-segment path and the
    // pipelined multi-segment path.
    for threads in [1usize, 3] {
        let opts = CompressOptions {
            threads: ThreadPolicy::Fixed(threads),
            verify: true,
            ..Default::default()
        };
        for (i, jpeg) in files.iter().enumerate() {
            force_level(Some(SimdLevel::Scalar));
            let scalar = engine.compress(jpeg, &opts).expect("scalar compress");
            force_level(Some(detected));
            let simd = engine.compress(jpeg, &opts).expect("simd compress");
            assert_eq!(
                scalar, simd,
                "file {i} at {threads} threads: containers diverged (Scalar vs {detected:?})"
            );
            // Cross-decode: the scalar-built container through the SIMD
            // decoder (dispatch still forced to `detected`)...
            let back = engine.decompress(&scalar).expect("simd decompress");
            assert_eq!(&back, jpeg, "file {i}: simd decode mismatch");
            // ...and the SIMD-built container through the scalar decoder.
            force_level(Some(SimdLevel::Scalar));
            let back = engine.decompress(&simd).expect("scalar decompress");
            force_level(None);
            assert_eq!(&back, jpeg, "file {i}: scalar decode mismatch");
        }
    }
    lepton_jpeg::scan::set_ac_pair_decode(None);
}
