//! The windowed lookahead scan decoder and the Annex F reference
//! decoder must be interchangeable end-to-end: compressing the same
//! corpus through either path yields byte-identical Lepton containers
//! (same coefficients, same handover snapshots, same segment streams).
//!
//! This is the whole-system counterpart of the per-symbol equivalence
//! proptests in `lepton_jpeg` — it drives the real encoder, including
//! the pipelined multi-segment path, with the decoder implementation
//! toggled process-wide.

use lepton_core::{CompressOptions, Engine, ExitCode, ThreadPolicy};
use lepton_corpus::{mutate, Corpus, CorpusSpec, MutationKind};
use lepton_jpeg::scan::set_reference_scan_decode;
use proptest::prelude::*;

fn corpus() -> Vec<Vec<u8>> {
    Corpus::generate(&CorpusSpec {
        count: 6,
        min_dim: 96,
        max_dim: 320,
        clean_fraction: 1.0,
        seed: 0x5CA_DEC0,
    })
    .files
    .into_iter()
    .map(|f| f.data)
    .collect()
}

#[test]
fn reference_and_fast_paths_produce_identical_containers() {
    let engine = Engine::new(2);
    let files = corpus();
    // Fixed thread counts cover the inline single-segment path and the
    // pipelined multi-segment path (where the fast serial decode races
    // ahead of the arithmetic-encode jobs).
    for threads in [1usize, 3] {
        let opts = CompressOptions {
            threads: ThreadPolicy::Fixed(threads),
            verify: true,
            ..Default::default()
        };

        set_reference_scan_decode(false);
        let fast: Vec<Vec<u8>> = files
            .iter()
            .map(|f| engine.compress(f, &opts).expect("fast-path compress"))
            .collect();

        set_reference_scan_decode(true);
        let reference: Vec<Vec<u8>> = files
            .iter()
            .map(|f| engine.compress(f, &opts).expect("reference compress"))
            .collect();
        set_reference_scan_decode(false);

        for (i, (a, b)) in fast.iter().zip(&reference).enumerate() {
            assert_eq!(a, b, "container diverged for file {i} at {threads} threads");
        }
        // And the containers round-trip to the original bytes.
        for (f, c) in files.iter().zip(&fast) {
            assert_eq!(&engine.decompress(c).expect("decompress"), f);
        }
    }
}

/// What one entry-point run did to one input, reduced to what the two
/// paths must agree on: the surviving bytes after a full round trip
/// (containers themselves differ across segment counts by design), or
/// the taxonomy row plus the exact error text of the refusal.
#[derive(Debug, PartialEq, Eq)]
enum Outcome {
    Accepted(Vec<u8>),
    Refused(ExitCode, String),
}

fn run_path(engine: &Engine, threads: usize, input: &[u8]) -> Outcome {
    let opts = CompressOptions {
        threads: ThreadPolicy::Fixed(threads),
        verify: true,
        ..Default::default()
    };
    match engine.compress(input, &opts) {
        Ok(c) => Outcome::Accepted(engine.decompress(&c).expect("verified container decodes")),
        Err(e) => Outcome::Refused(ExitCode::classify(&e), e.to_string()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The pipelined multi-segment path must be observationally
    /// identical to the inline path on *hostile* inputs too, not just
    /// on the clean corpus above: the same seeded corruption either
    /// survives with byte-identical containers through both, or is
    /// refused with the same classification and message. Splitting
    /// work across segments must not change which error wins or leak a
    /// different partial result.
    #[test]
    fn corrupted_inputs_classify_identically_across_scan_paths(
        file_seed in 0u64..4,
        kind_idx in 0usize..MutationKind::ALL.len(),
        mut_seed in any::<u64>(),
    ) {
        let jpeg = Corpus::generate(&CorpusSpec {
            count: 1,
            min_dim: 96,
            max_dim: 224,
            clean_fraction: 1.0,
            seed: 0xE9_01AA ^ file_seed,
        })
        .files
        .remove(0)
        .data;
        let hostile = mutate(&jpeg, MutationKind::ALL[kind_idx], mut_seed);

        let engine = Engine::new(3);
        let inline = run_path(&engine, 1, &hostile);
        let pipelined = run_path(&engine, 3, &hostile);
        prop_assert_eq!(&inline, &pipelined);

        // And neither path may route an input-caused refusal onto an
        // operational taxonomy row.
        if let Outcome::Refused(code, msg) = &inline {
            prop_assert!(
                !code.is_operational(),
                "input refused onto operational row {:?}: {}", code, msg
            );
        }
    }
}
