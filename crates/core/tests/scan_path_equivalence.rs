//! The windowed lookahead scan decoder and the Annex F reference
//! decoder must be interchangeable end-to-end: compressing the same
//! corpus through either path yields byte-identical Lepton containers
//! (same coefficients, same handover snapshots, same segment streams).
//!
//! This is the whole-system counterpart of the per-symbol equivalence
//! proptests in `lepton_jpeg` — it drives the real encoder, including
//! the pipelined multi-segment path, with the decoder implementation
//! toggled process-wide.

use lepton_core::{CompressOptions, Engine, ThreadPolicy};
use lepton_corpus::{Corpus, CorpusSpec};
use lepton_jpeg::scan::set_reference_scan_decode;

fn corpus() -> Vec<Vec<u8>> {
    Corpus::generate(&CorpusSpec {
        count: 6,
        min_dim: 96,
        max_dim: 320,
        clean_fraction: 1.0,
        seed: 0x5CA_DEC0,
    })
    .files
    .into_iter()
    .map(|f| f.data)
    .collect()
}

#[test]
fn reference_and_fast_paths_produce_identical_containers() {
    let engine = Engine::new(2);
    let files = corpus();
    // Fixed thread counts cover the inline single-segment path and the
    // pipelined multi-segment path (where the fast serial decode races
    // ahead of the arithmetic-encode jobs).
    for threads in [1usize, 3] {
        let opts = CompressOptions {
            threads: ThreadPolicy::Fixed(threads),
            verify: true,
            ..Default::default()
        };

        set_reference_scan_decode(false);
        let fast: Vec<Vec<u8>> = files
            .iter()
            .map(|f| engine.compress(f, &opts).expect("fast-path compress"))
            .collect();

        set_reference_scan_decode(true);
        let reference: Vec<Vec<u8>> = files
            .iter()
            .map(|f| engine.compress(f, &opts).expect("reference compress"))
            .collect();
        set_reference_scan_decode(false);

        for (i, (a, b)) in fast.iter().zip(&reference).enumerate() {
            assert_eq!(a, b, "container diverged for file {i} at {threads} threads");
        }
        // And the containers round-trip to the original bytes.
        for (f, c) in files.iter().zip(&fast) {
            assert_eq!(&engine.decompress(c).expect("decompress"), f);
        }
    }
}
