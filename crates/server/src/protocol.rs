//! The conversion-service wire protocol.
//!
//! The paper's production deployment is deliberately minimal (§5.5):
//! a blockserver connects to a local Lepton process over a Unix-domain
//! socket (or, when outsourcing, to a remote machine over TCP), writes
//! the file, and half-closes; the service writes the converted bytes
//! back and closes. "The file is complete once the socket is shut down
//! for writing."
//!
//! We keep exactly that shape and add the two bytes the paper leaves
//! implicit: a leading *op* byte on the request (so one port serves
//! compress, decompress, and load probes) and a leading *status* byte
//! on the response (so a client can tell a converted payload from a
//! rejection without sniffing magic numbers).
//!
//! ```text
//! request  = op:u8  payload:*    EOF(shutdown write)
//! response = status:u8 payload:* EOF(close)
//! ```
//!
//! Rejection statuses carry the §6.2 exit-code taxonomy so the caller
//! can account for them exactly like the production exit-code table.
//!
//! # Framed (multiplexed) mode
//!
//! The one-conversion-per-connection shape cannot pipeline: the
//! request end is marked by half-close, so a second request needs a
//! second connection. A client that wants pipelining sends the
//! [`MUX_MAGIC`] byte (`'M'`, unused by any legacy op) as its *first*
//! byte instead of an op; the connection then switches to a framed
//! protocol for its whole lifetime:
//!
//! ```text
//! request frame  = id:u32le op:u8     len:u32le payload[len]
//! response frame = id:u32le status:u8 len:u32le payload[len]
//! ```
//!
//! Frame ids are chosen by the client and echoed back verbatim;
//! responses may complete **out of order** (the whole point — a small
//! ping never queues behind a large conversion), so the id is the only
//! correlation. Legacy clients are untouched: a connection that opens
//! with any other byte gets the classic half-close protocol.

use lepton_core::ExitCode;
use std::io::{self, Read, Write};

/// Request operation, the first byte on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// JPEG in, Lepton container out.
    Compress,
    /// Lepton container in, original JPEG bytes out.
    Decompress,
    /// No payload; empty OK response. Liveness probe.
    Ping,
    /// No payload; returns a [`StatsReply`]. Load probe used by the
    /// power-of-two-choices outsourcing router.
    Stats,
    /// No payload; returns a versioned telemetry snapshot
    /// (`lepton_obs::Snapshot` wire format v2: length-prefixed
    /// key/value metrics plus sparse histogram buckets). Old clients
    /// keep sending [`Op::Stats`] and still get the fixed 24-byte
    /// [`StatsReply`]; the two ops coexist indefinitely.
    StatsV2,
    /// Block bytes in, 32-byte content address out: store a block in
    /// the service's blockstore (compress-on-write is transparent —
    /// the address is the SHA-256 of what was sent).
    BlockPut,
    /// 32-byte content address in, original block bytes out.
    BlockGet,
    /// No payload; returns a [`BlockStatReply`] summarizing the
    /// service's blockstore.
    BlockStat,
    /// No payload; returns every block address in the service's
    /// blockstore as concatenated 32-byte digests. What a fleet
    /// rebalance driver walks to find blocks whose replica set
    /// changed.
    ///
    /// The reply is a single unpaginated body, so a client's response
    /// budget caps how many keys it can list (the default 64 MiB
    /// buffers ~2M addresses). Stores beyond that need a paginated
    /// listing op — future work; until then the client surfaces the
    /// overflow as a non-transient `InvalidData` error.
    BlockList,
}

impl Op {
    /// Wire encoding.
    pub fn to_wire(self) -> u8 {
        match self {
            Op::Compress => b'C',
            Op::Decompress => b'D',
            Op::Ping => b'P',
            Op::Stats => b'S',
            Op::StatsV2 => b'V',
            Op::BlockPut => b'B',
            Op::BlockGet => b'G',
            Op::BlockStat => b'T',
            Op::BlockList => b'L',
        }
    }

    /// Decode a wire byte.
    pub fn from_wire(b: u8) -> Option<Op> {
        match b {
            b'C' => Some(Op::Compress),
            b'D' => Some(Op::Decompress),
            b'P' => Some(Op::Ping),
            b'S' => Some(Op::Stats),
            b'V' => Some(Op::StatsV2),
            b'B' => Some(Op::BlockPut),
            b'G' => Some(Op::BlockGet),
            b'T' => Some(Op::BlockStat),
            b'L' => Some(Op::BlockList),
            _ => None,
        }
    }

    /// Every op, in wire-introduction order. Drives per-op metric
    /// arrays and exhaustiveness tests.
    pub const ALL: [Op; 9] = [
        Op::Compress,
        Op::Decompress,
        Op::Ping,
        Op::Stats,
        Op::StatsV2,
        Op::BlockPut,
        Op::BlockGet,
        Op::BlockStat,
        Op::BlockList,
    ];

    /// Stable lowercase label used in metric names
    /// (`server.op.<name>.latency_us`).
    pub fn name(self) -> &'static str {
        match self {
            Op::Compress => "compress",
            Op::Decompress => "decompress",
            Op::Ping => "ping",
            Op::Stats => "stats",
            Op::StatsV2 => "stats_v2",
            Op::BlockPut => "block_put",
            Op::BlockGet => "block_get",
            Op::BlockStat => "block_stat",
            Op::BlockList => "block_list",
        }
    }

    /// Dense index into [`Op::ALL`], for per-op metric arrays.
    pub fn index(self) -> usize {
        match self {
            Op::Compress => 0,
            Op::Decompress => 1,
            Op::Ping => 2,
            Op::Stats => 3,
            Op::StatsV2 => 4,
            Op::BlockPut => 5,
            Op::BlockGet => 6,
            Op::BlockStat => 7,
            Op::BlockList => 8,
        }
    }
}

/// Response status, the first byte on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// Conversion succeeded; payload follows.
    Ok,
    /// Request malformed (unknown op, empty compress body, …).
    BadRequest,
    /// Request exceeded the service's size budget.
    TooLarge,
    /// The shutoff switch is engaged; caller should fall back to
    /// Deflate (§5.7).
    Shutdown,
    /// The conversion exceeded the request timeout (§6.6).
    Timeout,
    /// Blockstore read: no block at the requested address.
    NotFound,
    /// Server-side storage failure (I/O error, or a block whose
    /// on-disk record failed its integrity check — corrupted blocks
    /// are refused, never served).
    StorageFailed,
    /// Admission control shed this request: the conversion backlog is
    /// past the configured depth and queueing more work would only
    /// grow latency. Unlike [`Status::Rejected`] this says nothing
    /// about the input — retry after backoff, ideally elsewhere.
    Overloaded,
    /// The store is latched read-only (ENOSPC or a failed fsync).
    /// Writes are shed; reads still serve. Transient from the
    /// client's perspective — retry elsewhere in the fleet.
    ReadOnly,
    /// The input was rejected; carries the exit-code taxonomy row.
    Rejected(ExitCode),
}

/// Offset added to [`ExitCode`] indices in the wire encoding, leaving
/// room for protocol-level statuses below it.
const REJECT_BASE: u8 = 0x10;

fn exit_code_index(code: ExitCode) -> u8 {
    EXIT_CODES.iter().position(|c| *c == code).unwrap_or(0) as u8
}

/// All exit codes, in the paper's table order (§6.2); the wire index.
pub const EXIT_CODES: [ExitCode; 18] = [
    ExitCode::Success,
    ExitCode::Progressive,
    ExitCode::UnsupportedJpeg,
    ExitCode::NotAnImage,
    ExitCode::FourColorCmyk,
    ExitCode::MemDecodeLimit,
    ExitCode::MemEncodeLimit,
    ExitCode::ServerShutdown,
    ExitCode::Impossible,
    ExitCode::AbortSignal,
    ExitCode::Timeout,
    ExitCode::ChromaSubsampleBig,
    ExitCode::AcOutOfRange,
    ExitCode::RoundtripFailed,
    ExitCode::OomKill,
    ExitCode::OperatorInterrupt,
    ExitCode::StorageFull,
    ExitCode::ReadOnlyStore,
];

impl Status {
    /// Wire encoding.
    pub fn to_wire(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::BadRequest => 1,
            Status::TooLarge => 2,
            Status::Shutdown => 3,
            Status::Timeout => 4,
            Status::NotFound => 5,
            Status::StorageFailed => 6,
            Status::Overloaded => 7,
            Status::ReadOnly => 8,
            Status::Rejected(code) => REJECT_BASE + exit_code_index(code),
        }
    }

    /// Decode a wire byte.
    pub fn from_wire(b: u8) -> Option<Status> {
        match b {
            0 => Some(Status::Ok),
            1 => Some(Status::BadRequest),
            2 => Some(Status::TooLarge),
            3 => Some(Status::Shutdown),
            4 => Some(Status::Timeout),
            5 => Some(Status::NotFound),
            6 => Some(Status::StorageFailed),
            7 => Some(Status::Overloaded),
            8 => Some(Status::ReadOnly),
            b if b >= REJECT_BASE => EXIT_CODES
                .get((b - REJECT_BASE) as usize)
                .map(|c| Status::Rejected(*c)),
            _ => None,
        }
    }

    /// True for `Ok`.
    pub fn is_ok(self) -> bool {
        self == Status::Ok
    }
}

/// The reply payload of [`Op::Stats`]: a fixed 24-byte little-endian
/// record. This is what an outsourcing router compares when it has two
/// random choices in hand (§5.5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Conversions in flight right now.
    pub active: u32,
    /// Most conversions ever in flight at once.
    pub high_water: u32,
    /// The server's configured busy threshold (outsource if exceeded).
    pub busy_threshold: u32,
    /// Conversions served since start.
    pub total_served: u64,
    /// Conversions rejected or failed since start.
    pub total_failed: u32,
}

impl StatsReply {
    /// Serialized size in bytes.
    pub const WIRE_LEN: usize = 24;

    /// Encode to the fixed wire record.
    pub fn to_wire(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[0..4].copy_from_slice(&self.active.to_le_bytes());
        out[4..8].copy_from_slice(&self.high_water.to_le_bytes());
        out[8..12].copy_from_slice(&self.busy_threshold.to_le_bytes());
        out[12..20].copy_from_slice(&self.total_served.to_le_bytes());
        out[20..24].copy_from_slice(&self.total_failed.to_le_bytes());
        out
    }

    /// Decode the fixed wire record.
    pub fn from_wire(b: &[u8]) -> Option<StatsReply> {
        if b.len() != Self::WIRE_LEN {
            return None;
        }
        let le32 = |i: usize| u32::from_le_bytes(b[i..i + 4].try_into().unwrap());
        let le64 = |i: usize| u64::from_le_bytes(b[i..i + 8].try_into().unwrap());
        Some(StatsReply {
            active: le32(0),
            high_water: le32(4),
            busy_threshold: le32(8),
            total_served: le64(12),
            total_failed: le32(20),
        })
    }

    /// Is this server over its busy threshold (the outsourcing
    /// trigger, §5.5: "more than three conversions happening at a
    /// time")?
    pub fn is_busy(&self) -> bool {
        self.active > self.busy_threshold
    }
}

/// The reply payload of [`Op::BlockStat`]: a fixed 56-byte
/// little-endian record summarizing the service's blockstore.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockStatReply {
    /// Blocks at rest.
    pub blocks: u64,
    /// Of which Lepton-compressed.
    pub lepton_blocks: u64,
    /// Of which raw.
    pub raw_blocks: u64,
    /// Sum of original (logical) block sizes.
    pub logical_bytes: u64,
    /// Sum of at-rest payload sizes.
    pub stored_bytes: u64,
    /// Decoded-block cache hits so far.
    pub cache_hits: u64,
    /// Decoded-block cache misses so far.
    pub cache_misses: u64,
}

impl BlockStatReply {
    /// Serialized size in bytes.
    pub const WIRE_LEN: usize = 56;

    /// Encode to the fixed wire record.
    pub fn to_wire(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        for (i, v) in [
            self.blocks,
            self.lepton_blocks,
            self.raw_blocks,
            self.logical_bytes,
            self.stored_bytes,
            self.cache_hits,
            self.cache_misses,
        ]
        .into_iter()
        .enumerate()
        {
            out[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Decode the fixed wire record.
    pub fn from_wire(b: &[u8]) -> Option<BlockStatReply> {
        if b.len() != Self::WIRE_LEN {
            return None;
        }
        let le64 = |i: usize| u64::from_le_bytes(b[i * 8..i * 8 + 8].try_into().unwrap());
        Some(BlockStatReply {
            blocks: le64(0),
            lepton_blocks: le64(1),
            raw_blocks: le64(2),
            logical_bytes: le64(3),
            stored_bytes: le64(4),
            cache_hits: le64(5),
            cache_misses: le64(6),
        })
    }

    /// Storage savings fraction (0..1) over the whole store.
    pub fn savings(&self) -> f64 {
        if self.logical_bytes == 0 {
            0.0
        } else {
            1.0 - self.stored_bytes as f64 / self.logical_bytes as f64
        }
    }
}

/// Read a request (op byte + payload-until-EOF) from a stream whose
/// peer half-closes to mark the end, enforcing `max_payload`.
///
/// Returns `Ok(None)` if the peer closed before sending an op byte.
pub fn read_request<R: Read>(
    stream: &mut R,
    max_payload: usize,
) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut op = [0u8; 1];
    let mut got = 0;
    while got < 1 {
        match stream.read(&mut op)? {
            0 => return Ok(None),
            n => got += n,
        }
    }
    let payload = read_bounded(stream, max_payload)?;
    Ok(Some((op[0], payload)))
}

/// Read until EOF but never buffer more than `max` bytes; a payload
/// exceeding the bound is an `InvalidData` error (the SECCOMP-era
/// discipline: input size is policed before it becomes memory, §5.1).
pub fn read_bounded<R: Read>(stream: &mut R, max: usize) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 64 << 10];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(buf);
        }
        if buf.len() + n > max {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request exceeds size budget",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Write a response: status byte then payload. The caller closes (or
/// drops) the stream to mark completion.
pub fn write_response<W: Write>(stream: &mut W, status: Status, payload: &[u8]) -> io::Result<()> {
    stream.write_all(&[status.to_wire()])?;
    stream.write_all(payload)?;
    stream.flush()
}

/// First byte of a connection that wants the framed multiplexed
/// protocol instead of the legacy one-conversion-per-connection shape.
/// Deliberately outside the legacy op alphabet so the two modes cannot
/// be confused.
pub const MUX_MAGIC: u8 = b'M';

/// Fixed bytes before a frame's payload: `id:u32le byte:u8 len:u32le`.
pub const FRAME_HEADER_LEN: usize = 9;

/// One frame of the multiplexed protocol, either direction: the
/// client's `byte` is an op, the server's a status.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Client-chosen correlation id, echoed verbatim on the response.
    pub id: u32,
    /// Op byte (requests) or status byte (responses).
    pub byte: u8,
    /// The frame body.
    pub payload: Vec<u8>,
}

/// Read one frame. `Ok(None)` means the peer closed cleanly at a frame
/// boundary; a partial header is an `UnexpectedEof` error. A declared
/// length above `max_payload` is refused (`InvalidData`) *before* any
/// allocation — the §5.1 discipline: input size is policed before it
/// becomes memory.
pub fn read_frame<R: Read>(stream: &mut R, max_payload: usize) -> io::Result<Option<Frame>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut got = 0;
    while got < header.len() {
        match stream.read(&mut header[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame-header",
                ))
            }
            n => got += n,
        }
    }
    let id = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let byte = header[4];
    let len = u32::from_le_bytes(header[5..9].try_into().unwrap()) as usize;
    if len > max_payload {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds size budget",
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(Frame { id, byte, payload }))
}

/// Write one frame (either direction) and flush it.
pub fn write_frame<W: Write>(stream: &mut W, id: u32, byte: u8, payload: &[u8]) -> io::Result<()> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0..4].copy_from_slice(&id.to_le_bytes());
    header[4] = byte;
    header[5..9].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    stream.write_all(&header)?;
    stream.write_all(payload)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_wire_roundtrip() {
        for (i, op) in Op::ALL.into_iter().enumerate() {
            assert_eq!(Op::from_wire(op.to_wire()), Some(op));
            assert_eq!(op.index(), i, "ALL order matches index()");
        }
        assert_eq!(Op::from_wire(b'X'), None);
        assert_eq!(Op::from_wire(0), None);
    }

    #[test]
    fn status_wire_roundtrip() {
        let mut statuses = vec![
            Status::Ok,
            Status::BadRequest,
            Status::TooLarge,
            Status::Shutdown,
            Status::Timeout,
            Status::NotFound,
            Status::StorageFailed,
            Status::Overloaded,
            Status::ReadOnly,
        ];
        statuses.extend(EXIT_CODES.iter().map(|c| Status::Rejected(*c)));
        for s in statuses {
            assert_eq!(Status::from_wire(s.to_wire()), Some(s), "{s:?}");
        }
    }

    #[test]
    fn status_wire_rejects_gaps_and_overflow() {
        assert_eq!(Status::from_wire(9), None);
        assert_eq!(Status::from_wire(0x0f), None);
        assert_eq!(
            Status::from_wire(REJECT_BASE + EXIT_CODES.len() as u8),
            None
        );
        assert_eq!(Status::from_wire(0xff), None);
    }

    #[test]
    fn exit_codes_map_to_distinct_wire_bytes() {
        let mut seen = std::collections::BTreeSet::new();
        for c in EXIT_CODES {
            assert!(seen.insert(Status::Rejected(c).to_wire()));
        }
        assert_eq!(seen.len(), EXIT_CODES.len());
    }

    #[test]
    fn stats_reply_roundtrip() {
        let s = StatsReply {
            active: 7,
            high_water: 19,
            busy_threshold: 3,
            total_served: 1 << 40,
            total_failed: 12,
        };
        assert_eq!(StatsReply::from_wire(&s.to_wire()), Some(s));
        assert_eq!(StatsReply::from_wire(&[0u8; 23]), None);
        assert_eq!(StatsReply::from_wire(&[0u8; 25]), None);
    }

    #[test]
    fn block_stat_reply_roundtrip() {
        let s = BlockStatReply {
            blocks: 12,
            lepton_blocks: 9,
            raw_blocks: 3,
            logical_bytes: 1 << 33,
            stored_bytes: 3 << 30,
            cache_hits: 77,
            cache_misses: 13,
        };
        assert_eq!(BlockStatReply::from_wire(&s.to_wire()), Some(s));
        assert_eq!(BlockStatReply::from_wire(&[0u8; 55]), None);
        assert!(s.savings() > 0.5);
    }

    #[test]
    fn busy_is_strictly_greater_than_threshold() {
        let mut s = StatsReply {
            busy_threshold: 3,
            ..Default::default()
        };
        s.active = 3;
        assert!(!s.is_busy(), "paper outsources on *more than* three");
        s.active = 4;
        assert!(s.is_busy());
    }

    #[test]
    fn read_request_parses_op_and_body() {
        let mut wire: &[u8] = b"Chello";
        let (op, body) = read_request(&mut wire, 1 << 20).unwrap().unwrap();
        assert_eq!(op, b'C');
        assert_eq!(body, b"hello");
    }

    #[test]
    fn read_request_empty_stream_is_none() {
        let mut wire: &[u8] = b"";
        assert!(read_request(&mut wire, 1 << 20).unwrap().is_none());
    }

    #[test]
    fn read_bounded_enforces_budget() {
        let big = vec![0u8; 4096];
        let mut s: &[u8] = &big;
        assert!(read_bounded(&mut s, 4095).is_err());
        let mut s: &[u8] = &big;
        assert_eq!(read_bounded(&mut s, 4096).unwrap().len(), 4096);
    }

    #[test]
    fn write_response_prefixes_status() {
        let mut out = Vec::new();
        write_response(&mut out, Status::Rejected(ExitCode::Progressive), b"p").unwrap();
        assert_eq!(out[0], Status::Rejected(ExitCode::Progressive).to_wire());
        assert_eq!(&out[1..], b"p");
    }

    #[test]
    fn mux_magic_is_not_a_legacy_op() {
        assert_eq!(Op::from_wire(MUX_MAGIC), None, "mode byte must be free");
    }

    #[test]
    fn frame_roundtrip_and_clean_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 7, Op::Compress.to_wire(), b"body").unwrap();
        write_frame(&mut wire, 8, Status::Ok.to_wire(), &[]).unwrap();
        let mut r: &[u8] = &wire;
        let f1 = read_frame(&mut r, 1 << 20).unwrap().unwrap();
        assert_eq!(
            (f1.id, f1.byte, f1.payload.as_slice()),
            (7, b'C', &b"body"[..])
        );
        let f2 = read_frame(&mut r, 1 << 20).unwrap().unwrap();
        assert_eq!((f2.id, f2.byte, f2.payload.len()), (8, 0, 0));
        assert!(read_frame(&mut r, 1 << 20).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn frame_length_is_policed_before_allocation() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, b'C', &[0u8; 100]).unwrap();
        let mut r: &[u8] = &wire;
        let err = read_frame(&mut r, 99).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_error_not_a_hang() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, b'C', b"abcdef").unwrap();
        // Header cut short.
        let mut r: &[u8] = &wire[..4];
        assert!(read_frame(&mut r, 1 << 20).is_err());
        // Payload cut short.
        let mut r: &[u8] = &wire[..FRAME_HEADER_LEN + 2];
        assert!(read_frame(&mut r, 1 << 20).is_err());
    }
}
