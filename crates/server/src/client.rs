//! Blocking client for the conversion service.
//!
//! One conversion per connection, exactly as the blockserver does it
//! (§5.5): connect, write op + payload, half-close, read status +
//! payload to EOF.

use crate::endpoint::Endpoint;
use crate::protocol::{read_bounded, BlockStatReply, Op, StatsReply, Status};
use std::io::{self, Read, Write};
use std::time::Duration;

/// Errors a conversion client can see.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, read, write, timeout).
    Io(io::Error),
    /// The service answered, but with a non-OK status.
    Refused(Status),
    /// The service's response did not parse.
    Garbled(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Refused(s) => write!(f, "refused: {s:?}"),
            ClientError::Garbled(w) => write!(f, "garbled response: {w}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// True when the failure was a socket timeout — the §6.6 "decode
    /// exceeded the timeout window" condition the caller must queue
    /// for automated investigation.
    pub fn is_timeout(&self) -> bool {
        match self {
            ClientError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            ClientError::Refused(Status::Timeout) => true,
            _ => false,
        }
    }
}

/// Maximum response size a client will buffer (a decompressed chunk
/// plus headroom).
const MAX_RESPONSE: usize = 64 << 20;

/// Issue one request and read the full response.
pub fn convert(
    ep: &Endpoint,
    op: Op,
    payload: &[u8],
    timeout: Duration,
) -> Result<(Status, Vec<u8>), ClientError> {
    let mut conn = ep.connect(Some(timeout))?;
    conn.write_all(&[op.to_wire()])?;
    conn.write_all(payload)?;
    conn.flush()?;
    conn.shutdown_write()?;

    let mut status_byte = [0u8; 1];
    let mut got = 0;
    while got < 1 {
        match conn.read(&mut status_byte)? {
            0 => return Err(ClientError::Garbled("empty response")),
            n => got += n,
        }
    }
    let status =
        Status::from_wire(status_byte[0]).ok_or(ClientError::Garbled("unknown status byte"))?;
    let body = read_bounded(&mut conn, MAX_RESPONSE)?;
    Ok((status, body))
}

/// Compress a JPEG via the service; `Ok` payload is the container.
pub fn compress(ep: &Endpoint, jpeg: &[u8], timeout: Duration) -> Result<Vec<u8>, ClientError> {
    match convert(ep, Op::Compress, jpeg, timeout)? {
        (Status::Ok, body) => Ok(body),
        (status, _) => Err(ClientError::Refused(status)),
    }
}

/// Decompress a Lepton container via the service.
pub fn decompress(
    ep: &Endpoint,
    container: &[u8],
    timeout: Duration,
) -> Result<Vec<u8>, ClientError> {
    match convert(ep, Op::Decompress, container, timeout)? {
        (Status::Ok, body) => Ok(body),
        (status, _) => Err(ClientError::Refused(status)),
    }
}

/// Liveness probe.
pub fn ping(ep: &Endpoint, timeout: Duration) -> Result<(), ClientError> {
    match convert(ep, Op::Ping, &[], timeout)? {
        (Status::Ok, _) => Ok(()),
        (status, _) => Err(ClientError::Refused(status)),
    }
}

/// Load probe: the number the outsourcing router compares (§5.5).
pub fn probe(ep: &Endpoint, timeout: Duration) -> Result<StatsReply, ClientError> {
    match convert(ep, Op::Stats, &[], timeout)? {
        (Status::Ok, body) => {
            StatsReply::from_wire(&body).ok_or(ClientError::Garbled("stats reply size"))
        }
        (status, _) => Err(ClientError::Refused(status)),
    }
}

/// Store a block in the service's blockstore; returns its 32-byte
/// content address (the SHA-256 of `data`).
pub fn block_put(ep: &Endpoint, data: &[u8], timeout: Duration) -> Result<[u8; 32], ClientError> {
    match convert(ep, Op::BlockPut, data, timeout)? {
        (Status::Ok, body) => <[u8; 32]>::try_from(body.as_slice())
            .map_err(|_| ClientError::Garbled("block address size")),
        (status, _) => Err(ClientError::Refused(status)),
    }
}

/// Fetch a block's original bytes by content address. `Ok(None)` means
/// the service has no block at that address.
pub fn block_get(
    ep: &Endpoint,
    key: &[u8; 32],
    timeout: Duration,
) -> Result<Option<Vec<u8>>, ClientError> {
    match convert(ep, Op::BlockGet, key, timeout)? {
        (Status::Ok, body) => Ok(Some(body)),
        (Status::NotFound, _) => Ok(None),
        (status, _) => Err(ClientError::Refused(status)),
    }
}

/// Summarize the service's blockstore.
pub fn block_stat(ep: &Endpoint, timeout: Duration) -> Result<BlockStatReply, ClientError> {
    match convert(ep, Op::BlockStat, &[], timeout)? {
        (Status::Ok, body) => {
            BlockStatReply::from_wire(&body).ok_or(ClientError::Garbled("block stat reply size"))
        }
        (status, _) => Err(ClientError::Refused(status)),
    }
}
