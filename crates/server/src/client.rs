//! Blocking clients for the conversion service.
//!
//! Two ways to talk to a service:
//!
//! * The free functions ([`compress`], [`block_get`], …) speak the
//!   legacy one-conversion-per-connection protocol, exactly as the
//!   blockserver does it (§5.5): connect, write op + payload,
//!   half-close, read status + payload to EOF.
//! * [`MuxClient`] speaks the framed multiplexed protocol: one
//!   connection, many pipelined requests, responses correlated by
//!   frame id and possibly out of order.

use crate::endpoint::{Conn, Endpoint};
use crate::protocol::{
    read_bounded, read_frame, write_frame, BlockStatReply, Frame, Op, StatsReply, Status, MUX_MAGIC,
};
use lepton_obs::Snapshot;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::time::Duration;

/// Errors a conversion client can see.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, read, write, timeout).
    Io(io::Error),
    /// The service answered, but with a non-OK status.
    Refused(Status),
    /// The service's response did not parse.
    Garbled(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Refused(s) => write!(f, "refused: {s:?}"),
            ClientError::Garbled(w) => write!(f, "garbled response: {w}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// True when the failure was a socket timeout — the §6.6 "decode
    /// exceeded the timeout window" condition the caller must queue
    /// for automated investigation.
    pub fn is_timeout(&self) -> bool {
        match self {
            ClientError::Io(e) => matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            ClientError::Refused(Status::Timeout) => true,
            _ => false,
        }
    }

    /// True when retrying the same request could plausibly succeed:
    /// transport failures, timeouts, and admission-control sheds
    /// ([`Status::Overloaded`] is a statement about the *service's*
    /// moment, not about the request — backing off and retrying,
    /// ideally elsewhere, is exactly what the shedding node wants).
    /// A non-timeout refusal is authoritative (the input is bad
    /// everywhere — §5.5's router never re-runs a rejection), a
    /// garbled reply means a protocol mismatch no retry will fix, and
    /// an `InvalidData` I/O error is the size-budget gate
    /// (`read_bounded`) — deterministic, so retrying it only burns
    /// backoff sleeps.
    /// A read-only shed ([`Status::ReadOnly`]) is likewise about the
    /// *replica's disk*, not the request — another node can take the
    /// write, so it is transient too.
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Io(e) => e.kind() != io::ErrorKind::InvalidData,
            ClientError::Refused(Status::Overloaded) => true,
            ClientError::Refused(Status::ReadOnly) => true,
            _ => self.is_timeout(),
        }
    }
}

/// Bounded retry-with-backoff for one-shot requests. Every caller of
/// this crate used to hand-roll single attempts; the fleet gateway's
/// failover path needs disciplined retries, so the policy lives here
/// where any client can use it.
///
/// ```
/// use lepton_server::RetryPolicy;
/// use std::time::Duration;
///
/// let policy = RetryPolicy {
///     attempts: 4,
///     initial_backoff: Duration::from_millis(10),
///     multiplier: 2,
///     max_backoff: Duration::from_millis(25),
///     jitter: None,
/// };
/// assert_eq!(policy.backoff_for(0), Duration::from_millis(10));
/// assert_eq!(policy.backoff_for(1), Duration::from_millis(20));
/// assert_eq!(policy.backoff_for(2), Duration::from_millis(25)); // capped
/// assert_eq!(RetryPolicy::none().attempts, 1); // single shot
///
/// // Seeded jitter: deterministic, always within (half, full].
/// let jittered = RetryPolicy { jitter: Some(7), ..policy };
/// let d = jittered.backoff_for(1);
/// assert!(d > Duration::from_millis(10) && d <= Duration::from_millis(20));
/// assert_eq!(d, jittered.backoff_for(1)); // same seed, same sleep
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means no retry).
    pub attempts: u32,
    /// Sleep before the first retry.
    pub initial_backoff: Duration,
    /// Each subsequent backoff multiplies by this (exponential).
    pub multiplier: u32,
    /// Backoff ceiling, whatever the exponent says.
    pub max_backoff: Duration,
    /// Backoff jitter seed. `None` keeps the exact exponential
    /// schedule; `Some(seed)` scales each sleep by a pseudo-random
    /// factor in (0.5, 1.0], a pure function of `(seed, attempt)` —
    /// so a shed storm's synchronized clients fan out instead of
    /// retrying in lockstep, while a test replaying the same seed
    /// sees the same sleeps.
    pub jitter: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            initial_backoff: Duration::from_millis(50),
            multiplier: 2,
            max_backoff: Duration::from_secs(2),
            jitter: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no sleeping).
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            initial_backoff: Duration::ZERO,
            multiplier: 1,
            max_backoff: Duration::ZERO,
            jitter: None,
        }
    }

    /// The same policy with seeded backoff jitter enabled.
    pub fn with_jitter(self, seed: u64) -> Self {
        RetryPolicy {
            jitter: Some(seed),
            ..self
        }
    }

    /// The sleep after failed attempt number `attempt` (0-based):
    /// `initial * multiplier^attempt`, capped at `max_backoff`, then
    /// scaled into (0.5, 1.0] of itself when jitter is seeded.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let factor = self.multiplier.max(1).saturating_pow(attempt).min(1 << 20);
        let base = (self.initial_backoff * factor).min(self.max_backoff);
        match self.jitter {
            None => base,
            Some(seed) => {
                // SplitMix64 over (seed, attempt): full-period, cheap,
                // and — unlike thread-local RNG state — replayable.
                let mut z = seed
                    .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                // Scale by (0.5, 1.0]: half-to-full keeps the ceiling
                // meaningful while decorrelating the fleet.
                let frac = 0.5 + ((z >> 11) as f64 + 1.0) / (1u64 << 54) as f64;
                base.mul_f64(frac)
            }
        }
    }
}

/// Run `op` up to `policy.attempts` times, sleeping the policy's
/// backoff between attempts. Only [transient](ClientError::is_transient)
/// errors are retried — a refusal or garbled reply returns
/// immediately. `op` receives the 0-based attempt number.
pub fn retry_with_backoff<T>(
    policy: &RetryPolicy,
    mut op: impl FnMut(u32) -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    let attempts = policy.attempts.max(1);
    let mut attempt = 0;
    loop {
        match op(attempt) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt + 1 < attempts => {
                std::thread::sleep(policy.backoff_for(attempt));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Maximum response size a client will buffer (a decompressed chunk
/// plus headroom).
const MAX_RESPONSE: usize = 64 << 20;

/// Issue one request and read the full response.
pub fn convert(
    ep: &Endpoint,
    op: Op,
    payload: &[u8],
    timeout: Duration,
) -> Result<(Status, Vec<u8>), ClientError> {
    let mut conn = ep.connect(Some(timeout))?;
    conn.write_all(&[op.to_wire()])?;
    conn.write_all(payload)?;
    conn.flush()?;
    conn.shutdown_write()?;

    let mut status_byte = [0u8; 1];
    let mut got = 0;
    while got < 1 {
        match conn.read(&mut status_byte)? {
            0 => return Err(ClientError::Garbled("empty response")),
            n => got += n,
        }
    }
    let status =
        Status::from_wire(status_byte[0]).ok_or(ClientError::Garbled("unknown status byte"))?;
    let body = read_bounded(&mut conn, MAX_RESPONSE)?;
    Ok((status, body))
}

/// Compress a JPEG via the service; `Ok` payload is the container.
pub fn compress(ep: &Endpoint, jpeg: &[u8], timeout: Duration) -> Result<Vec<u8>, ClientError> {
    match convert(ep, Op::Compress, jpeg, timeout)? {
        (Status::Ok, body) => Ok(body),
        (status, _) => Err(ClientError::Refused(status)),
    }
}

/// Decompress a Lepton container via the service.
pub fn decompress(
    ep: &Endpoint,
    container: &[u8],
    timeout: Duration,
) -> Result<Vec<u8>, ClientError> {
    match convert(ep, Op::Decompress, container, timeout)? {
        (Status::Ok, body) => Ok(body),
        (status, _) => Err(ClientError::Refused(status)),
    }
}

/// Liveness probe.
pub fn ping(ep: &Endpoint, timeout: Duration) -> Result<(), ClientError> {
    match convert(ep, Op::Ping, &[], timeout)? {
        (Status::Ok, _) => Ok(()),
        (status, _) => Err(ClientError::Refused(status)),
    }
}

/// Load probe: the number the outsourcing router compares (§5.5).
pub fn probe(ep: &Endpoint, timeout: Duration) -> Result<StatsReply, ClientError> {
    match convert(ep, Op::Stats, &[], timeout)? {
        (Status::Ok, body) => {
            StatsReply::from_wire(&body).ok_or(ClientError::Garbled("stats reply size"))
        }
        (status, _) => Err(ClientError::Refused(status)),
    }
}

/// Full telemetry snapshot (`Stats` v2): every registry counter,
/// gauge, and latency histogram, plus the degraded-health flag.
/// Old servers that do not speak `Op::StatsV2` refuse the op with a
/// typed status; callers can fall back to [`probe`].
pub fn probe_snapshot(ep: &Endpoint, timeout: Duration) -> Result<Snapshot, ClientError> {
    match convert(ep, Op::StatsV2, &[], timeout)? {
        (Status::Ok, body) => {
            Snapshot::from_wire(&body).map_err(|_| ClientError::Garbled("stats v2 snapshot"))
        }
        (status, _) => Err(ClientError::Refused(status)),
    }
}

/// Store a block in the service's blockstore; returns its 32-byte
/// content address (the SHA-256 of `data`).
pub fn block_put(ep: &Endpoint, data: &[u8], timeout: Duration) -> Result<[u8; 32], ClientError> {
    match convert(ep, Op::BlockPut, data, timeout)? {
        (Status::Ok, body) => <[u8; 32]>::try_from(body.as_slice())
            .map_err(|_| ClientError::Garbled("block address size")),
        (status, _) => Err(ClientError::Refused(status)),
    }
}

/// Fetch a block's original bytes by content address. `Ok(None)` means
/// the service has no block at that address.
pub fn block_get(
    ep: &Endpoint,
    key: &[u8; 32],
    timeout: Duration,
) -> Result<Option<Vec<u8>>, ClientError> {
    match convert(ep, Op::BlockGet, key, timeout)? {
        (Status::Ok, body) => Ok(Some(body)),
        (Status::NotFound, _) => Ok(None),
        (status, _) => Err(ClientError::Refused(status)),
    }
}

/// Summarize the service's blockstore.
pub fn block_stat(ep: &Endpoint, timeout: Duration) -> Result<BlockStatReply, ClientError> {
    match convert(ep, Op::BlockStat, &[], timeout)? {
        (Status::Ok, body) => {
            BlockStatReply::from_wire(&body).ok_or(ClientError::Garbled("block stat reply size"))
        }
        (status, _) => Err(ClientError::Refused(status)),
    }
}

/// List every block address in the service's blockstore. The reply is
/// concatenated 32-byte digests; anything else is garbled.
pub fn block_list(ep: &Endpoint, timeout: Duration) -> Result<Vec<[u8; 32]>, ClientError> {
    match convert(ep, Op::BlockList, &[], timeout)? {
        (Status::Ok, body) => {
            if body.len() % 32 != 0 {
                return Err(ClientError::Garbled("block list reply size"));
            }
            Ok(body
                .chunks_exact(32)
                .map(|c| <[u8; 32]>::try_from(c).expect("32-byte chunks"))
                .collect())
        }
        (status, _) => Err(ClientError::Refused(status)),
    }
}

/// A client for the framed multiplexed protocol: one connection, many
/// pipelined requests in flight, responses correlated by frame id.
///
/// [`send`](MuxClient::send) queues a request and returns immediately
/// with its id; [`recv`](MuxClient::recv) blocks until that id's
/// response arrives, stashing any other responses that land first
/// (the server may answer out of order — a `Ping` overtakes a big
/// compress). [`call`](MuxClient::call) is the one-shot convenience.
///
/// The id `u32::MAX` is reserved: the server answers on it when a
/// protocol-level failure (oversized or truncated frame) makes the
/// real id unrecoverable, and closes the connection after.
pub struct MuxClient {
    conn: Conn,
    next_id: u32,
    /// Responses that arrived while waiting for a different id.
    stashed: HashMap<u32, (Status, Vec<u8>)>,
}

impl MuxClient {
    /// Connect and switch the connection into framed mode.
    pub fn connect(ep: &Endpoint, timeout: Duration) -> Result<MuxClient, ClientError> {
        let mut conn = ep.connect(Some(timeout))?;
        conn.write_all(&[MUX_MAGIC])?;
        conn.flush()?;
        Ok(MuxClient {
            conn,
            next_id: 0,
            stashed: HashMap::new(),
        })
    }

    /// Queue one request; returns the frame id to [`recv`](Self::recv)
    /// on. Does not wait for the response — that is the point.
    pub fn send(&mut self, op: Op, payload: &[u8]) -> Result<u32, ClientError> {
        let id = self.next_id;
        // Skip the reserved protocol-failure id on wraparound.
        self.next_id = match self.next_id.wrapping_add(1) {
            u32::MAX => 0,
            n => n,
        };
        write_frame(&mut self.conn, id, op.to_wire(), payload)?;
        Ok(id)
    }

    /// Block until the response for `id` arrives. Responses for other
    /// ids are stashed for their own `recv` calls.
    pub fn recv(&mut self, id: u32) -> Result<(Status, Vec<u8>), ClientError> {
        if let Some(r) = self.stashed.remove(&id) {
            return Ok(r);
        }
        loop {
            let Frame {
                id: got,
                byte,
                payload,
            } = read_frame(&mut self.conn, MAX_RESPONSE)?
                .ok_or(ClientError::Garbled("connection closed mid-pipeline"))?;
            let status =
                Status::from_wire(byte).ok_or(ClientError::Garbled("unknown status byte"))?;
            if got == id {
                return Ok((status, payload));
            }
            if got == u32::MAX {
                // Protocol-level failure: the connection is done.
                return Err(ClientError::Refused(status));
            }
            self.stashed.insert(got, (status, payload));
        }
    }

    /// One request, one response: `send` + `recv`.
    pub fn call(&mut self, op: Op, payload: &[u8]) -> Result<(Status, Vec<u8>), ClientError> {
        let id = self.send(op, payload)?;
        self.recv(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn io_err() -> ClientError {
        ClientError::Io(io::Error::new(io::ErrorKind::ConnectionRefused, "down"))
    }

    #[test]
    fn transient_classification() {
        assert!(io_err().is_transient());
        assert!(ClientError::Refused(Status::Timeout).is_transient());
        // A shed is an invitation to retry elsewhere, not a verdict
        // on the request.
        assert!(ClientError::Refused(Status::Overloaded).is_transient());
        // A read-only latch is this replica's disk problem; the write
        // belongs elsewhere.
        assert!(ClientError::Refused(Status::ReadOnly).is_transient());
        assert!(!ClientError::Refused(Status::BadRequest).is_transient());
        assert!(!ClientError::Garbled("x").is_transient());
        // The response-size budget is deterministic; retrying it is
        // pure backoff waste.
        let too_big = ClientError::Io(io::Error::new(io::ErrorKind::InvalidData, "over budget"));
        assert!(!too_big.is_transient());
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            attempts: 8,
            initial_backoff: Duration::from_millis(10),
            multiplier: 2,
            max_backoff: Duration::from_millis(55),
            jitter: None,
        };
        assert_eq!(p.backoff_for(0), Duration::from_millis(10));
        assert_eq!(p.backoff_for(1), Duration::from_millis(20));
        assert_eq!(p.backoff_for(2), Duration::from_millis(40));
        assert_eq!(p.backoff_for(3), Duration::from_millis(55), "capped");
        assert_eq!(p.backoff_for(31), Duration::from_millis(55), "no overflow");
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_decorrelating() {
        let base = RetryPolicy {
            attempts: 8,
            initial_backoff: Duration::from_millis(40),
            multiplier: 2,
            max_backoff: Duration::from_secs(2),
            jitter: None,
        };
        let a = base.with_jitter(0xCAFE);
        let b = base.with_jitter(0xCAFE);
        let c = base.with_jitter(0xBEEF);
        let mut diverged = false;
        for attempt in 0..8 {
            let exact = base.backoff_for(attempt);
            let d = a.backoff_for(attempt);
            // Same seed: bit-identical schedule (replayable chaos).
            assert_eq!(d, b.backoff_for(attempt), "attempt {attempt}");
            // Bounded: never more than the exponential schedule, never
            // less than half of it — the ceiling still means something.
            assert!(d <= exact, "attempt {attempt}: {d:?} > {exact:?}");
            assert!(d * 2 >= exact, "attempt {attempt}: {d:?} under half");
            if d != c.backoff_for(attempt) {
                diverged = true;
            }
        }
        // Different seeds: different schedules (no retry lockstep).
        assert!(diverged, "two fleets with two seeds must not sync up");
    }

    #[test]
    fn retry_recovers_from_transient_failures() {
        let p = RetryPolicy {
            attempts: 3,
            initial_backoff: Duration::from_millis(1),
            multiplier: 1,
            max_backoff: Duration::from_millis(1),
            jitter: None,
        };
        let mut seen = Vec::new();
        let out = retry_with_backoff(&p, |attempt| {
            seen.push(attempt);
            if attempt < 2 {
                Err(io_err())
            } else {
                Ok("served")
            }
        });
        assert_eq!(out.unwrap(), "served");
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn retry_is_bounded() {
        let p = RetryPolicy {
            attempts: 3,
            initial_backoff: Duration::from_millis(1),
            multiplier: 1,
            max_backoff: Duration::from_millis(1),
            jitter: None,
        };
        let mut calls = 0u32;
        let out: Result<(), _> = retry_with_backoff(&p, |_| {
            calls += 1;
            Err(io_err())
        });
        assert!(out.is_err());
        assert_eq!(calls, 3, "attempts include the first");
    }

    #[test]
    fn refusals_are_not_retried() {
        let mut calls = 0u32;
        let out: Result<(), _> = retry_with_backoff(&RetryPolicy::default(), |_| {
            calls += 1;
            Err(ClientError::Refused(Status::BadRequest))
        });
        assert!(matches!(out, Err(ClientError::Refused(Status::BadRequest))));
        assert_eq!(calls, 1, "a rejection is authoritative");
    }

    #[test]
    fn none_policy_is_single_shot() {
        let p = RetryPolicy::none();
        assert_eq!(p.attempts, 1);
        let mut calls = 0u32;
        let _: Result<(), _> = retry_with_backoff(&p, |_| {
            calls += 1;
            Err(io_err())
        });
        assert_eq!(calls, 1);
    }
}
