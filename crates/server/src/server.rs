//! The conversion service: a worker-pooled multiplexing core.
//!
//! Mirrors the production deployment's shape (§5.5) and adds the
//! serving discipline a tail-latency SLO demands. Two wire modes share
//! every handler:
//!
//! * **Legacy mode** — one conversion per connection (op byte,
//!   payload, half-close), exactly as the paper's blockservers spoke.
//!   A connection that opens with any legacy op byte is served
//!   entirely by its driver thread, byte-for-byte compatible with
//!   every pre-existing client.
//! * **Framed (multiplexed) mode** — a connection that opens with
//!   [`MUX_MAGIC`] carries pipelined frames: the driver thread keeps
//!   *decoding the next request frame while previous conversions are
//!   still running* on the shared worker pool, and responses complete
//!   out of order, correlated by frame id.
//!
//! The resource discipline (§5.1: bound everything *before* it becomes
//! memory or threads):
//!
//! * **Connections** are capped by a permit semaphore; past the cap,
//!   clients wait in the accept backlog. Driver threads therefore
//!   never exceed `max_connections` — overload cannot stack threads.
//! * **Pipelined bytes** are capped per connection: a framed
//!   connection may have at most `max_inflight_bytes` of request
//!   payload admitted-but-unanswered; past that the driver stops
//!   reading, which turns into TCP backpressure on the sender.
//! * **Conversion jobs** from framed connections flow through one
//!   bounded job queue into a fixed worker pool.
//! * **Admission control** sheds compress-side work (`Compress`,
//!   `BlockPut`) with a fast typed [`Status::Overloaded`] when the job
//!   queue is full or the codec engine's own queue is already deep —
//!   the caller falls back (Deflate, another replica) exactly as it
//!   does for the §5.7 shutoff switch. Decode-side work is **never
//!   shed**: reads trump everything, so a full queue blocks the driver
//!   (backpressure) instead of refusing the read.
//!
//! The shutoff switch is a file whose existence is checked before
//! compressing anything new (§5.7); decodes are never refused. Load
//! probes (`Ping`/`Stats`) are answered inline by the driver, never
//! queued behind conversions.

use crate::endpoint::{Conn, Endpoint, Listener};
use crate::gauge::ConcurrencyGauge;
use crate::protocol::{
    read_bounded, read_frame, write_frame, write_response, BlockStatReply, Op, StatsReply, Status,
    MUX_MAGIC,
};
use lepton_core::{CompressOptions, ExitCode};
use lepton_obs::{Counter, Gauge, Histogram, Registry, Snapshot, Watchdog, WatchdogConfig};
use lepton_storage::blockstore::{ShardedStore, StoreError};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Lepton compression options (verification stays on: the
    /// admission rule is not negotiable, §5.7).
    pub compress: CompressOptions,
    /// Maximum simultaneous connections; beyond this, clients wait in
    /// the accept backlog. Conversions are allowed to oversubscribe
    /// the CPU — the paper's blockservers routinely ran 15 at once at
    /// peak (§5.5) — but never unboundedly.
    pub max_connections: usize,
    /// Advertised busy threshold: a router outsources when `active >
    /// busy_threshold` (the paper deployed 3 and 4).
    pub busy_threshold: u32,
    /// Per-connection socket IO timeout.
    pub io_timeout: Duration,
    /// Largest accepted request payload. Conversions are per-chunk, so
    /// the default is comfortably above 4 MiB.
    pub max_request_bytes: usize,
    /// Shutoff-switch file (§5.7): when this path exists, compression
    /// requests are refused with [`Status::Shutdown`] within one
    /// request of the file appearing. Decompression continues.
    pub shutoff_file: Option<PathBuf>,
    /// Blockstore served by the `BlockPut`/`BlockGet`/`BlockStat` ops;
    /// when absent those ops answer [`Status::BadRequest`]. Shared so
    /// the process hosting the service can also touch the store
    /// directly (e.g. a backfill worker).
    pub blockstore: Option<Arc<ShardedStore>>,
    /// Worker threads executing framed-mode conversion jobs. `0`
    /// (default) sizes the pool from available parallelism, capped at
    /// 8 — conversions may oversubscribe the codec engine, which is
    /// what makes outsourcing worthwhile (Fig. 9), but never grow with
    /// connection count.
    pub conversion_workers: usize,
    /// Capacity of the bounded framed-mode job queue. A full queue
    /// sheds compress-side work ([`Status::Overloaded`]) and
    /// backpressures decode-side work.
    pub job_queue_depth: usize,
    /// Admission control: shed compress-side work while the codec
    /// engine's own queue is deeper than this many unstarted jobs.
    pub shed_engine_queue: usize,
    /// Per-connection cap on pipelined request bytes that are admitted
    /// but not yet answered; past it the driver stops reading frames
    /// (TCP backpressure), bounding what one connection can pin.
    pub max_inflight_bytes: usize,
    /// Anomaly-watchdog thresholds (§6 monitoring): window size and
    /// the shed/error-rate and compression-ratio-shift alarms that
    /// latch the degraded-health flag `Stats` v2 reports.
    pub watchdog: WatchdogConfig,
    /// Ceiling on the shared codec engine's worker pool. `0` (default)
    /// keeps the engine's own cap (16); a nonzero value is applied via
    /// [`lepton_core::set_global_worker_cap`] before the engine first
    /// spawns. Only the first server in a process can change this —
    /// the pool is sized once — and `LEPTON_ENGINE_THREADS` bypasses
    /// the cap entirely.
    pub engine_worker_cap: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            compress: CompressOptions::default(),
            max_connections: 64,
            busy_threshold: 3,
            io_timeout: Duration::from_secs(30),
            max_request_bytes: 24 << 20,
            shutoff_file: None,
            blockstore: None,
            conversion_workers: 0,
            job_queue_depth: 128,
            shed_engine_queue: 512,
            max_inflight_bytes: 64 << 20,
            watchdog: WatchdogConfig::default(),
            engine_worker_cap: 0,
        }
    }
}

/// Counters exported by [`ServiceHandle::stats`] and the `Stats` op.
///
/// Since the telemetry unification these are views onto the service's
/// [`Registry`] (`server.served` etc.), so the v1 24-byte reply, the
/// v2 snapshot and these handles always agree.
#[derive(Debug)]
pub struct ServiceMetrics {
    /// Successful conversions (compress + decompress).
    pub served: Arc<Counter>,
    /// Failed or rejected conversions.
    pub failed: Arc<Counter>,
    /// Compression requests refused because the shutoff switch was on.
    pub shutoff_refusals: Arc<Counter>,
    /// Requests shed by admission control ([`Status::Overloaded`]) —
    /// also counted in `failed`.
    pub shed: Arc<Counter>,
}

impl ServiceMetrics {
    fn on_registry(reg: &Registry) -> Self {
        ServiceMetrics {
            served: reg.counter("server.served"),
            failed: reg.counter("server.failed"),
            shutoff_refusals: reg.counter("server.shutoff_refusals"),
            shed: reg.counter("server.shed"),
        }
    }
}

/// One framed-mode conversion job, queued to the worker pool.
struct MuxJob {
    conn: Arc<MuxConn>,
    id: u32,
    op: Op,
    payload: Vec<u8>,
}

/// The shared half of one framed connection: workers write response
/// frames through `writer` (one at a time — frames must not
/// interleave) and return in-flight bytes so the driver can resume
/// reading.
struct MuxConn {
    writer: Mutex<Conn>,
    inflight_bytes: Mutex<usize>,
    drained: Condvar,
    /// Service-wide admitted-but-unanswered bytes gauge
    /// (`server.inflight_bytes`), shared across connections.
    inflight_gauge: Arc<Gauge>,
}

impl MuxConn {
    fn respond(&self, id: u32, status: Status, payload: &[u8]) {
        let mut w = self.writer.lock().expect("mux writer");
        let _ = write_frame(&mut *w, id, status.to_wire(), payload);
    }

    fn release(&self, bytes: usize) {
        let mut inflight = self.inflight_bytes.lock().expect("mux inflight");
        *inflight -= bytes;
        self.inflight_gauge.sub(bytes as i64);
        self.drained.notify_all();
    }
}

/// Everything the acceptor, drivers, and workers share.
struct Shared {
    cfg: ServiceConfig,
    /// This service instance's unified metric registry. Per-instance
    /// (not process-global) so in-process fleets keep per-node stats.
    registry: Arc<Registry>,
    /// The §6 anomaly watchdog latching the degraded-health flag.
    watchdog: Arc<Watchdog>,
    /// Per-op request latency histograms, indexed by [`Op::index`].
    op_latency: Vec<Arc<Histogram>>,
    /// Admitted-but-unanswered framed request bytes, service-wide.
    inflight_bytes: Arc<Gauge>,
    gauge: Arc<ConcurrencyGauge>,
    conns: Arc<ConcurrencyGauge>,
    metrics: Arc<ServiceMetrics>,
    stop: AtomicBool,
    /// Injected per-conversion delay in ms (0 = none): a test/bench
    /// hook that makes this node serve slowly, standing in for the
    /// degraded-host regimes of §6.3/§6.6 without real damage.
    delay_ms: AtomicU64,
    /// The single producer handle onto the bounded job queue; taken
    /// (set to `None`) at shutdown so the worker pool drains and
    /// exits.
    job_tx: Mutex<Option<crossbeam::channel::Sender<MuxJob>>>,
    /// One reader handle per live connection, registered by the
    /// acceptor. Shutdown closes every read side so idle drivers
    /// (a mux connection waiting for its next frame can wait forever)
    /// unblock immediately instead of running out their io timeout;
    /// write sides stay open, so in-flight responses still land.
    readers: Mutex<HashMap<u64, Conn>>,
    next_conn_id: AtomicU64,
}

/// A running conversion service. Dropping the handle shuts it down.
pub struct ServiceHandle {
    endpoint: Endpoint,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Start a conversion service on `endpoint`.
///
/// Binds the listener and returns once the service is accepting. TCP
/// endpoints may use port 0; the handle reports the actual bound
/// endpoint.
pub fn serve(endpoint: &Endpoint, cfg: ServiceConfig) -> std::io::Result<ServiceHandle> {
    let listener = Listener::bind(endpoint)?;
    let bound = listener.endpoint()?;

    if cfg.engine_worker_cap > 0 {
        lepton_core::set_global_worker_cap(cfg.engine_worker_cap);
    }

    let worker_count = if cfg.conversion_workers > 0 {
        cfg.conversion_workers
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    };
    let (job_tx, job_rx) = crossbeam::channel::bounded::<MuxJob>(cfg.job_queue_depth.max(1));

    // The unified telemetry registry: every counter the service
    // updates lives here under a stable dotted name, so the v2 Stats
    // snapshot is a read, not a collection effort.
    let registry = Arc::new(Registry::new());
    let metrics = Arc::new(ServiceMetrics::on_registry(&registry));
    let op_latency = Op::ALL
        .iter()
        .map(|op| registry.histogram(&format!("server.op.{}.latency_us", op.name())))
        .collect();
    if let Some(store) = cfg.blockstore.as_deref() {
        store.bind_registry(&registry, "store");
    }
    let watchdog = Arc::new(Watchdog::new(cfg.watchdog));

    let shared = Arc::new(Shared {
        gauge: ConcurrencyGauge::on_registry(&registry, "server.conversions"),
        conns: ConcurrencyGauge::on_registry(&registry, "server.conns"),
        inflight_bytes: registry.gauge("server.inflight_bytes"),
        op_latency,
        watchdog,
        registry,
        metrics,
        cfg,
        stop: AtomicBool::new(false),
        delay_ms: AtomicU64::new(0),
        job_tx: Mutex::new(Some(job_tx)),
        readers: Mutex::new(HashMap::new()),
        next_conn_id: AtomicU64::new(0),
    });

    let workers = (0..worker_count)
        .map(|i| {
            let shared = Arc::clone(&shared);
            let job_rx = job_rx.clone();
            std::thread::Builder::new()
                .name(format!("lepton-serve-{i}"))
                .spawn(move || worker_loop(&shared, &job_rx))
                .expect("spawn service worker")
        })
        .collect();

    // Connection permits: a bounded channel used as a semaphore. The
    // acceptor blocks pushing a token at the cap, which turns overload
    // into accept-backlog backpressure instead of unbounded threads.
    let cap = shared.cfg.max_connections.max(1);
    let (permit_tx, permit_rx) = crossbeam::channel::bounded::<()>(cap);

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            // Driver threads signal completion through this guard so
            // shutdown can drain them all.
            let wg = crossbeam::sync::WaitGroup::new();
            loop {
                match listener.accept() {
                    Ok(conn) => {
                        if shared.stop.load(Ordering::SeqCst) {
                            break; // the wake-up connection from shutdown()
                        }
                        let _ = conn.set_io_timeout(Some(shared.cfg.io_timeout));
                        if permit_tx.send(()).is_err() {
                            break;
                        }
                        let permit_rx = permit_rx.clone();
                        let shared = Arc::clone(&shared);
                        let guard = wg.clone();
                        // Register the reader before the driver exists
                        // so a shutdown sweep can never miss a live
                        // connection.
                        let conn_id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                        if let Ok(reader) = conn.try_clone() {
                            shared
                                .readers
                                .lock()
                                .expect("reader registry")
                                .insert(conn_id, reader);
                        }
                        std::thread::spawn(move || {
                            let _conn_lease = shared.conns.acquire();
                            drive_connection(conn, &shared);
                            shared
                                .readers
                                .lock()
                                .expect("reader registry")
                                .remove(&conn_id);
                            let _ = permit_rx.try_recv(); // release the permit
                            drop(guard);
                        });
                    }
                    Err(_) => {
                        if shared.stop.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                }
            }
            // Drain: every in-flight driver completes before the
            // acceptor thread (and with it `shutdown()`) returns.
            wg.wait();
        })
    };

    Ok(ServiceHandle {
        endpoint: bound,
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

impl ServiceHandle {
    /// The endpoint the service is bound to (real port for TCP :0).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Live conversion-concurrency gauge (what the outsourcing router
    /// and the `Stats` op read).
    pub fn gauge(&self) -> &Arc<ConcurrencyGauge> {
        &self.shared.gauge
    }

    /// Live connection gauge: one lease per driver thread. Its
    /// high-water mark can never exceed
    /// [`ServiceConfig::max_connections`] — the overload tests assert
    /// exactly that.
    pub fn connections(&self) -> &Arc<ConcurrencyGauge> {
        &self.shared.conns
    }

    /// The same snapshot the wire `Stats` op returns.
    pub fn stats(&self) -> StatsReply {
        stats_reply(&self.shared)
    }

    /// Raw metric counters.
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        &self.shared.metrics
    }

    /// The service's unified telemetry registry (per-op latency
    /// histograms, connection lifecycle, storage counters).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// The same versioned snapshot the wire `Stats` v2 op returns:
    /// this service's registry merged with the process-global one
    /// (engine, job traces), plus watchdog health gauges.
    pub fn snapshot(&self) -> Snapshot {
        stats_snapshot(&self.shared)
    }

    /// True while the anomaly watchdog's degraded-health flag is
    /// latched (shed/error storm or compression-ratio shift) or the
    /// blockstore is latched read-only (ENOSPC / failed fsync).
    pub fn degraded(&self) -> bool {
        self.shared.watchdog.degraded() || store_read_only(&self.shared)
    }

    /// Make every conversion and block op on this service sleep `d`
    /// before running (0 disables). A test/bench hook: `fig10_replay`
    /// uses it to turn one fleet node into the slow replica whose tail
    /// the hedged-read path must hide, without damaging any data.
    pub fn inject_delay(&self, d: Duration) {
        self.shared
            .delay_ms
            .store(d.as_millis() as u64, Ordering::SeqCst);
    }

    /// Stop accepting, drain in-flight conversions, and join.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a wake-up connection.
        let _ = self.endpoint.connect(Some(Duration::from_millis(200)));
        // Unblock idle drivers: close every live connection's read
        // side. Writes stay open, so responses for work already
        // admitted still go out before the drain below completes.
        for (_, reader) in self.shared.readers.lock().expect("reader registry").iter() {
            let _ = reader.shutdown_read();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // All drivers are gone; close the job queue. Workers finish
        // whatever is already queued, then exit.
        *self.shared.job_tx.lock().expect("job queue") = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop_threads();
        }
    }
}

fn stats_reply(shared: &Shared) -> StatsReply {
    StatsReply {
        active: shared.gauge.active(),
        high_water: shared.gauge.high_water(),
        busy_threshold: shared.cfg.busy_threshold,
        total_served: shared.metrics.served.get(),
        total_failed: shared.metrics.failed.get() as u32,
    }
}

/// Build the v2 stats snapshot: refresh the computed gauges, then
/// merge this service's registry with the process-global registry
/// (codec engine counters, `trace.*` stage histograms).
fn stats_snapshot(shared: &Shared) -> Snapshot {
    let engine = lepton_core::Engine::global();
    engine.refresh_gauges();
    shared.watchdog.publish(&shared.registry);
    // A read-only storage latch is degraded health even when the
    // watchdog's shed/error alarms are quiet: this replica cannot
    // accept writes until an operator runs recovery and it reopens.
    if store_read_only(shared) {
        shared.registry.gauge("health.degraded").set(1);
    }
    shared
        .registry
        .gauge("server.busy_threshold")
        .set(i64::from(shared.cfg.busy_threshold));
    let mut snap = shared.registry.snapshot();
    snap.merge(Registry::global().snapshot());
    snap
}

/// Is the configured blockstore (if any) latched read-only?
fn store_read_only(shared: &Shared) -> bool {
    shared
        .cfg
        .blockstore
        .as_deref()
        .is_some_and(|s| s.is_read_only())
}

fn shutoff_engaged(cfg: &ServiceConfig) -> bool {
    cfg.shutoff_file.as_deref().is_some_and(|p| p.exists())
}

/// Should compress-side work be shed right now? The signal is the
/// codec engine's own backlog: unstarted jobs already waiting for
/// workers mean added work buys latency, not throughput.
fn engine_overloaded(shared: &Shared) -> bool {
    lepton_core::Engine::global().queue_depth() > shared.cfg.shed_engine_queue
}

/// Drive one accepted connection: sniff the first byte, then speak
/// whichever protocol the client opened with.
fn drive_connection(mut conn: Conn, shared: &Arc<Shared>) {
    let mut first = [0u8; 1];
    let mut got = 0;
    while got < 1 {
        match conn.read(&mut first) {
            Ok(0) => return, // peer hung up before sending anything
            Ok(n) => got += n,
            Err(_) => {
                shared.metrics.failed.inc();
                let _ = write_response(&mut conn, Status::Timeout, &[]);
                return;
            }
        }
    }
    if first[0] == MUX_MAGIC {
        drive_mux(conn, shared);
    } else {
        drive_legacy(conn, first[0], shared);
    }
}

use std::io::Read;

/// The legacy one-conversion-per-connection protocol, unchanged on the
/// wire: the op byte has been consumed; the payload runs to half-close.
fn drive_legacy(mut conn: Conn, op_byte: u8, shared: &Arc<Shared>) {
    let payload = match read_bounded(&mut conn, shared.cfg.max_request_bytes) {
        Ok(p) => p,
        Err(e) => {
            let status = if e.kind() == std::io::ErrorKind::InvalidData {
                Status::TooLarge
            } else {
                // Socket timeout mid-request: the §6.6 regime (and the
                // slow-loris defense). The peer may already be gone;
                // best-effort response.
                Status::Timeout
            };
            shared.metrics.failed.inc();
            let _ = write_response(&mut conn, status, &[]);
            return;
        }
    };
    let Some(op) = Op::from_wire(op_byte) else {
        shared.metrics.failed.inc();
        let _ = write_response(&mut conn, Status::BadRequest, &[]);
        return;
    };
    if sheds(op) && engine_overloaded(shared) {
        shed(shared);
        let _ = write_response(&mut conn, Status::Overloaded, &[]);
        return;
    }
    let (status, body) = execute_op(shared, op, &payload);
    let _ = write_response(&mut conn, status, &body);
}

/// The framed multiplexed protocol: pipelined requests, out-of-order
/// responses, bounded in-flight bytes.
fn drive_mux(conn: Conn, shared: &Arc<Shared>) {
    let Ok(writer) = conn.try_clone() else {
        return;
    };
    let mux = Arc::new(MuxConn {
        writer: Mutex::new(writer),
        inflight_bytes: Mutex::new(0),
        drained: Condvar::new(),
        inflight_gauge: Arc::clone(&shared.inflight_bytes),
    });
    let mut reader = conn;
    loop {
        let frame = match read_frame(&mut reader, shared.cfg.max_request_bytes) {
            Ok(Some(f)) => f,
            Ok(None) => return, // clean close at a frame boundary
            Err(e) => {
                // The frame id is unrecoverable; answer on the
                // reserved id and close. A well-behaved client treats
                // a `u32::MAX` response as fatal to the connection.
                let status = if e.kind() == std::io::ErrorKind::InvalidData {
                    Status::TooLarge
                } else {
                    Status::Timeout
                };
                shared.metrics.failed.inc();
                mux.respond(u32::MAX, status, &[]);
                return;
            }
        };
        let Some(op) = Op::from_wire(frame.byte) else {
            shared.metrics.failed.inc();
            mux.respond(frame.id, Status::BadRequest, &[]);
            continue;
        };
        // Probes are answered inline — they must never queue behind
        // conversions (that is what makes them useful under load).
        if matches!(op, Op::Ping | Op::Stats | Op::StatsV2) {
            let (status, body) = execute_op(shared, op, &frame.payload);
            mux.respond(frame.id, status, &body);
            continue;
        }
        // Bounded in-flight bytes: stop reading (TCP backpressure)
        // until enough responses have drained. A payload alone bigger
        // than the budget still passes when nothing else is in flight,
        // so the budget can never deadlock a connection.
        let bytes = frame.payload.len();
        {
            let mut inflight = mux.inflight_bytes.lock().expect("mux inflight");
            while *inflight > 0 && *inflight + bytes > shared.cfg.max_inflight_bytes {
                inflight = mux.drained.wait(inflight).expect("mux inflight");
            }
            *inflight += bytes;
            shared.inflight_bytes.add(bytes as i64);
        }
        if sheds(op) && engine_overloaded(shared) {
            shed(shared);
            mux.respond(frame.id, Status::Overloaded, &[]);
            mux.release(bytes);
            continue;
        }
        let job = MuxJob {
            conn: Arc::clone(&mux),
            id: frame.id,
            op,
            payload: frame.payload,
        };
        let tx = shared.job_tx.lock().expect("job queue").clone();
        let Some(tx) = tx else {
            mux.respond(frame.id, Status::Shutdown, &[]);
            mux.release(bytes);
            return;
        };
        if sheds(op) {
            // Compress-side work never waits on a full queue: shed
            // fast, the caller has a fallback.
            if let Err(crossbeam::channel::TrySendError::Full(job)) = tx.try_send(job) {
                shed(shared);
                mux.respond(frame.id, Status::Overloaded, &[]);
                mux.release(job.payload.len());
            }
        } else {
            // Decode-side work is never shed (reads trump everything,
            // §5.7): a full queue blocks the driver instead, which is
            // backpressure the client can feel.
            if tx.send(job).is_err() {
                mux.respond(frame.id, Status::Shutdown, &[]);
                mux.release(bytes);
                return;
            }
        }
    }
}

/// Is `op` compress-side work that admission control may shed? The
/// §5.7 asymmetry: refused writes have a fallback (Deflate, raw, a
/// different replica), refused reads are user-visible data loss.
fn sheds(op: Op) -> bool {
    matches!(op, Op::Compress | Op::BlockPut)
}

fn shed(shared: &Shared) {
    shared.metrics.shed.inc();
    shared.metrics.failed.inc();
    shared.watchdog.record_event(true, false);
}

/// The framed-mode worker loop: execute conversion jobs, write the
/// response frame, release the connection's in-flight budget.
fn worker_loop(shared: &Arc<Shared>, rx: &crossbeam::channel::Receiver<MuxJob>) {
    while let Ok(job) = rx.recv() {
        let (status, body) = execute_op(shared, job.op, &job.payload);
        job.conn.respond(job.id, status, &body);
        job.conn.release(job.payload.len());
    }
}

/// Execute one request and produce its response. Shared by both wire
/// modes, so legacy and framed clients see identical semantics.
/// Records per-op wall time into the registry's latency histograms.
fn execute_op(shared: &Arc<Shared>, op: Op, payload: &[u8]) -> (Status, Vec<u8>) {
    let start = Instant::now();
    let result = execute_op_inner(shared, op, payload);
    shared.op_latency[op.index()].record_duration(start.elapsed());
    result
}

fn execute_op_inner(shared: &Arc<Shared>, op: Op, payload: &[u8]) -> (Status, Vec<u8>) {
    let cfg = &shared.cfg;
    let metrics = &shared.metrics;
    let watchdog = &shared.watchdog;
    if !matches!(op, Op::Ping | Op::Stats | Op::StatsV2) {
        let delay = shared.delay_ms.load(Ordering::SeqCst);
        if delay > 0 {
            std::thread::sleep(Duration::from_millis(delay));
        }
    }
    match op {
        Op::Ping => (Status::Ok, Vec::new()),
        Op::Stats => (Status::Ok, stats_reply(shared).to_wire().to_vec()),
        Op::StatsV2 => (Status::Ok, stats_snapshot(shared).to_wire()),
        Op::Compress => {
            if shutoff_engaged(cfg) {
                metrics.shutoff_refusals.inc();
                return (Status::Shutdown, Vec::new());
            }
            let _lease = shared.gauge.acquire();
            match lepton_core::Engine::global().compress(payload, &cfg.compress) {
                Ok(lepton) => {
                    metrics.served.inc();
                    // Feed the §6 ratio series: a fleet-wide drift here
                    // (corpus change, model regression) trips the
                    // watchdog even when nothing errors.
                    if !payload.is_empty() {
                        watchdog.record_ratio(lepton.len() as f64 / payload.len() as f64);
                    }
                    watchdog.record_event(false, false);
                    (Status::Ok, lepton)
                }
                Err(e) => {
                    metrics.failed.inc();
                    watchdog.record_event(false, true);
                    (Status::Rejected(ExitCode::classify(&e)), Vec::new())
                }
            }
        }
        Op::Decompress => {
            // No shutoff check: reads must keep working (§5.7).
            let _lease = shared.gauge.acquire();
            let dec_opts = lepton_core::DecompressOptions {
                model: cfg.compress.model,
                budget: cfg.compress.budget,
            };
            match lepton_core::Engine::global().decompress_opts(payload, &dec_opts) {
                Ok(jpeg) => {
                    metrics.served.inc();
                    watchdog.record_event(false, false);
                    (Status::Ok, jpeg)
                }
                Err(e) => {
                    metrics.failed.inc();
                    watchdog.record_event(false, true);
                    (Status::Rejected(ExitCode::classify(&e)), Vec::new())
                }
            }
        }
        Op::BlockPut | Op::BlockGet | Op::BlockStat | Op::BlockList => {
            let Some(store) = cfg.blockstore.as_deref() else {
                metrics.failed.inc();
                return (Status::BadRequest, Vec::new());
            };
            execute_block_op(shared, op, store, payload)
        }
    }
}

/// The blockstore ops. Put and get count against the conversion gauge
/// — they may run the codec — and their failures against the same
/// metrics the conversion path uses.
fn execute_block_op(
    shared: &Arc<Shared>,
    op: Op,
    store: &ShardedStore,
    payload: &[u8],
) -> (Status, Vec<u8>) {
    let cfg = &shared.cfg;
    let metrics = &shared.metrics;
    match op {
        Op::BlockPut => {
            let _lease = shared.gauge.acquire();
            // A job trace for the storage leg: the codec stages inside
            // `store.put` run on engine workers under their own spans;
            // this span owns the `store` stage of the canonical
            // parse → decode → code → verify → store chain.
            let span = lepton_obs::span_enter("block_put");
            // The §5.7 shutoff switch gates the codec here too — but
            // blockstore writes are never *refused*: the block lands
            // raw and a later backfill converts it. Durability first.
            let result = if shutoff_engaged(cfg) {
                metrics.shutoff_refusals.inc();
                store.put_raw(payload)
            } else {
                store.put(payload)
            };
            lepton_obs::mark_stage("store");
            match result {
                Ok(key) => {
                    metrics.served.inc();
                    shared.watchdog.record_event(false, false);
                    span.finish("ok", payload.len() as u64, 32);
                    (Status::Ok, key.to_vec())
                }
                // A read-only latch sheds the write with a typed
                // transient status: the bytes are fine, this replica's
                // disk is not. Counts as a shed, not a failure — the
                // watchdog's error-storm alarm stays quiet while the
                // degraded flag (wired via `stats_snapshot`) carries
                // the signal instead.
                Err(StoreError::ReadOnly(_)) => {
                    metrics.shed.inc();
                    span.finish("read_only", payload.len() as u64, 0);
                    (Status::ReadOnly, Vec::new())
                }
                Err(_) => {
                    metrics.failed.inc();
                    shared.watchdog.record_event(false, true);
                    span.finish("storage_failed", payload.len() as u64, 0);
                    (Status::StorageFailed, Vec::new())
                }
            }
        }
        Op::BlockGet => {
            let Ok(key) = <[u8; 32]>::try_from(payload) else {
                metrics.failed.inc();
                return (Status::BadRequest, Vec::new());
            };
            let _lease = shared.gauge.acquire();
            match store.get(&key) {
                Ok(Some(bytes)) => {
                    metrics.served.inc();
                    (Status::Ok, bytes)
                }
                Ok(None) => (Status::NotFound, Vec::new()),
                // A damaged record is refused, never served — and
                // quarantined, so a replica's read-repair `put` of the
                // true content can land instead of deduping against
                // the bad file.
                Err(StoreError::Corrupt(_)) => {
                    metrics.failed.inc();
                    shared.watchdog.record_event(false, true);
                    let _ = store.quarantine(&key);
                    (Status::StorageFailed, Vec::new())
                }
                // I/O failures are never dressed up as data either.
                Err(StoreError::Io(_)) => {
                    metrics.failed.inc();
                    shared.watchdog.record_event(false, true);
                    (Status::StorageFailed, Vec::new())
                }
                // A budget refusal is a typed rejection, not damage:
                // no quarantine, and the client learns the taxonomy
                // row instead of a storage failure.
                Err(StoreError::Budget { .. }) => {
                    metrics.failed.inc();
                    (Status::Rejected(ExitCode::MemDecodeLimit), Vec::new())
                }
                // Reads are allowed through the read-only latch; this
                // arm is unreachable from `get` but the type demands
                // honesty about it.
                Err(StoreError::ReadOnly(_)) => {
                    metrics.shed.inc();
                    (Status::ReadOnly, Vec::new())
                }
            }
        }
        Op::BlockList => match store.keys() {
            Ok(keys) => {
                let mut body = Vec::with_capacity(keys.len() * 32);
                for k in &keys {
                    body.extend_from_slice(k);
                }
                (Status::Ok, body)
            }
            Err(_) => {
                metrics.failed.inc();
                (Status::StorageFailed, Vec::new())
            }
        },
        Op::BlockStat => match store.stat() {
            Ok(stats) => {
                let reply = BlockStatReply {
                    blocks: stats.blocks,
                    lepton_blocks: stats.lepton_blocks,
                    raw_blocks: stats.raw_blocks,
                    logical_bytes: stats.logical_bytes,
                    stored_bytes: stats.stored_bytes,
                    cache_hits: stats.cache_hits,
                    cache_misses: stats.cache_misses,
                };
                (Status::Ok, reply.to_wire().to_vec())
            }
            Err(_) => {
                metrics.failed.inc();
                (Status::StorageFailed, Vec::new())
            }
        },
        _ => unreachable!("only block ops are routed here"),
    }
}
