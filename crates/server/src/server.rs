//! The conversion service: one handler per connection behind a socket.
//!
//! Mirrors the production deployment's shape (§5.5): each connection
//! carries exactly one conversion, conversions genuinely oversubscribe
//! the machine (that is what makes outsourcing necessary — Fig. 9), the
//! concurrency gauge sees every conversion in flight, and load probes
//! answer immediately rather than queueing behind conversions. The
//! shutoff switch is a file whose existence is checked before
//! compressing anything new (§5.7); decodes are never refused —
//! durability of reads trumps everything. Connection count is capped
//! (the §5.1 bounded-resources discipline); past the cap, new
//! connections wait in the accept backlog.

use crate::endpoint::{Conn, Endpoint, Listener};
use crate::gauge::ConcurrencyGauge;
use crate::protocol::{read_request, write_response, BlockStatReply, Op, StatsReply, Status};
use lepton_core::{CompressOptions, ExitCode};
use lepton_storage::blockstore::{ShardedStore, StoreError};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Lepton compression options (verification stays on: the
    /// admission rule is not negotiable, §5.7).
    pub compress: CompressOptions,
    /// Maximum simultaneous connections; beyond this, clients wait in
    /// the accept backlog. Conversions are allowed to oversubscribe
    /// the CPU — the paper's blockservers routinely ran 15 at once at
    /// peak (§5.5) — but never unboundedly.
    pub max_connections: usize,
    /// Advertised busy threshold: a router outsources when `active >
    /// busy_threshold` (the paper deployed 3 and 4).
    pub busy_threshold: u32,
    /// Per-connection socket IO timeout.
    pub io_timeout: Duration,
    /// Largest accepted request payload. Conversions are per-chunk, so
    /// the default is comfortably above 4 MiB.
    pub max_request_bytes: usize,
    /// Shutoff-switch file (§5.7): when this path exists, compression
    /// requests are refused with [`Status::Shutdown`] within one
    /// request of the file appearing. Decompression continues.
    pub shutoff_file: Option<PathBuf>,
    /// Blockstore served by the `BlockPut`/`BlockGet`/`BlockStat` ops;
    /// when absent those ops answer [`Status::BadRequest`]. Shared so
    /// the process hosting the service can also touch the store
    /// directly (e.g. a backfill worker).
    pub blockstore: Option<Arc<ShardedStore>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            compress: CompressOptions::default(),
            max_connections: 64,
            busy_threshold: 3,
            io_timeout: Duration::from_secs(30),
            max_request_bytes: 24 << 20,
            shutoff_file: None,
            blockstore: None,
        }
    }
}

/// Counters exported by [`ServiceHandle::stats`] and the `Stats` op.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Successful conversions (compress + decompress).
    pub served: AtomicU64,
    /// Failed or rejected conversions.
    pub failed: AtomicU32,
    /// Compression requests refused because the shutoff switch was on.
    pub shutoff_refusals: AtomicU32,
}

/// A running conversion service. Dropping the handle shuts it down.
pub struct ServiceHandle {
    endpoint: Endpoint,
    gauge: Arc<ConcurrencyGauge>,
    metrics: Arc<ServiceMetrics>,
    cfg: ServiceConfig,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

/// Start a conversion service on `endpoint`.
///
/// Binds the listener and returns once the service is accepting. TCP
/// endpoints may use port 0; the handle reports the actual bound
/// endpoint.
pub fn serve(endpoint: &Endpoint, cfg: ServiceConfig) -> std::io::Result<ServiceHandle> {
    let listener = Listener::bind(endpoint)?;
    let bound = listener.endpoint()?;
    let gauge = ConcurrencyGauge::new();
    let metrics = Arc::new(ServiceMetrics::default());
    let stop = Arc::new(AtomicBool::new(false));

    // Connection permits: a bounded channel used as a semaphore. The
    // acceptor blocks pushing a token at the cap, which turns overload
    // into accept-backlog backpressure instead of unbounded threads.
    let (permit_tx, permit_rx) = crossbeam::channel::bounded::<()>(cfg.max_connections.max(1));

    let acceptor = {
        let stop = Arc::clone(&stop);
        let cfg = cfg.clone();
        let gauge = Arc::clone(&gauge);
        let metrics = Arc::clone(&metrics);
        std::thread::spawn(move || {
            // Handler threads signal completion through this guard so
            // shutdown can drain them all.
            let wg = crossbeam::sync::WaitGroup::new();
            loop {
                match listener.accept() {
                    Ok(conn) => {
                        if stop.load(Ordering::SeqCst) {
                            break; // the wake-up connection from shutdown()
                        }
                        let _ = conn.set_io_timeout(Some(cfg.io_timeout));
                        if permit_tx.send(()).is_err() {
                            break;
                        }
                        let permit_rx = permit_rx.clone();
                        let cfg = cfg.clone();
                        let gauge = Arc::clone(&gauge);
                        let metrics = Arc::clone(&metrics);
                        let guard = wg.clone();
                        std::thread::spawn(move || {
                            handle_connection(conn, &cfg, &gauge, &metrics);
                            let _ = permit_rx.try_recv(); // release the permit
                            drop(guard);
                        });
                    }
                    Err(_) => {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                }
            }
            // Drain: every in-flight conversion completes before the
            // acceptor thread (and with it `shutdown()`) returns.
            wg.wait();
        })
    };

    Ok(ServiceHandle {
        endpoint: bound,
        gauge,
        metrics,
        cfg,
        stop,
        acceptor: Some(acceptor),
    })
}

impl ServiceHandle {
    /// The endpoint the service is bound to (real port for TCP :0).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Live concurrency gauge.
    pub fn gauge(&self) -> &Arc<ConcurrencyGauge> {
        &self.gauge
    }

    /// The same snapshot the wire `Stats` op returns.
    pub fn stats(&self) -> StatsReply {
        StatsReply {
            active: self.gauge.active(),
            high_water: self.gauge.high_water(),
            busy_threshold: self.cfg.busy_threshold,
            total_served: self.metrics.served.load(Ordering::Relaxed),
            total_failed: self.metrics.failed.load(Ordering::Relaxed),
        }
    }

    /// Raw metric counters.
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        &self.metrics
    }

    /// Stop accepting, drain in-flight conversions, and join.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a wake-up connection.
        let _ = self.endpoint.connect(Some(Duration::from_millis(200)));
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop_threads();
        }
    }
}

fn shutoff_engaged(cfg: &ServiceConfig) -> bool {
    cfg.shutoff_file.as_deref().is_some_and(|p| p.exists())
}

fn handle_connection(
    mut conn: Conn,
    cfg: &ServiceConfig,
    gauge: &Arc<ConcurrencyGauge>,
    metrics: &Arc<ServiceMetrics>,
) {
    let (op_byte, payload) = match read_request(&mut conn, cfg.max_request_bytes) {
        Ok(Some(req)) => req,
        Ok(None) => return, // peer hung up before sending anything
        Err(e) => {
            let status = if e.kind() == std::io::ErrorKind::InvalidData {
                Status::TooLarge
            } else {
                // Socket timeout mid-request: the §6.6 regime. The
                // peer may already be gone; best-effort response.
                Status::Timeout
            };
            metrics.failed.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(&mut conn, status, &[]);
            return;
        }
    };

    let Some(op) = Op::from_wire(op_byte) else {
        metrics.failed.fetch_add(1, Ordering::Relaxed);
        let _ = write_response(&mut conn, Status::BadRequest, &[]);
        return;
    };

    match op {
        Op::Ping => {
            let _ = write_response(&mut conn, Status::Ok, &[]);
        }
        Op::Stats => {
            let reply = StatsReply {
                active: gauge.active(),
                high_water: gauge.high_water(),
                busy_threshold: cfg.busy_threshold,
                total_served: metrics.served.load(Ordering::Relaxed),
                total_failed: metrics.failed.load(Ordering::Relaxed),
            };
            let _ = write_response(&mut conn, Status::Ok, &reply.to_wire());
        }
        Op::Compress => {
            if shutoff_engaged(cfg) {
                metrics.shutoff_refusals.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(&mut conn, Status::Shutdown, &[]);
                return;
            }
            let _lease = gauge.acquire();
            match lepton_core::Engine::global().compress(&payload, &cfg.compress) {
                Ok(lepton) => {
                    metrics.served.fetch_add(1, Ordering::Relaxed);
                    let _ = write_response(&mut conn, Status::Ok, &lepton);
                }
                Err(e) => {
                    metrics.failed.fetch_add(1, Ordering::Relaxed);
                    let code = ExitCode::classify(&e);
                    let _ = write_response(&mut conn, Status::Rejected(code), &[]);
                }
            }
        }
        Op::Decompress => {
            // No shutoff check: reads must keep working (§5.7).
            let _lease = gauge.acquire();
            let dec_opts = lepton_core::DecompressOptions {
                model: cfg.compress.model,
                budget: cfg.compress.budget,
            };
            match lepton_core::Engine::global().decompress_opts(&payload, &dec_opts) {
                Ok(jpeg) => {
                    metrics.served.fetch_add(1, Ordering::Relaxed);
                    // Stream the status byte first so the client's
                    // time-to-first-byte does not wait on big writes.
                    let _ = conn.write_all(&[Status::Ok.to_wire()]);
                    let _ = conn.write_all(&jpeg);
                    let _ = conn.flush();
                }
                Err(e) => {
                    metrics.failed.fetch_add(1, Ordering::Relaxed);
                    let code = ExitCode::classify(&e);
                    let _ = write_response(&mut conn, Status::Rejected(code), &[]);
                }
            }
        }
        Op::BlockPut | Op::BlockGet | Op::BlockStat | Op::BlockList => {
            let Some(store) = cfg.blockstore.as_deref() else {
                metrics.failed.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(&mut conn, Status::BadRequest, &[]);
                return;
            };
            handle_block_op(op, store, &payload, &mut conn, cfg, gauge, metrics);
        }
    }
}

/// The blockstore ops. Put and get count against the conversion gauge
/// — they may run the codec — and their failures against the same
/// metrics the conversion path uses.
fn handle_block_op(
    op: Op,
    store: &ShardedStore,
    payload: &[u8],
    conn: &mut Conn,
    cfg: &ServiceConfig,
    gauge: &Arc<ConcurrencyGauge>,
    metrics: &Arc<ServiceMetrics>,
) {
    match op {
        Op::BlockPut => {
            let _lease = gauge.acquire();
            // The §5.7 shutoff switch gates the codec here too — but
            // blockstore writes are never *refused*: the block lands
            // raw and a later backfill converts it. Durability first.
            let result = if shutoff_engaged(cfg) {
                metrics.shutoff_refusals.fetch_add(1, Ordering::Relaxed);
                store.put_raw(payload)
            } else {
                store.put(payload)
            };
            match result {
                Ok(key) => {
                    metrics.served.fetch_add(1, Ordering::Relaxed);
                    let _ = write_response(conn, Status::Ok, &key);
                }
                Err(_) => {
                    metrics.failed.fetch_add(1, Ordering::Relaxed);
                    let _ = write_response(conn, Status::StorageFailed, &[]);
                }
            }
        }
        Op::BlockGet => {
            let Ok(key) = <[u8; 32]>::try_from(payload) else {
                metrics.failed.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(conn, Status::BadRequest, &[]);
                return;
            };
            let _lease = gauge.acquire();
            match store.get(&key) {
                Ok(Some(bytes)) => {
                    metrics.served.fetch_add(1, Ordering::Relaxed);
                    let _ = conn.write_all(&[Status::Ok.to_wire()]);
                    let _ = conn.write_all(&bytes);
                    let _ = conn.flush();
                }
                Ok(None) => {
                    let _ = write_response(conn, Status::NotFound, &[]);
                }
                // A damaged record is refused, never served — and
                // quarantined, so a replica's read-repair `put` of the
                // true content can land instead of deduping against
                // the bad file.
                Err(StoreError::Corrupt(_)) => {
                    metrics.failed.fetch_add(1, Ordering::Relaxed);
                    let _ = store.quarantine(&key);
                    let _ = write_response(conn, Status::StorageFailed, &[]);
                }
                // I/O failures are never dressed up as data either.
                Err(StoreError::Io(_)) => {
                    metrics.failed.fetch_add(1, Ordering::Relaxed);
                    let _ = write_response(conn, Status::StorageFailed, &[]);
                }
                // A budget refusal is a typed rejection, not damage:
                // no quarantine, and the client learns the taxonomy
                // row instead of a storage failure.
                Err(StoreError::Budget { .. }) => {
                    metrics.failed.fetch_add(1, Ordering::Relaxed);
                    let _ = write_response(conn, Status::Rejected(ExitCode::MemDecodeLimit), &[]);
                }
            }
        }
        Op::BlockList => match store.keys() {
            Ok(keys) => {
                let mut body = Vec::with_capacity(keys.len() * 32);
                for k in &keys {
                    body.extend_from_slice(k);
                }
                let _ = write_response(conn, Status::Ok, &body);
            }
            Err(_) => {
                metrics.failed.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(conn, Status::StorageFailed, &[]);
            }
        },
        Op::BlockStat => match store.stat() {
            Ok(stats) => {
                let reply = BlockStatReply {
                    blocks: stats.blocks,
                    lepton_blocks: stats.lepton_blocks,
                    raw_blocks: stats.raw_blocks,
                    logical_bytes: stats.logical_bytes,
                    stored_bytes: stats.stored_bytes,
                    cache_hits: stats.cache_hits,
                    cache_misses: stats.cache_misses,
                };
                let _ = write_response(conn, Status::Ok, &reply.to_wire());
            }
            Err(_) => {
                metrics.failed.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(conn, Status::StorageFailed, &[]);
            }
        },
        _ => unreachable!("only block ops are routed here"),
    }
}
