//! Concurrent-conversion accounting.
//!
//! The outsourcing decision in the paper hinges on one number: how
//! many Lepton conversions are running on this machine *right now*
//! (§5.5: "Lepton will outsource any compression operations that occur
//! on machines that have more than three conversions happening at a
//! time"). [`ConcurrencyGauge`] tracks that number with an RAII lease,
//! plus the high-water mark the Figure 9 experiment plots.
//!
//! The gauge now lives on the unified telemetry registry: it is a
//! thin facade over a [`lepton_obs::Gauge`] (active + high water) and
//! a [`lepton_obs::Counter`] (total leases), so `Stats` v2 exports the
//! same numbers the admission path reads, with no parallel bookkeeping.
//!
//! # Why this no longer uses `SeqCst`
//!
//! The original implementation did every RMW and load with `SeqCst`.
//! That bought nothing: the three cells are independent statistics —
//! no other memory is published *through* them — so the only ordering
//! that matters is (a) per-atomic modification order, which any RMW
//! ordering provides (increments are never lost, `fetch_max` converges
//! to the true maximum), and (b) the lease-release edge: a thread that
//! observes `active() == 0` must also observe the finished jobs'
//! writes. The RAII lease makes the decrement the job's last action,
//! so a `Release` decrement paired with an `Acquire` read of the
//! active count — implemented in `lepton_obs::Gauge::sub`/`value` —
//! preserves exactly that guarantee while everything else runs
//! `Relaxed`. The cross-atomic total order `SeqCst` added was paying
//! for a full fence per request on weakly-ordered targets with no
//! observable difference. The `lease_raii_tracks_active` /
//! `high_water_is_monotonic_under_threads` tests below pin the
//! behavior contract unchanged across the downgrade.

use lepton_obs::{Counter, Gauge, Registry};
use std::sync::Arc;

/// Live counter of in-flight conversions with a high-water mark.
#[derive(Debug)]
pub struct ConcurrencyGauge {
    active: Arc<Gauge>,
    total: Arc<Counter>,
}

impl Default for ConcurrencyGauge {
    fn default() -> Self {
        ConcurrencyGauge {
            active: Arc::new(Gauge::new()),
            total: Arc::new(Counter::new()),
        }
    }
}

impl ConcurrencyGauge {
    /// New detached gauge at zero.
    pub fn new() -> Arc<ConcurrencyGauge> {
        Arc::new(ConcurrencyGauge::default())
    }

    /// New gauge whose cells live on `registry` as
    /// `<prefix>.active` (gauge + high water) and `<prefix>.total`
    /// (counter) — the same atomics the admission path updates, so
    /// snapshots are always live.
    pub fn on_registry(registry: &Registry, prefix: &str) -> Arc<ConcurrencyGauge> {
        Arc::new(ConcurrencyGauge {
            active: registry.gauge(&format!("{prefix}.active")),
            total: registry.counter(&format!("{prefix}.total")),
        })
    }

    /// Begin a conversion; the returned lease decrements on drop.
    pub fn acquire(self: &Arc<Self>) -> Lease {
        self.active.add(1);
        self.total.inc();
        Lease {
            gauge: Arc::clone(self),
        }
    }

    /// Conversions in flight right now (`Acquire`; see module docs).
    pub fn active(&self) -> u32 {
        self.active.value().max(0) as u32
    }

    /// Most conversions ever in flight at once.
    pub fn high_water(&self) -> u32 {
        self.active.high_water().max(0) as u32
    }

    /// Conversions started since creation.
    pub fn total(&self) -> u64 {
        self.total.get()
    }
}

/// RAII lease on the gauge; dropping it ends the conversion.
#[derive(Debug)]
pub struct Lease {
    gauge: Arc<ConcurrencyGauge>,
}

impl Drop for Lease {
    fn drop(&mut self) {
        // Release: pairs with the Acquire in `active()` (module docs).
        self.gauge.active.sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unchanged-behavior contract across the SeqCst→Relaxed/AcqRel
    /// downgrade: same-thread RAII accounting is exact.
    #[test]
    fn lease_raii_tracks_active() {
        let g = ConcurrencyGauge::new();
        assert_eq!(g.active(), 0);
        {
            let _a = g.acquire();
            let _b = g.acquire();
            assert_eq!(g.active(), 2);
            assert_eq!(g.high_water(), 2);
        }
        assert_eq!(g.active(), 0);
        assert_eq!(g.high_water(), 2, "high water survives drops");
        assert_eq!(g.total(), 2);
    }

    /// Unchanged-behavior contract under contention: totals exact,
    /// high water within [1, threads], gauge drains to zero — the
    /// per-atomic modification order guarantees these regardless of
    /// the weaker orderings.
    #[test]
    fn high_water_is_monotonic_under_threads() {
        let g = ConcurrencyGauge::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let _l = g.acquire();
                    std::hint::black_box(&g);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.active(), 0);
        assert!(g.high_water() >= 1 && g.high_water() <= 8);
        assert_eq!(g.total(), 800);
    }
}
