//! Concurrent-conversion accounting.
//!
//! The outsourcing decision in the paper hinges on one number: how
//! many Lepton conversions are running on this machine *right now*
//! (§5.5: "Lepton will outsource any compression operations that occur
//! on machines that have more than three conversions happening at a
//! time"). [`ConcurrencyGauge`] tracks that number with an RAII lease,
//! plus the high-water mark the Figure 9 experiment plots.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Live counter of in-flight conversions with a high-water mark.
#[derive(Debug, Default)]
pub struct ConcurrencyGauge {
    active: AtomicU32,
    high_water: AtomicU32,
    total: AtomicU64,
}

impl ConcurrencyGauge {
    /// New gauge at zero.
    pub fn new() -> Arc<ConcurrencyGauge> {
        Arc::new(ConcurrencyGauge::default())
    }

    /// Begin a conversion; the returned lease decrements on drop.
    pub fn acquire(self: &Arc<Self>) -> Lease {
        let now = self.active.fetch_add(1, Ordering::SeqCst) + 1;
        self.high_water.fetch_max(now, Ordering::SeqCst);
        self.total.fetch_add(1, Ordering::Relaxed);
        Lease {
            gauge: Arc::clone(self),
        }
    }

    /// Conversions in flight right now.
    pub fn active(&self) -> u32 {
        self.active.load(Ordering::SeqCst)
    }

    /// Most conversions ever in flight at once.
    pub fn high_water(&self) -> u32 {
        self.high_water.load(Ordering::SeqCst)
    }

    /// Conversions started since creation.
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }
}

/// RAII lease on the gauge; dropping it ends the conversion.
#[derive(Debug)]
pub struct Lease {
    gauge: Arc<ConcurrencyGauge>,
}

impl Drop for Lease {
    fn drop(&mut self) {
        self.gauge.active.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_raii_tracks_active() {
        let g = ConcurrencyGauge::new();
        assert_eq!(g.active(), 0);
        {
            let _a = g.acquire();
            let _b = g.acquire();
            assert_eq!(g.active(), 2);
            assert_eq!(g.high_water(), 2);
        }
        assert_eq!(g.active(), 0);
        assert_eq!(g.high_water(), 2, "high water survives drops");
        assert_eq!(g.total(), 2);
    }

    #[test]
    fn high_water_is_monotonic_under_threads() {
        let g = ConcurrencyGauge::new();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let _l = g.acquire();
                    std::hint::black_box(&g);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.active(), 0);
        assert!(g.high_water() >= 1 && g.high_water() <= 8);
        assert_eq!(g.total(), 800);
    }
}
