//! # lepton-server — the blockserver conversion service
//!
//! The paper's production Lepton is not a library call: it is a
//! process that "operates by listening on a Unix-domain socket for
//! files", and when the local machine is overloaded the blockserver
//! "will make a TCP connection to a machine tagged for outsourcing"
//! instead (§5.5). This crate is that service layer, transport and
//! all:
//!
//! * [`protocol`] — the wire protocol in both modes: legacy
//!   one-conversion-per-connection (op byte, payload, half-close;
//!   status byte, payload, close) and framed multiplexed (pipelined
//!   frames, out-of-order responses), with the §6.2 exit-code
//!   taxonomy on rejections.
//! * [`endpoint`] — Unix-domain socket and TCP transports behind one
//!   [`endpoint::Endpoint`] type.
//! * [`server`] — the worker-pooled multiplexing core: bounded
//!   connection cap, bounded job queue, bounded in-flight bytes per
//!   connection, admission control that sheds compress-side work with
//!   a fast typed [`Status::Overloaded`] when the codec engine is
//!   saturated (conversions oversubscribe the machine exactly as the
//!   paper's blockservers did — that is what makes outsourcing
//!   necessary), per-IO timeouts, bounded request sizes,
//!   shutoff-switch file (§5.7), graceful drain on shutdown.
//! * [`client`] — blocking one-shot conversion client with timeout
//!   classification for the §6.6 "exceeded the timeout window" path,
//!   blockstore access (`block_put`/`block_get`/`block_stat`), and
//!   [`client::MuxClient`] for pipelining many requests over one
//!   connection.
//! * [`router`] — outsourcing: power-of-two-choices selection over a
//!   dedicated cluster ("To dedicated") or the blockserver fleet
//!   itself ("To self"), with local fallback (§5.5, Fig. 9/10).
//!
//! ```no_run
//! use lepton_server::{serve, Endpoint, ServiceConfig};
//! use std::time::Duration;
//!
//! let ep = Endpoint::uds("/tmp/lepton.sock");
//! let handle = serve(&ep, ServiceConfig::default()).unwrap();
//! let jpeg = std::fs::read("photo.jpg").unwrap();
//! let lepton =
//!     lepton_server::client::compress(handle.endpoint(), &jpeg, Duration::from_secs(30))
//!         .unwrap();
//! assert!(lepton.len() < jpeg.len());
//! handle.shutdown();
//! ```

pub mod client;
pub mod endpoint;
pub mod gauge;
pub mod protocol;
pub mod router;
pub mod server;

pub use client::{retry_with_backoff, ClientError, MuxClient, RetryPolicy};
pub use endpoint::{Conn, Endpoint, Listener};
pub use gauge::ConcurrencyGauge;
pub use protocol::{BlockStatReply, Frame, Op, StatsReply, Status, MUX_MAGIC};
pub use router::{Destination, Router, RouterMetrics, Strategy};
pub use server::{serve, ServiceConfig, ServiceHandle, ServiceMetrics};
