//! Transport abstraction: Unix-domain sockets and TCP.
//!
//! Under normal operation the blockserver talks to a *local* Lepton
//! process over a Unix-domain socket; when outsourcing, it makes a TCP
//! connection to a machine in the same building instead (§5.5). Both
//! transports carry the same byte protocol, so everything above this
//! module is transport-agnostic.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where a conversion service lives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// Unix-domain socket path (local conversions).
    Uds(PathBuf),
    /// TCP address (outsourced conversions).
    Tcp(SocketAddr),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Uds(p) => write!(f, "uds:{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

impl std::str::FromStr for Endpoint {
    type Err = io::Error;

    /// Parse the [`Display`](std::fmt::Display) form back:
    /// `uds:/path/to.sock` or `tcp:127.0.0.1:9000`. This is the format
    /// fleet manifest files store endpoints in.
    ///
    /// ```
    /// use lepton_server::Endpoint;
    ///
    /// let ep: Endpoint = "tcp:127.0.0.1:9000".parse().unwrap();
    /// assert_eq!(ep.to_string(), "tcp:127.0.0.1:9000");
    /// assert_eq!(
    ///     "uds:/tmp/lepton.sock".parse::<Endpoint>().unwrap(),
    ///     Endpoint::uds("/tmp/lepton.sock"),
    /// );
    /// assert!("smoke-signal:hilltop".parse::<Endpoint>().is_err());
    /// ```
    fn from_str(s: &str) -> io::Result<Endpoint> {
        if let Some(path) = s.strip_prefix("uds:") {
            if path.is_empty() {
                return Err(io::Error::new(io::ErrorKind::InvalidInput, "empty path"));
            }
            return Ok(Endpoint::uds(path));
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            return Endpoint::tcp(addr);
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("endpoint {s:?} is neither uds: nor tcp:"),
        ))
    }
}

impl Endpoint {
    /// A UDS endpoint at `path`.
    pub fn uds(path: impl Into<PathBuf>) -> Endpoint {
        Endpoint::Uds(path.into())
    }

    /// A TCP endpoint; `addr` must resolve.
    pub fn tcp(addr: impl ToSocketAddrs) -> io::Result<Endpoint> {
        let a = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        Ok(Endpoint::Tcp(a))
    }

    /// Connect with a connect-phase timeout (TCP) and per-IO timeouts.
    pub fn connect(&self, io_timeout: Option<Duration>) -> io::Result<Conn> {
        let conn = match self {
            Endpoint::Uds(path) => Conn::Uds(UnixStream::connect(path)?),
            Endpoint::Tcp(addr) => {
                let s = match io_timeout {
                    Some(t) => TcpStream::connect_timeout(addr, t)?,
                    None => TcpStream::connect(addr)?,
                };
                Conn::Tcp(s)
            }
        };
        conn.set_io_timeout(io_timeout)?;
        Ok(conn)
    }
}

/// A connected stream over either transport.
#[derive(Debug)]
pub enum Conn {
    /// Unix-domain socket stream.
    Uds(UnixStream),
    /// TCP stream.
    Tcp(TcpStream),
}

impl Conn {
    /// Apply a read+write timeout (None = blocking forever).
    pub fn set_io_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Uds(s) => {
                s.set_read_timeout(t)?;
                s.set_write_timeout(t)
            }
            Conn::Tcp(s) => {
                s.set_read_timeout(t)?;
                s.set_write_timeout(t)
            }
        }
    }

    /// Half-close the write side, signalling end-of-request; reads
    /// remain open for the response (§5.5's completion convention).
    pub fn shutdown_write(&self) -> io::Result<()> {
        match self {
            Conn::Uds(s) => s.shutdown(std::net::Shutdown::Write),
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
        }
    }

    /// A second handle onto the same socket. The multiplexed server
    /// splits a connection this way: the driver thread keeps reading
    /// request frames from one handle while pool workers write
    /// response frames through the other.
    pub fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Uds(s) => s.try_clone().map(Conn::Uds),
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
        }
    }

    /// Close the read side, unblocking any thread sitting in a read on
    /// this socket (it sees EOF). The write side stays open, so
    /// responses already executing can still be delivered — this is
    /// how the server interrupts idle connections at shutdown without
    /// dropping in-flight work.
    pub fn shutdown_read(&self) -> io::Result<()> {
        match self {
            Conn::Uds(s) => s.shutdown(std::net::Shutdown::Read),
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Read),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Uds(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Uds(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Uds(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

/// A bound listener over either transport.
pub enum Listener {
    /// Bound Unix-domain socket (unlinked on drop).
    Uds(UnixListener, PathBuf),
    /// Bound TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Bind to an endpoint. `Tcp` endpoints may use port 0 to let the
    /// OS choose; interrogate [`Listener::endpoint`] for the result.
    pub fn bind(ep: &Endpoint) -> io::Result<Listener> {
        match ep {
            Endpoint::Uds(path) => {
                // A stale socket file from a crashed predecessor would
                // make bind fail; remove it (standard daemon practice).
                let _ = std::fs::remove_file(path);
                Ok(Listener::Uds(UnixListener::bind(path)?, path.clone()))
            }
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr)?)),
        }
    }

    /// The endpoint this listener is actually bound to.
    pub fn endpoint(&self) -> io::Result<Endpoint> {
        match self {
            Listener::Uds(_, path) => Ok(Endpoint::Uds(path.clone())),
            Listener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?)),
        }
    }

    /// Block until the next client connects.
    pub fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Uds(l, _) => l.accept().map(|(s, _)| Conn::Uds(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Uds(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_sock(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("lepton-ep-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn uds_accept_connect_and_half_close() {
        let path = temp_sock("a");
        let listener = Listener::bind(&Endpoint::uds(&path)).unwrap();
        let ep = listener.endpoint().unwrap();
        let t = std::thread::spawn(move || {
            let mut server_side = listener.accept().unwrap();
            let mut got = Vec::new();
            server_side.read_to_end(&mut got).unwrap(); // EOF via half-close
            server_side.write_all(&got).unwrap();
            got
        });
        let mut c = ep.connect(Some(Duration::from_secs(5))).unwrap();
        c.write_all(b"ping").unwrap();
        c.shutdown_write().unwrap();
        let mut back = Vec::new();
        c.read_to_end(&mut back).unwrap();
        assert_eq!(back, b"ping");
        assert_eq!(t.join().unwrap(), b"ping");
    }

    #[test]
    fn tcp_ephemeral_port_reports_real_endpoint() {
        let listener = Listener::bind(&Endpoint::tcp("127.0.0.1:0").unwrap()).unwrap();
        let Endpoint::Tcp(addr) = listener.endpoint().unwrap() else {
            panic!("tcp listener must report tcp endpoint");
        };
        assert_ne!(addr.port(), 0);
        let t = std::thread::spawn(move || {
            let mut s = listener.accept().unwrap();
            let mut b = Vec::new();
            s.read_to_end(&mut b).unwrap();
            s.write_all(b"ok").unwrap();
        });
        let mut c = Endpoint::Tcp(addr)
            .connect(Some(Duration::from_secs(5)))
            .unwrap();
        c.write_all(b"x").unwrap();
        c.shutdown_write().unwrap();
        let mut back = Vec::new();
        c.read_to_end(&mut back).unwrap();
        assert_eq!(back, b"ok");
        t.join().unwrap();
    }

    #[test]
    fn uds_listener_cleans_up_socket_file() {
        let path = temp_sock("b");
        {
            let _l = Listener::bind(&Endpoint::uds(&path)).unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists(), "socket file unlinked on drop");
    }

    #[test]
    fn stale_socket_file_is_replaced() {
        let path = temp_sock("c");
        std::fs::write(&path, b"stale").unwrap();
        let l = Listener::bind(&Endpoint::uds(&path));
        assert!(l.is_ok(), "stale file must not block bind");
    }

    #[test]
    fn endpoint_display_is_diagnostic() {
        assert!(Endpoint::uds("/tmp/x.sock").to_string().starts_with("uds:"));
        let e = Endpoint::tcp("127.0.0.1:9000").unwrap();
        assert_eq!(e.to_string(), "tcp:127.0.0.1:9000");
    }

    #[test]
    fn endpoint_display_roundtrips_through_parse() {
        for ep in [
            Endpoint::uds("/tmp/x.sock"),
            Endpoint::tcp("127.0.0.1:9000").unwrap(),
        ] {
            assert_eq!(ep.to_string().parse::<Endpoint>().unwrap(), ep);
        }
        assert!("uds:".parse::<Endpoint>().is_err());
        assert!("smoke-signal:hill".parse::<Endpoint>().is_err());
    }
}
