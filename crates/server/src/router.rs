//! Outsourcing: route conversions away from overloaded machines.
//!
//! A blockserver has 16 cores and two simultaneous Lepton conversions
//! can saturate it, but load balancers assign requests randomly, so a
//! machine routinely ends up with many conversions at once at peak
//! (§5.5). The fix, "inspired by the power of two random choices"
//! [Mitzenmacher et al.]: when the local gauge exceeds a threshold,
//! pick two random candidate machines, probe both, and send the
//! conversion to the less-loaded one.
//!
//! Two candidate pools were deployed (§5.5.1): a **dedicated** cluster
//! reserved for Lepton (best p99, easy to provision) and the
//! blockserver fleet itself (**to-self**, which also rebalances p50
//! because there are fewer hotspots). `Control` never outsources.

use crate::client::{self, ClientError};
use crate::endpoint::Endpoint;
use crate::protocol::Op;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Candidate-selection strategy from the paper's experiment (Fig. 9/10).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Never outsource (the paper's "Control" line).
    Control,
    /// Outsource to other blockservers ("To self").
    ToSelf,
    /// Outsource to a dedicated Lepton cluster ("To dedicated").
    ToDedicated,
}

/// Where a conversion ended up running.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Destination {
    /// Ran on the local service.
    Local,
    /// Ran on the named remote after a two-choice probe.
    Outsourced(Endpoint),
}

/// Router counters (drives the Fig. 9/10-style accounting).
#[derive(Debug, Default)]
pub struct RouterMetrics {
    /// Conversions served locally.
    pub local: AtomicU64,
    /// Conversions outsourced.
    pub outsourced: AtomicU64,
    /// Outsourcing attempts that fell back to local (remote down/busy).
    pub fallbacks: AtomicU64,
}

/// Routes conversions between a local service and outsourcing pools.
pub struct Router {
    local: Endpoint,
    fleet: Vec<Endpoint>,
    dedicated: Vec<Endpoint>,
    strategy: Strategy,
    /// Outsource when the local `active` exceeds this (paper: 3 or 4).
    threshold: u32,
    timeout: Duration,
    rng: Mutex<StdRng>,
    /// Conversions this router has dispatched locally and not yet
    /// completed. The service's gauge only counts conversions that
    /// have *started*; a blockserver deciding where to run the next
    /// one must also count the ones it just put in flight, or a burst
    /// outruns every probe.
    local_inflight: AtomicU64,
    /// Counters.
    pub metrics: RouterMetrics,
}

impl Router {
    /// New router. `fleet` are peer blockservers (for [`Strategy::ToSelf`]),
    /// `dedicated` is the reserved cluster (for [`Strategy::ToDedicated`]).
    pub fn new(
        local: Endpoint,
        fleet: Vec<Endpoint>,
        dedicated: Vec<Endpoint>,
        strategy: Strategy,
        threshold: u32,
        timeout: Duration,
    ) -> Router {
        Router {
            local,
            fleet,
            dedicated,
            strategy,
            threshold,
            timeout,
            rng: Mutex::new(StdRng::seed_from_u64(0x6c65_7074_6f6e)),
            local_inflight: AtomicU64::new(0),
            metrics: RouterMetrics::default(),
        }
    }

    /// Candidate pool for the current strategy.
    fn pool(&self) -> &[Endpoint] {
        match self.strategy {
            Strategy::Control => &[],
            Strategy::ToSelf => &self.fleet,
            Strategy::ToDedicated => &self.dedicated,
        }
    }

    /// Should a conversion leave the local machine, given that
    /// `others` conversions were already in flight locally when it
    /// arrived?
    ///
    /// Local load is the larger of what the service's gauge reports
    /// (conversions that have started, possibly from other routers)
    /// and this router's own in-flight count — taking the max avoids
    /// double-counting our own started work. The probe is skipped when
    /// our own count already settles the question.
    fn should_outsource(&self, others: u32) -> bool {
        if self.strategy == Strategy::Control || self.pool().is_empty() {
            return false;
        }
        if others > self.threshold {
            return true;
        }
        match client::probe(&self.local, self.timeout) {
            Ok(stats) => stats.active.max(others) > self.threshold,
            Err(_) => false, // can't even probe local; just run local
        }
    }

    /// Power-of-two-choices pick from the pool: sample two distinct
    /// candidates, probe both, take the lighter. A single-machine pool
    /// degenerates to that machine.
    fn pick_remote(&self) -> Option<Endpoint> {
        let pool = self.pool();
        let (a, b) = {
            let mut rng = self.rng.lock();
            let mut it = pool.choose_multiple(&mut *rng, 2);
            (it.next().cloned(), it.next().cloned())
        };
        let a = a?;
        let Some(b) = b else {
            return Some(a); // pool of one
        };
        let load_a = client::probe(&a, self.timeout).map(|s| s.active);
        let load_b = client::probe(&b, self.timeout).map(|s| s.active);
        match (load_a, load_b) {
            (Ok(la), Ok(lb)) => Some(if la <= lb { a } else { b }),
            (Ok(_), Err(_)) => Some(a),
            (Err(_), Ok(_)) => Some(b),
            (Err(_), Err(_)) => None,
        }
    }

    /// Run one conversion, outsourcing if the local machine is over
    /// threshold. Remote failure falls back to local — a conversion
    /// must never be lost to a routing optimization.
    pub fn convert(&self, op: Op, payload: &[u8]) -> Result<(Vec<u8>, Destination), ClientError> {
        // Reserve the local slot *first*: the conversion counts as
        // "happening" the moment it arrives, so a simultaneous burst
        // can't outrun the load signal (every probe would still read
        // zero while all eight conversions are milliseconds from
        // starting).
        let others = self.local_inflight.fetch_add(1, Ordering::SeqCst) as u32;
        if self.should_outsource(others) {
            self.local_inflight.fetch_sub(1, Ordering::SeqCst); // not running here
            if let Some(remote) = self.pick_remote() {
                match client::convert(&remote, op, payload, self.timeout) {
                    Ok((status, body)) if status.is_ok() => {
                        self.metrics.outsourced.fetch_add(1, Ordering::Relaxed);
                        return Ok((body, Destination::Outsourced(remote)));
                    }
                    Ok((status, _)) => {
                        // A *rejection* is authoritative — the input is
                        // bad everywhere; don't burn local CPU retrying.
                        self.metrics.outsourced.fetch_add(1, Ordering::Relaxed);
                        return Err(ClientError::Refused(status));
                    }
                    Err(_) => {
                        self.metrics.fallbacks.fetch_add(1, Ordering::Relaxed);
                        // fall through to local
                    }
                }
            }
            self.local_inflight.fetch_add(1, Ordering::SeqCst); // running here after all
        }
        let result = client::convert(&self.local, op, payload, self.timeout);
        self.local_inflight.fetch_sub(1, Ordering::SeqCst);
        let (status, body) = result?;
        if !status.is_ok() {
            return Err(ClientError::Refused(status));
        }
        self.metrics.local.fetch_add(1, Ordering::Relaxed);
        Ok((body, Destination::Local))
    }

    /// Compress via the routing policy.
    pub fn compress(&self, jpeg: &[u8]) -> Result<(Vec<u8>, Destination), ClientError> {
        self.convert(Op::Compress, jpeg)
    }

    /// Decompress via the routing policy.
    pub fn decompress(&self, container: &[u8]) -> Result<(Vec<u8>, Destination), ClientError> {
        self.convert(Op::Decompress, container)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_strategy_has_empty_pool() {
        let r = Router::new(
            Endpoint::uds("/tmp/nonexistent-lepton.sock"),
            vec![Endpoint::uds("/tmp/a.sock")],
            vec![Endpoint::uds("/tmp/b.sock")],
            Strategy::Control,
            3,
            Duration::from_millis(100),
        );
        assert!(r.pool().is_empty());
        assert!(!r.should_outsource(0));
    }

    #[test]
    fn pool_selection_follows_strategy() {
        let fleet = vec![Endpoint::uds("/tmp/f.sock")];
        let dedicated = vec![Endpoint::uds("/tmp/d.sock")];
        let mk = |s| {
            Router::new(
                Endpoint::uds("/tmp/l.sock"),
                fleet.clone(),
                dedicated.clone(),
                s,
                3,
                Duration::from_millis(100),
            )
        };
        assert_eq!(mk(Strategy::ToSelf).pool(), &fleet[..]);
        assert_eq!(mk(Strategy::ToDedicated).pool(), &dedicated[..]);
    }

    #[test]
    fn pick_remote_with_unreachable_pool_is_none() {
        let r = Router::new(
            Endpoint::uds("/tmp/l.sock"),
            vec![
                Endpoint::uds("/tmp/gone-1.sock"),
                Endpoint::uds("/tmp/gone-2.sock"),
            ],
            vec![],
            Strategy::ToSelf,
            3,
            Duration::from_millis(50),
        );
        assert_eq!(r.pick_remote(), None);
    }
}
