//! Property tests for the wire protocol: every decoder total over
//! arbitrary bytes, every encoder inverted by its decoder.

use lepton_obs::{hist, MetricValue, Snapshot, SnapshotWireError};
use lepton_server::protocol::{read_bounded, read_request, Op, StatsReply, Status, EXIT_CODES};
use proptest::prelude::*;

/// Arbitrary single metric value, covering all three kinds (histogram
/// buckets generated sparse, ascending, in range — the valid set).
fn arb_metric_value() -> impl Strategy<Value = MetricValue> {
    prop_oneof![
        any::<u64>().prop_map(MetricValue::Counter),
        (any::<i64>(), any::<i64>())
            .prop_map(|(value, high_water)| MetricValue::Gauge { value, high_water }),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::btree_map(0u16..hist::BUCKET_COUNT as u16, 1u64..1 << 40, 0..12)
        )
            .prop_map(|(count, sum, buckets)| {
                MetricValue::Histogram(lepton_obs::HistogramSnapshot {
                    count,
                    sum,
                    buckets: buckets.into_iter().collect(), // BTreeMap ⇒ ascending
                })
            }),
    ]
}

/// Arbitrary snapshot with valid names and values.
fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    let name = (0usize..10_000).prop_map(|i| format!("metric.{i}.value_us"));
    proptest::collection::vec((name, arb_metric_value()), 0..24)
        .prop_map(|entries| Snapshot { entries })
}

proptest! {
    /// `from_wire` is total over all 256 byte values and inverts
    /// `to_wire` exactly on the valid set.
    #[test]
    fn op_decode_total_and_consistent(b in any::<u8>()) {
        if let Some(op) = Op::from_wire(b) {
            prop_assert_eq!(op.to_wire(), b);
        }
    }

    #[test]
    fn status_decode_total_and_consistent(b in any::<u8>()) {
        if let Some(status) = Status::from_wire(b) {
            prop_assert_eq!(status.to_wire(), b);
        }
    }

    #[test]
    fn stats_reply_roundtrip(
        active in any::<u32>(),
        high_water in any::<u32>(),
        busy_threshold in any::<u32>(),
        total_served in any::<u64>(),
        total_failed in any::<u32>(),
    ) {
        let s = StatsReply {
            active,
            high_water,
            busy_threshold,
            total_served,
            total_failed,
        };
        prop_assert_eq!(StatsReply::from_wire(&s.to_wire()), Some(s));
    }

    /// Stats parsing is length-strict: any length but the canonical one
    /// returns None (a truncated probe must not yield a bogus load of 0
    /// and attract all the traffic).
    #[test]
    fn stats_reply_rejects_wrong_lengths(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let parsed = StatsReply::from_wire(&bytes);
        prop_assert_eq!(parsed.is_some(), bytes.len() == StatsReply::WIRE_LEN);
    }

    /// `Stats` v2 snapshot wire: decode inverts encode exactly for
    /// arbitrary valid snapshots (all metric kinds, sparse histogram
    /// buckets, the degraded flag).
    #[test]
    fn stats_v2_snapshot_roundtrip(snap in arb_snapshot()) {
        let wire = snap.to_wire();
        let back = Snapshot::from_wire(&wire).expect("self-encoded snapshot must parse");
        prop_assert_eq!(back.entries, snap.entries);
    }

    /// Truncation at *every* prefix length yields a typed error, never
    /// a panic or a silently-short snapshot; appended trailing bytes
    /// are likewise rejected with their exact count.
    #[test]
    fn stats_v2_truncation_and_trailing_rejected(snap in arb_snapshot(), extra in 1usize..9) {
        let wire = snap.to_wire();
        for cut in 0..wire.len() {
            match Snapshot::from_wire(&wire[..cut]) {
                Err(_) => {}
                Ok(parsed) => prop_assert!(
                    false,
                    "prefix of {cut}/{} bytes parsed to {} entries",
                    wire.len(),
                    parsed.entries.len()
                ),
            }
        }
        let mut padded = wire.clone();
        padded.extend(std::iter::repeat_n(0u8, extra));
        prop_assert_eq!(
            Snapshot::from_wire(&padded),
            Err(SnapshotWireError::TrailingBytes(extra))
        );
    }

    /// An oversized entry count is refused by the announced header
    /// alone — no attacker-controlled allocation happens first.
    #[test]
    fn stats_v2_oversized_count_rejected(n in (lepton_obs::snapshot::MAX_ENTRIES + 1)..u32::MAX) {
        let mut wire = vec![2u8, 0u8];
        wire.extend_from_slice(&n.to_le_bytes());
        prop_assert_eq!(
            Snapshot::from_wire(&wire),
            Err(SnapshotWireError::TooManyEntries(n))
        );
    }

    /// The legacy 24-byte v1 probe reply still parses unchanged: new
    /// telemetry must not break deployed v1 clients.
    #[test]
    fn stats_v1_back_compat_unchanged(
        active in any::<u32>(),
        high_water in any::<u32>(),
        busy_threshold in any::<u32>(),
        total_served in any::<u64>(),
        total_failed in any::<u32>(),
    ) {
        let s = StatsReply { active, high_water, busy_threshold, total_served, total_failed };
        let wire = s.to_wire();
        prop_assert_eq!(wire.len(), StatsReply::WIRE_LEN);
        prop_assert_eq!(StatsReply::from_wire(&wire), Some(s));
    }

    /// Request framing: op byte + arbitrary payload + EOF parses back
    /// to exactly that pair for any payload within budget.
    #[test]
    fn request_framing_roundtrip(op in any::<u8>(), payload in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let mut wire = Vec::with_capacity(1 + payload.len());
        wire.push(op);
        wire.extend_from_slice(&payload);
        let mut r: &[u8] = &wire;
        let (got_op, got_payload) = read_request(&mut r, 4096).unwrap().unwrap();
        prop_assert_eq!(got_op, op);
        prop_assert_eq!(got_payload, payload);
    }

    /// The size budget is exact: budget-sized payloads pass, one byte
    /// more fails.
    #[test]
    fn read_bounded_budget_is_exact(n in 0usize..2048) {
        let data = vec![0xABu8; n];
        let mut r: &[u8] = &data;
        prop_assert_eq!(read_bounded(&mut r, n).unwrap().len(), n);
        if n > 0 {
            let mut r: &[u8] = &data;
            prop_assert!(read_bounded(&mut r, n - 1).is_err());
        }
    }
}

#[test]
fn every_exit_code_has_a_wire_status() {
    // Protects the wire table against someone adding an ExitCode
    // variant without extending EXIT_CODES.
    for code in EXIT_CODES {
        let status = Status::Rejected(code);
        let b = status.to_wire();
        assert_eq!(Status::from_wire(b), Some(status));
    }
}
