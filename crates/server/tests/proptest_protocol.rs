//! Property tests for the wire protocol: every decoder total over
//! arbitrary bytes, every encoder inverted by its decoder.

use lepton_server::protocol::{read_bounded, read_request, Op, StatsReply, Status, EXIT_CODES};
use proptest::prelude::*;

proptest! {
    /// `from_wire` is total over all 256 byte values and inverts
    /// `to_wire` exactly on the valid set.
    #[test]
    fn op_decode_total_and_consistent(b in any::<u8>()) {
        if let Some(op) = Op::from_wire(b) {
            prop_assert_eq!(op.to_wire(), b);
        }
    }

    #[test]
    fn status_decode_total_and_consistent(b in any::<u8>()) {
        if let Some(status) = Status::from_wire(b) {
            prop_assert_eq!(status.to_wire(), b);
        }
    }

    #[test]
    fn stats_reply_roundtrip(
        active in any::<u32>(),
        high_water in any::<u32>(),
        busy_threshold in any::<u32>(),
        total_served in any::<u64>(),
        total_failed in any::<u32>(),
    ) {
        let s = StatsReply {
            active,
            high_water,
            busy_threshold,
            total_served,
            total_failed,
        };
        prop_assert_eq!(StatsReply::from_wire(&s.to_wire()), Some(s));
    }

    /// Stats parsing is length-strict: any length but the canonical one
    /// returns None (a truncated probe must not yield a bogus load of 0
    /// and attract all the traffic).
    #[test]
    fn stats_reply_rejects_wrong_lengths(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let parsed = StatsReply::from_wire(&bytes);
        prop_assert_eq!(parsed.is_some(), bytes.len() == StatsReply::WIRE_LEN);
    }

    /// Request framing: op byte + arbitrary payload + EOF parses back
    /// to exactly that pair for any payload within budget.
    #[test]
    fn request_framing_roundtrip(op in any::<u8>(), payload in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let mut wire = Vec::with_capacity(1 + payload.len());
        wire.push(op);
        wire.extend_from_slice(&payload);
        let mut r: &[u8] = &wire;
        let (got_op, got_payload) = read_request(&mut r, 4096).unwrap().unwrap();
        prop_assert_eq!(got_op, op);
        prop_assert_eq!(got_payload, payload);
    }

    /// The size budget is exact: budget-sized payloads pass, one byte
    /// more fails.
    #[test]
    fn read_bounded_budget_is_exact(n in 0usize..2048) {
        let data = vec![0xABu8; n];
        let mut r: &[u8] = &data;
        prop_assert_eq!(read_bounded(&mut r, n).unwrap().len(), n);
        if n > 0 {
            let mut r: &[u8] = &data;
            prop_assert!(read_bounded(&mut r, n - 1).is_err());
        }
    }
}

#[test]
fn every_exit_code_has_a_wire_status() {
    // Protects the wire table against someone adding an ExitCode
    // variant without extending EXIT_CODES.
    for code in EXIT_CODES {
        let status = Status::Rejected(code);
        let b = status.to_wire();
        assert_eq!(Status::from_wire(b), Some(status));
    }
}
