//! Live `Stats` v2 integration: a served workload must show up in the
//! wire snapshot — per-op latency histograms, engine gauges, job
//! traces — alongside the unchanged v1 probe, and an overload storm
//! must flip the degraded-health flag that the snapshot carries.

use lepton_corpus::builder::{clean_jpeg, CorpusSpec};
use lepton_obs::WatchdogConfig;
use lepton_server::client::MuxClient;
use lepton_server::{client, serve, Endpoint, Op, ServiceConfig, Status};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(60);

fn spec() -> CorpusSpec {
    CorpusSpec {
        min_dim: 64,
        max_dim: 160,
        ..Default::default()
    }
}

fn tcp_any() -> Endpoint {
    Endpoint::tcp("127.0.0.1:0").unwrap()
}

/// One conversion, then a v2 snapshot over the wire: the op latency
/// histogram, the engine gauges, and the codec's own stage traces are
/// all present and current — and the legacy 24-byte v1 probe still
/// answers on the same connection discipline.
#[test]
fn stats_v2_live_snapshot_reflects_served_work() {
    let handle = serve(&tcp_any(), ServiceConfig::default()).unwrap();
    let jpeg = clean_jpeg(&spec(), 90);

    let lepton = client::compress(handle.endpoint(), &jpeg, TIMEOUT).unwrap();
    assert!(lepton.len() < jpeg.len());

    let snap = client::probe_snapshot(handle.endpoint(), TIMEOUT).unwrap();

    // Per-op latency: the compression we just ran is in its histogram.
    let lat = snap
        .histogram("server.op.compress.latency_us")
        .expect("compress latency histogram present");
    assert!(lat.count >= 1, "served compress not recorded: {lat:?}");
    assert!(lat.percentile(0.99) >= lat.percentile(0.50));

    // Engine telemetry rides along from the process-global registry.
    assert!(
        snap.get("engine.queue_depth").is_some(),
        "engine gauge missing from merged snapshot"
    );
    // Small inputs may run inline instead of on the worker pool;
    // either way the engine accounted the job.
    assert!(snap.counter("engine.jobs.completed") + snap.counter("engine.inline_jobs") >= 1);

    // The codec recorded a per-job trace with stage breakdown.
    let job = snap
        .histogram("trace.job.compress_us")
        .expect("job trace histogram present");
    assert!(job.count >= 1);
    assert!(
        snap.histogram("trace.stage.arith_encode_us").is_some(),
        "stage histograms missing"
    );

    // Server counters agree with the work done, and health is good.
    assert!(snap.counter("server.served") >= 1);
    assert!(!snap.degraded());

    // v1 remains the compact load probe it always was.
    let v1 = client::probe(handle.endpoint(), TIMEOUT).unwrap();
    assert!(v1.total_served >= 1);
    assert_eq!(v1.total_failed, 0);
    handle.shutdown();
}

/// A shed storm past the admission limit must latch the watchdog's
/// degraded-health flag within one evaluation window, and the flag
/// must travel the wire in the v2 snapshot header.
#[test]
fn shed_storm_latches_degraded_flag() {
    let cfg = ServiceConfig {
        conversion_workers: 1,
        job_queue_depth: 1,
        watchdog: WatchdogConfig {
            window: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let handle = serve(&tcp_any(), cfg).unwrap();
    let jpeg = clean_jpeg(&spec(), 91);
    // Stall the single worker so the burst piles up and sheds.
    handle.inject_delay(Duration::from_millis(300));

    let mut mux = MuxClient::connect(handle.endpoint(), TIMEOUT).unwrap();
    const BURST: usize = 16;
    let ids: Vec<u32> = (0..BURST)
        .map(|_| mux.send(Op::Compress, &jpeg).unwrap())
        .collect();
    let mut shed = 0;
    for &id in &ids {
        let (status, _) = mux.recv(id).unwrap();
        if status == Status::Overloaded {
            shed += 1;
        }
    }
    // Capacity is worker(1) + queue(1); the rest of the burst shed,
    // comfortably filling one 8-event watchdog window with anomalies.
    assert!(shed >= 8, "expected a real storm, got {shed} sheds");

    assert!(
        handle.degraded(),
        "watchdog must latch degraded within one window of a shed storm"
    );
    let snap = client::probe_snapshot(handle.endpoint(), TIMEOUT).unwrap();
    assert!(snap.degraded(), "degraded flag must travel the v2 wire");
    assert_eq!(snap.gauge("health.degraded"), 1);
    assert!(snap.gauge("watchdog.trips") >= 1);
    handle.shutdown();
}
