//! End-to-end tests of the conversion service over real sockets:
//! Unix-domain and TCP transports, concurrent load, outsourcing
//! policy, shutoff switch, and malformed traffic.

use lepton_corpus::builder::{clean_jpeg, CorpusSpec};
use lepton_server::{
    client, serve, ClientError, Destination, Endpoint, Router, ServiceConfig, Status, Strategy,
};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(60);

fn spec() -> CorpusSpec {
    CorpusSpec {
        min_dim: 64,
        max_dim: 160,
        ..Default::default()
    }
}

fn temp_sock(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("lepton-test-{}-{tag}.sock", std::process::id()));
    p
}

fn tcp_any() -> Endpoint {
    Endpoint::tcp("127.0.0.1:0").unwrap()
}

#[test]
fn uds_compress_decompress_roundtrip() {
    let handle = serve(&Endpoint::uds(temp_sock("rt")), ServiceConfig::default()).unwrap();
    let jpeg = clean_jpeg(&spec(), 1);

    let lepton = client::compress(handle.endpoint(), &jpeg, TIMEOUT).unwrap();
    assert!(lepton.len() < jpeg.len(), "service must actually compress");
    let back = client::decompress(handle.endpoint(), &lepton, TIMEOUT).unwrap();
    assert_eq!(back, jpeg, "byte-exact through the socket");

    let stats = handle.stats();
    assert_eq!(stats.total_served, 2);
    assert_eq!(stats.total_failed, 0);
    handle.shutdown();
}

#[test]
fn tcp_transport_carries_same_protocol() {
    let handle = serve(&tcp_any(), ServiceConfig::default()).unwrap();
    let jpeg = clean_jpeg(&spec(), 2);
    let lepton = client::compress(handle.endpoint(), &jpeg, TIMEOUT).unwrap();
    assert_eq!(
        client::decompress(handle.endpoint(), &lepton, TIMEOUT).unwrap(),
        jpeg
    );
    handle.shutdown();
}

#[test]
fn ping_and_stats_ops() {
    let handle = serve(&tcp_any(), ServiceConfig::default()).unwrap();
    client::ping(handle.endpoint(), TIMEOUT).unwrap();
    let stats = client::probe(handle.endpoint(), TIMEOUT).unwrap();
    assert_eq!(stats.active, 0);
    assert_eq!(stats.busy_threshold, 3, "default matches the paper");
    handle.shutdown();
}

#[test]
fn rejections_carry_exit_codes() {
    let handle = serve(&tcp_any(), ServiceConfig::default()).unwrap();
    // Not a JPEG at all.
    let err = client::compress(handle.endpoint(), b"plain text, no SOI", TIMEOUT).unwrap_err();
    match err {
        ClientError::Refused(Status::Rejected(code)) => {
            assert_eq!(code.label(), "Not an image");
        }
        other => panic!("expected NotAnImage rejection, got {other:?}"),
    }
    // Garbage with a Lepton decompress op: bad magic.
    let err = client::decompress(handle.endpoint(), b"not a container", TIMEOUT).unwrap_err();
    assert!(matches!(
        err,
        ClientError::Refused(Status::Rejected(_)) | ClientError::Refused(Status::BadRequest)
    ));
    assert!(handle.stats().total_failed >= 2);
    handle.shutdown();
}

#[test]
fn unknown_op_is_bad_request() {
    let handle = serve(&tcp_any(), ServiceConfig::default()).unwrap();
    let mut conn = handle.endpoint().connect(Some(TIMEOUT)).unwrap();
    conn.write_all(b"Zwhatever").unwrap();
    conn.shutdown_write().unwrap();
    let mut resp = Vec::new();
    conn.read_to_end(&mut resp).unwrap();
    assert_eq!(Status::from_wire(resp[0]), Some(Status::BadRequest));
    handle.shutdown();
}

#[test]
fn oversized_request_is_refused_not_buffered() {
    let cfg = ServiceConfig {
        max_request_bytes: 4096,
        ..Default::default()
    };
    let handle = serve(&tcp_any(), cfg).unwrap();
    let big = vec![0u8; 64 << 10];
    let err = client::compress(handle.endpoint(), &big, TIMEOUT).unwrap_err();
    match err {
        ClientError::Refused(Status::TooLarge) => {}
        // The server may reset the connection as it refuses; both are
        // acceptable refusals of an over-budget payload.
        ClientError::Io(_) => {}
        other => panic!("expected TooLarge/io, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn shutoff_switch_refuses_compress_but_serves_decompress() {
    let switch = {
        let mut p = std::env::temp_dir();
        p.push(format!("lepton-test-{}-shutoff", std::process::id()));
        p
    };
    let _ = std::fs::remove_file(&switch);
    let cfg = ServiceConfig {
        shutoff_file: Some(switch.clone()),
        ..Default::default()
    };
    let handle = serve(&tcp_any(), cfg).unwrap();
    let jpeg = clean_jpeg(&spec(), 3);

    // Switch off: normal service.
    let lepton = client::compress(handle.endpoint(), &jpeg, TIMEOUT).unwrap();

    // Engage the switch (the paper: a file lands in /dev/shm and takes
    // effect within seconds, §5.7).
    std::fs::write(&switch, b"on").unwrap();
    let err = client::compress(handle.endpoint(), &jpeg, TIMEOUT).unwrap_err();
    assert!(matches!(err, ClientError::Refused(Status::Shutdown)));
    // Decodes keep working: reads are never sacrificed.
    assert_eq!(
        client::decompress(handle.endpoint(), &lepton, TIMEOUT).unwrap(),
        jpeg
    );
    assert_eq!(handle.metrics().shutoff_refusals.get(), 1);

    // Disengage: service resumes within one request.
    std::fs::remove_file(&switch).unwrap();
    client::compress(handle.endpoint(), &jpeg, TIMEOUT).unwrap();
    handle.shutdown();
}

#[test]
fn concurrent_clients_all_roundtrip() {
    let handle = Arc::new(serve(&tcp_any(), ServiceConfig::default()).unwrap());
    let jpegs: Vec<Vec<u8>> = (0..8).map(|s| clean_jpeg(&spec(), 100 + s)).collect();
    let mut threads = Vec::new();
    for jpeg in jpegs {
        let ep = handle.endpoint().clone();
        threads.push(std::thread::spawn(move || {
            let lepton = client::compress(&ep, &jpeg, TIMEOUT).unwrap();
            let back = client::decompress(&ep, &lepton, TIMEOUT).unwrap();
            assert_eq!(back, jpeg);
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let stats = handle.stats();
    assert_eq!(stats.total_served, 16);
    assert!(stats.high_water >= 1);
    Arc::try_unwrap(handle).ok().unwrap().shutdown();
}

#[test]
fn graceful_shutdown_then_connection_refused() {
    let path = temp_sock("gs");
    let handle = serve(&Endpoint::uds(&path), ServiceConfig::default()).unwrap();
    let ep = handle.endpoint().clone();
    client::ping(&ep, TIMEOUT).unwrap();
    handle.shutdown();
    // Socket file is gone; connecting must fail.
    assert!(client::ping(&ep, Duration::from_millis(200)).is_err());
    assert!(!path.exists());
}

#[test]
fn router_stays_local_under_light_load() {
    let local = serve(&tcp_any(), ServiceConfig::default()).unwrap();
    let remote = serve(&tcp_any(), ServiceConfig::default()).unwrap();
    let router = Router::new(
        local.endpoint().clone(),
        vec![remote.endpoint().clone()],
        vec![],
        Strategy::ToSelf,
        3,
        TIMEOUT,
    );
    let jpeg = clean_jpeg(&spec(), 4);
    let (lepton, dest) = router.compress(&jpeg).unwrap();
    assert_eq!(dest, Destination::Local, "idle machine keeps its work");
    assert_eq!(lepton_core::decompress(&lepton).unwrap(), jpeg);
    assert_eq!(remote.stats().total_served, 0);
    local.shutdown();
    remote.shutdown();
}

/// Holds `n` conversions open on `ep` by starting decompresses that
/// stall: we open connections, send partial requests, and hold them.
/// The gauge only counts running conversions, so instead we saturate
/// with real work: long compress requests on large inputs.
struct BusyLoad {
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl BusyLoad {
    fn start(ep: &Endpoint, n: usize) -> BusyLoad {
        let mut threads = Vec::new();
        for s in 0..n {
            let ep = ep.clone();
            threads.push(std::thread::spawn(move || {
                let big = CorpusSpec {
                    min_dim: 640,
                    max_dim: 900,
                    ..Default::default()
                };
                let jpeg = clean_jpeg(&big, 7000 + s as u64);
                let _ = client::compress(&ep, &jpeg, TIMEOUT);
            }));
        }
        BusyLoad { threads }
    }

    fn join(self) {
        for t in self.threads {
            t.join().unwrap();
        }
    }
}

#[test]
fn router_outsources_when_local_is_saturated() {
    // Local server with enough workers that the gauge can exceed the
    // threshold of 0 the moment any conversion is in flight.
    let local = serve(&tcp_any(), ServiceConfig::default()).unwrap();
    let dedicated = serve(&tcp_any(), ServiceConfig::default()).unwrap();
    let router = Router::new(
        local.endpoint().clone(),
        vec![],
        vec![dedicated.endpoint().clone()],
        Strategy::ToDedicated,
        0, // outsource the moment anything is running locally
        TIMEOUT,
    );

    // Saturate local, then route while it is busy.
    let load = BusyLoad::start(local.endpoint(), 2);
    // Wait until the gauge actually shows in-flight work.
    let deadline = std::time::Instant::now() + TIMEOUT;
    while local.gauge().active() == 0 {
        assert!(std::time::Instant::now() < deadline, "load never arrived");
        std::thread::yield_now();
    }

    let jpeg = clean_jpeg(&spec(), 5);
    let (lepton, dest) = router.compress(&jpeg).unwrap();
    assert!(
        matches!(dest, Destination::Outsourced(_)),
        "busy local machine must outsource (got {dest:?})"
    );
    assert_eq!(lepton_core::decompress(&lepton).unwrap(), jpeg);
    assert!(dedicated.stats().total_served >= 1);
    assert_eq!(
        router
            .metrics
            .outsourced
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );

    load.join();
    local.shutdown();
    dedicated.shutdown();
}

#[test]
fn router_two_choices_picks_lighter_remote() {
    // Remote A is saturated by held conversions; remote B idle. The
    // two-choice probe must pick B.
    let local = serve(&tcp_any(), ServiceConfig::default()).unwrap();
    let remote_a = serve(&tcp_any(), ServiceConfig::default()).unwrap();
    let remote_b = serve(&tcp_any(), ServiceConfig::default()).unwrap();

    let load_local = BusyLoad::start(local.endpoint(), 2);
    let load_a = BusyLoad::start(remote_a.endpoint(), 3);
    let deadline = std::time::Instant::now() + TIMEOUT;
    while local.gauge().active() == 0 || remote_a.gauge().active() == 0 {
        assert!(std::time::Instant::now() < deadline, "load never arrived");
        std::thread::yield_now();
    }

    let router = Router::new(
        local.endpoint().clone(),
        vec![remote_a.endpoint().clone(), remote_b.endpoint().clone()],
        vec![],
        Strategy::ToSelf,
        0,
        TIMEOUT,
    );
    let jpeg = clean_jpeg(&spec(), 6);
    let (_, dest) = router.compress(&jpeg).unwrap();
    assert_eq!(
        dest,
        Destination::Outsourced(remote_b.endpoint().clone()),
        "power of two choices must prefer the idle machine"
    );

    load_local.join();
    load_a.join();
    local.shutdown();
    remote_a.shutdown();
    remote_b.shutdown();
}

#[test]
fn router_falls_back_to_local_when_remotes_are_dead() {
    let local = serve(&tcp_any(), ServiceConfig::default()).unwrap();
    // A dead endpoint: bind then immediately shut down to free the port.
    let dead = serve(&tcp_any(), ServiceConfig::default()).unwrap();
    let dead_ep = dead.endpoint().clone();
    dead.shutdown();

    let load = BusyLoad::start(local.endpoint(), 2);
    let deadline = std::time::Instant::now() + TIMEOUT;
    while local.gauge().active() == 0 {
        assert!(std::time::Instant::now() < deadline, "load never arrived");
        std::thread::yield_now();
    }

    let router = Router::new(
        local.endpoint().clone(),
        vec![dead_ep],
        vec![],
        Strategy::ToSelf,
        0,
        Duration::from_secs(5),
    );
    let jpeg = clean_jpeg(&spec(), 7);
    let (lepton, dest) = router.compress(&jpeg).unwrap();
    assert_eq!(dest, Destination::Local, "no remote ⇒ run it here");
    assert_eq!(lepton_core::decompress(&lepton).unwrap(), jpeg);

    load.join();
    local.shutdown();
}

#[test]
fn queued_conversions_drain_on_shutdown() {
    // One worker, several queued conversions: shutdown must complete
    // them all rather than dropping the queue.
    let cfg = ServiceConfig {
        max_connections: 1,
        ..Default::default()
    };
    let handle = serve(&tcp_any(), cfg).unwrap();
    let ep = handle.endpoint().clone();
    let mut threads = Vec::new();
    for s in 0..4 {
        let ep = ep.clone();
        threads.push(std::thread::spawn(move || {
            let jpeg = clean_jpeg(&spec(), 200 + s);
            let lepton = client::compress(&ep, &jpeg, TIMEOUT).unwrap();
            assert_eq!(lepton_core::decompress(&lepton).unwrap(), jpeg);
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(handle.stats().total_served, 4);
    handle.shutdown();
}

#[test]
fn blockstore_ops_over_the_socket() {
    use lepton_storage::blockstore::{ShardedStore, StoreConfig};

    let root = std::env::temp_dir().join(format!("lepton-svc-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = Arc::new(ShardedStore::open(&root, StoreConfig::default()).unwrap());
    let cfg = ServiceConfig {
        blockstore: Some(Arc::clone(&store)),
        ..Default::default()
    };
    let handle = serve(&Endpoint::uds(temp_sock("bs")), cfg).unwrap();
    let ep = handle.endpoint();

    // JPEG block: stored transparently, address is the content hash.
    let jpeg = clean_jpeg(&spec(), 31);
    let key = client::block_put(ep, &jpeg, TIMEOUT).unwrap();
    assert_eq!(client::block_get(ep, &key, TIMEOUT).unwrap().unwrap(), jpeg);

    // Non-JPEG block round-trips too.
    let blob = b"opaque user bytes".repeat(100);
    let bkey = client::block_put(ep, &blob, TIMEOUT).unwrap();
    assert_eq!(
        client::block_get(ep, &bkey, TIMEOUT).unwrap().unwrap(),
        blob
    );

    // Missing address is NotFound, surfaced as Ok(None).
    assert_eq!(client::block_get(ep, &[0u8; 32], TIMEOUT).unwrap(), None);

    // Stat reflects both blocks and the compression that happened.
    let stat = client::block_stat(ep, TIMEOUT).unwrap();
    assert_eq!(stat.blocks, 2);
    assert_eq!(stat.lepton_blocks, 1);
    assert!(stat.stored_bytes < stat.logical_bytes, "{stat:?}");

    // The service shares the store with its host process.
    assert!(store.contains(&key));

    // Malformed get (wrong key size) is a BadRequest, not a hang. The
    // typed client cannot send one, so speak wire bytes directly.
    let mut conn = ep.connect(Some(TIMEOUT)).unwrap();
    conn.write_all(b"Gshort").unwrap();
    conn.shutdown_write().unwrap();
    let mut resp = Vec::new();
    conn.read_to_end(&mut resp).unwrap();
    assert_eq!(Status::from_wire(resp[0]), Some(Status::BadRequest));
    handle.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn shutoff_switch_lands_block_puts_raw() {
    use lepton_storage::blockstore::{ShardedStore, StoreConfig};
    use lepton_storage::StoredFormat;

    let root = std::env::temp_dir().join(format!("lepton-svc-shutoff-bs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let switch = std::env::temp_dir().join(format!("lepton-svc-bs-switch-{}", std::process::id()));
    let _ = std::fs::remove_file(&switch);
    let store = Arc::new(ShardedStore::open(&root, StoreConfig::default()).unwrap());
    let cfg = ServiceConfig {
        blockstore: Some(Arc::clone(&store)),
        shutoff_file: Some(switch.clone()),
        ..Default::default()
    };
    let handle = serve(&Endpoint::uds(temp_sock("bs-off")), cfg).unwrap();
    let ep = handle.endpoint();
    let jpeg = clean_jpeg(&spec(), 41);

    // Switch engaged: the put is accepted (durability first) but the
    // codec must not run — the block lands raw.
    std::fs::write(&switch, b"on").unwrap();
    let key = client::block_put(ep, &jpeg, TIMEOUT).unwrap();
    assert_eq!(store.format_of(&key).unwrap(), Some(StoredFormat::Raw));
    assert_eq!(client::block_get(ep, &key, TIMEOUT).unwrap().unwrap(), jpeg);

    // Switch released: backfill converts the stranded block in place.
    std::fs::remove_file(&switch).unwrap();
    let report = store.backfill(2).unwrap();
    assert_eq!(report.converted, 1);
    assert_eq!(store.format_of(&key).unwrap(), Some(StoredFormat::Lepton));
    assert_eq!(client::block_get(ep, &key, TIMEOUT).unwrap().unwrap(), jpeg);
    handle.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn block_ops_without_store_are_bad_requests() {
    let handle = serve(
        &Endpoint::uds(temp_sock("nostore")),
        ServiceConfig::default(),
    )
    .unwrap();
    match client::block_put(handle.endpoint(), b"data", TIMEOUT) {
        Err(ClientError::Refused(Status::BadRequest)) => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }
    match client::block_stat(handle.endpoint(), TIMEOUT) {
        Err(ClientError::Refused(Status::BadRequest)) => {}
        other => panic!("expected BadRequest, got {other:?}"),
    }
    handle.shutdown();
}
