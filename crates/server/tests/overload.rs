//! Overload behavior of the multiplexed serving core: pipelining,
//! slow-loris defense, and admission-control shedding. The common
//! thread: a hostile or overloaded moment produces a *typed* answer
//! within a deadline, never an unbounded thread count or a silent
//! hang — the §5.1 bounded-resources discipline, observed from the
//! outside.

use lepton_corpus::builder::{clean_jpeg, CorpusSpec};
use lepton_server::client::MuxClient;
use lepton_server::{client, serve, Endpoint, Op, ServiceConfig, Status};
use std::io::{Read, Write};
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(60);

fn spec() -> CorpusSpec {
    CorpusSpec {
        min_dim: 64,
        max_dim: 160,
        ..Default::default()
    }
}

fn tcp_any() -> Endpoint {
    Endpoint::tcp("127.0.0.1:0").unwrap()
}

/// The framed mode's reason to exist: many requests down one
/// connection, answered out of order. A ping pipelined *behind* two
/// compressions must not wait for them.
#[test]
fn mux_pipelines_requests_and_answers_out_of_order() {
    let handle = serve(&tcp_any(), ServiceConfig::default()).unwrap();
    let jpeg = clean_jpeg(&spec(), 40);

    let mut mux = MuxClient::connect(handle.endpoint(), TIMEOUT).unwrap();
    let c1 = mux.send(Op::Compress, &jpeg).unwrap();
    let c2 = mux.send(Op::Compress, &jpeg).unwrap();
    let ping = mux.send(Op::Ping, &[]).unwrap();

    // Collect in an order unrelated to submission: the ids, not the
    // arrival order, correlate responses.
    let (ps, _) = mux.recv(ping).unwrap();
    assert_eq!(ps, Status::Ok);
    let (s2, lepton2) = mux.recv(c2).unwrap();
    let (s1, lepton1) = mux.recv(c1).unwrap();
    assert_eq!((s1, s2), (Status::Ok, Status::Ok));
    assert_eq!(lepton1, lepton2, "same input, same container");
    assert!(lepton1.len() < jpeg.len());

    // The decode side runs through the same pipe.
    let (ds, back) = mux.call(Op::Decompress, &lepton1).unwrap();
    assert_eq!(ds, Status::Ok);
    assert_eq!(back, jpeg);

    let stats = handle.stats();
    assert_eq!(stats.total_served, 3);
    assert_eq!(stats.total_failed, 0);
    handle.shutdown();
}

/// A mux connection and a legacy connection are the same service:
/// blobs compressed on one mode decompress on the other, and the
/// legacy protocol is untouched by the mux machinery.
#[test]
fn mux_and_legacy_modes_interoperate() {
    let handle = serve(&tcp_any(), ServiceConfig::default()).unwrap();
    let jpeg = clean_jpeg(&spec(), 41);

    let lepton = client::compress(handle.endpoint(), &jpeg, TIMEOUT).unwrap();
    let mut mux = MuxClient::connect(handle.endpoint(), TIMEOUT).unwrap();
    let (s, back) = mux.call(Op::Decompress, &lepton).unwrap();
    assert_eq!(s, Status::Ok);
    assert_eq!(back, jpeg);
    handle.shutdown();
}

/// Slow loris: a connection that sends an op byte and then dribbles
/// (or stops) without ever half-closing. It must get a typed
/// `Timeout` within the io deadline — and while it camps, healthy
/// connections keep converting, because the loris pins only its own
/// driver thread, never a shared resource.
#[test]
fn slow_loris_is_timed_out_while_healthy_connections_convert() {
    let cfg = ServiceConfig {
        io_timeout: Duration::from_millis(300),
        ..Default::default()
    };
    let max_connections = cfg.max_connections;
    let handle = serve(&tcp_any(), cfg).unwrap();

    // The loris: op byte, a few payload bytes, then silence.
    let mut loris = handle
        .endpoint()
        .connect(Some(Duration::from_secs(10)))
        .unwrap();
    loris.write_all(b"Cabc").unwrap();
    loris.flush().unwrap();

    // A healthy conversion proceeds underneath it.
    let jpeg = clean_jpeg(&spec(), 42);
    let lepton = client::compress(handle.endpoint(), &jpeg, TIMEOUT).unwrap();
    assert!(lepton.len() < jpeg.len());

    // The loris gets its answer: one status byte, Timeout, within the
    // deadline (with slack for a loaded CI box).
    let t0 = Instant::now();
    let mut status = [0u8; 1];
    loris.read_exact(&mut status).unwrap();
    assert_eq!(Status::from_wire(status[0]), Some(Status::Timeout));
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "typed rejection must arrive promptly, took {:?}",
        t0.elapsed()
    );

    // Thread growth is bounded by the connection cap, loris or not.
    assert!(handle.connections().high_water() <= max_connections as u32);
    handle.shutdown();
}

/// Burst past the admission limit: with one worker (stalled by an
/// injected delay) and a one-slot job queue, a pipelined burst of
/// compressions must shed the overflow with `Overloaded` *immediately*
/// — not after the queue drains — while the admitted requests and
/// other connections complete normally.
#[test]
fn burst_past_admission_limit_is_shed_with_typed_rejections() {
    let cfg = ServiceConfig {
        conversion_workers: 1,
        job_queue_depth: 1,
        ..Default::default()
    };
    let max_connections = cfg.max_connections;
    let handle = serve(&tcp_any(), cfg).unwrap();
    let jpeg = clean_jpeg(&spec(), 43);
    // Stall the single worker so the burst piles onto the queue.
    handle.inject_delay(Duration::from_millis(300));

    let mut mux = MuxClient::connect(handle.endpoint(), TIMEOUT).unwrap();
    const BURST: usize = 6;
    let ids: Vec<u32> = (0..BURST)
        .map(|_| mux.send(Op::Compress, &jpeg).unwrap())
        .collect();

    // Sheds are answered while the worker is still sleeping on the
    // first job: they must not queue behind it.
    let t0 = Instant::now();
    let mut statuses = Vec::new();
    for &id in &ids {
        let (status, _) = mux.recv(id).unwrap();
        statuses.push(status);
    }
    let elapsed = t0.elapsed();

    let ok = statuses.iter().filter(|s| **s == Status::Ok).count();
    let shed = statuses
        .iter()
        .filter(|s| **s == Status::Overloaded)
        .count();
    assert_eq!(
        ok + shed,
        BURST,
        "every frame answered, typed: {statuses:?}"
    );
    // Worker capacity one + queue capacity one: at most 2 admitted
    // jobs can exist at any instant. Frames past that are shed (the
    // driver may race the worker's dequeue, so 2 or 3 can be admitted
    // across the burst, never all).
    assert!(
        shed >= BURST - 3,
        "expected real shedding, got {statuses:?}"
    );
    assert!(ok >= 1, "admitted work completes: {statuses:?}");
    assert!(
        elapsed < Duration::from_secs(10),
        "shed answers must not stack behind the stalled worker: {elapsed:?}"
    );
    assert_eq!(handle.metrics().shed.get(), shed as u64);

    // The service is not wedged: probes answer instantly and a legacy
    // connection's conversion still completes (slowly — the injected
    // delay applies — but typed Ok).
    client::ping(handle.endpoint(), TIMEOUT).unwrap();
    let lepton = client::compress(handle.endpoint(), &jpeg, TIMEOUT).unwrap();
    assert!(lepton.len() < jpeg.len());

    assert!(handle.connections().high_water() <= max_connections as u32);
    handle.shutdown();
}

/// An oversized frame is policed before allocation and answered with
/// a typed `TooLarge` on the reserved id; the connection then closes
/// instead of trying to resynchronize mid-stream.
#[test]
fn oversized_mux_frame_is_rejected_before_allocation() {
    let cfg = ServiceConfig {
        max_request_bytes: 64 << 10,
        ..Default::default()
    };
    let handle = serve(&tcp_any(), cfg).unwrap();

    let mut conn = handle
        .endpoint()
        .connect(Some(Duration::from_secs(10)))
        .unwrap();
    conn.write_all(&[lepton_server::MUX_MAGIC]).unwrap();
    // Frame header claiming a 1 GiB payload.
    let mut header = Vec::new();
    header.extend_from_slice(&7u32.to_le_bytes());
    header.push(b'C');
    header.extend_from_slice(&(1u32 << 30).to_le_bytes());
    conn.write_all(&header).unwrap();
    conn.flush().unwrap();

    let frame = lepton_server::protocol::read_frame(&mut conn, usize::MAX)
        .unwrap()
        .expect("a response frame");
    assert_eq!(
        frame.id,
        u32::MAX,
        "protocol failures answer on the reserved id"
    );
    assert_eq!(Status::from_wire(frame.byte), Some(Status::TooLarge));
    handle.shutdown();
}
