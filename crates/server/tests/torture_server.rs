//! Torture rig over the conversion service's socket surface: every
//! mutated or hostile payload must come back as a clean protocol-level
//! refusal (a §6.2 exit-code row, or a protocol status) — the service
//! never dies, never hangs, and never serves wrong bytes.

use lepton_core::{CompressOptions, ExitCode, ResourceBudget};
use lepton_corpus::builder::{clean_jpeg, CorpusSpec};
use lepton_corpus::{hostile_cases, mutation_matrix, rig::RigCase};
use lepton_server::{client, serve, ClientError, Endpoint, ServiceConfig, Status};
use lepton_storage::blockstore::{ShardedStore, StoreConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(60);

fn spec() -> CorpusSpec {
    CorpusSpec {
        min_dim: 48,
        max_dim: 112,
        ..Default::default()
    }
}

fn tcp_any() -> Endpoint {
    Endpoint::tcp("127.0.0.1:0").unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("lepton-srv-torture-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn torture_cases() -> Vec<RigCase> {
    let bases: Vec<(String, Vec<u8>)> = (0..2)
        .map(|i| (format!("jpeg{i}"), clean_jpeg(&spec(), 0x5E4E ^ i)))
        .collect();
    let named: Vec<(&str, Vec<u8>)> = bases.iter().map(|(n, d)| (n.as_str(), d.clone())).collect();
    let mut cases = mutation_matrix(&named, &[0xF00D]);
    cases.extend(hostile_cases());
    cases
}

/// A refusal a hostile payload is allowed to earn. Timeouts, transport
/// resets, or anything else mean the service choked — a violation.
fn acceptable_refusal(label: &str, err: &ClientError) {
    match err {
        ClientError::Refused(Status::Rejected(code)) => assert!(
            !code.is_operational(),
            "{label}: input refused onto operational row {code:?}"
        ),
        ClientError::Refused(_) => {}
        other => panic!("{label}: service choked instead of refusing: {other:?}"),
    }
}

#[test]
fn compress_op_survives_the_matrix() {
    let handle = serve(&tcp_any(), ServiceConfig::default()).unwrap();
    let mut accepted = 0usize;
    for case in torture_cases() {
        match client::compress(handle.endpoint(), &case.input, TIMEOUT) {
            Ok(lepton) => {
                // Anything the server admits must decompress back to
                // the exact bytes we sent — through the same server.
                let back = client::decompress(handle.endpoint(), &lepton, TIMEOUT).unwrap();
                assert_eq!(back, case.input, "{}: wrong bytes", case.label);
                accepted += 1;
            }
            Err(e) => acceptable_refusal(&case.label, &e),
        }
    }
    assert!(accepted >= 2, "pristine bases must be served");
    // The service is still healthy after the whole matrix.
    client::ping(handle.endpoint(), TIMEOUT).unwrap();
    handle.shutdown();
}

#[test]
fn decompress_op_survives_mutated_containers() {
    let handle = serve(&tcp_any(), ServiceConfig::default()).unwrap();
    let jpeg = clean_jpeg(&spec(), 0xDE);
    let container = client::compress(handle.endpoint(), &jpeg, TIMEOUT).unwrap();
    let cases = mutation_matrix(&[("container", container)], &[0xF00D, 0xBEEF]);
    for case in &cases {
        match client::decompress(handle.endpoint(), &case.input, TIMEOUT) {
            // A mutated container that still parses may decode; the
            // pristine case must give back the original.
            Ok(bytes) => {
                if case.label.ends_with("pristine") {
                    assert_eq!(bytes, jpeg);
                }
            }
            Err(e) => acceptable_refusal(&case.label, &e),
        }
    }
    client::ping(handle.endpoint(), TIMEOUT).unwrap();
    handle.shutdown();
}

#[test]
fn block_ops_survive_the_matrix_and_never_lose_bytes() {
    let root = temp_dir("blocks");
    let store = Arc::new(ShardedStore::open(&root, StoreConfig::default()).unwrap());
    let cfg = ServiceConfig {
        blockstore: Some(store),
        ..Default::default()
    };
    let handle = serve(&tcp_any(), cfg).unwrap();
    for case in torture_cases() {
        // BlockPut takes arbitrary content (hostile JPEGs just land
        // raw); whatever went in must come back byte-exact.
        let key = client::block_put(handle.endpoint(), &case.input, TIMEOUT)
            .unwrap_or_else(|e| panic!("{}: BlockPut refused content: {e:?}", case.label));
        let back = client::block_get(handle.endpoint(), &key, TIMEOUT)
            .unwrap_or_else(|e| panic!("{}: BlockGet failed: {e:?}", case.label));
        assert_eq!(
            back.as_deref(),
            Some(case.input.as_slice()),
            "{}: wrong bytes from store",
            case.label
        );
    }
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn budget_starved_block_get_is_rejected_with_the_decode_row() {
    let root = temp_dir("budget");
    // Admit one block as Lepton under the default budget.
    {
        let store = ShardedStore::open(&root, StoreConfig::default()).unwrap();
        store.put(&clean_jpeg(&spec(), 0xB1)).unwrap();
    }
    // Serve the same store through a handle whose decode budget cannot
    // fit any decode: BlockGet must answer Rejected(MemDecodeLimit),
    // and the record must not be quarantined by the refusal.
    let starved = Arc::new(
        ShardedStore::open(
            &root,
            StoreConfig {
                cache_bytes: 0,
                compress: CompressOptions {
                    budget: ResourceBudget {
                        decode_bytes: 1 << 10,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let key = starved.keys().unwrap()[0];
    let cfg = ServiceConfig {
        blockstore: Some(starved.clone()),
        ..Default::default()
    };
    let handle = serve(&tcp_any(), cfg).unwrap();
    match client::block_get(handle.endpoint(), &key, TIMEOUT) {
        Err(ClientError::Refused(Status::Rejected(code))) => {
            assert_eq!(code, ExitCode::MemDecodeLimit)
        }
        other => panic!("expected Rejected(MemDecodeLimit), got {other:?}"),
    }
    handle.shutdown();
    drop(starved);
    // The refusal is policy, not damage: a normally-budgeted handle
    // still finds the record healthy and serves it.
    let reader = ShardedStore::open(&root, StoreConfig::default()).unwrap();
    assert!(
        reader.check_block(&key).unwrap(),
        "budget refusal must not quarantine a healthy record"
    );
    assert!(reader.get(&key).unwrap().is_some());
    let _ = std::fs::remove_dir_all(&root);
}
