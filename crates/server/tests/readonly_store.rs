//! The read-only latch, observed from a client: an ENOSPC on the write
//! path flips the store read-only, after which the server sheds writes
//! with the typed transient [`Status::ReadOnly`], keeps serving reads,
//! and carries the degraded-health flag (plus the `store.readonly`
//! gauge) on the `Stats` v2 wire.

use lepton_server::client::{self, ClientError};
use lepton_server::{serve, Endpoint, ServiceConfig, Status};
use lepton_storage::blockstore::{ShardedStore, StoreConfig};
use lepton_storage::vfs::{FaultConfig, FaultKind, FaultVfs, Vfs};
use std::sync::Arc;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(60);

#[test]
fn enospc_sheds_writes_serves_reads_and_degrades_stats() {
    let vfs = FaultVfs::new(FaultConfig::default());
    let store = Arc::new(
        ShardedStore::open_on(
            vfs.clone() as Arc<dyn Vfs>,
            "/store",
            StoreConfig {
                shards: 2,
                cache_bytes: 0,
                compress_on_write: false,
                ..StoreConfig::default()
            },
        )
        .unwrap(),
    );
    let handle = serve(
        &Endpoint::tcp("127.0.0.1:0").unwrap(),
        ServiceConfig {
            blockstore: Some(Arc::clone(&store)),
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let ep = handle.endpoint();

    // Healthy first: a put lands and reads back.
    let before = b"written while the disk had room".to_vec();
    let key = client::block_put(ep, &before, TIMEOUT).unwrap();
    assert_eq!(
        client::block_get(ep, &key, TIMEOUT).unwrap().unwrap(),
        before
    );
    assert!(!handle.degraded(), "healthy store must not read degraded");

    // The disk fills: the next mutating filesystem op returns ENOSPC,
    // which must latch the store rather than half-write.
    vfs.inject_next(FaultKind::Enospc);
    let err = client::block_put(ep, b"no room for this one", TIMEOUT).unwrap_err();
    match err {
        ClientError::Refused(Status::ReadOnly) => {}
        other => panic!("expected the typed read-only shed, got {other:?}"),
    }
    assert!(
        err.is_transient(),
        "a read-only shed invites retry elsewhere"
    );
    assert!(store.is_read_only());

    // Subsequent writes shed the same way — the latch holds without
    // any further injection.
    match client::block_put(ep, b"still no room", TIMEOUT).unwrap_err() {
        ClientError::Refused(Status::ReadOnly) => {}
        other => panic!("latched store must keep shedding, got {other:?}"),
    }

    // Reads keep serving through the latch, byte-exact.
    assert_eq!(
        client::block_get(ep, &key, TIMEOUT).unwrap().unwrap(),
        before
    );

    // The degraded flag and the readonly gauge ride the Stats v2 wire.
    let snap = client::probe_snapshot(ep, TIMEOUT).unwrap();
    assert!(snap.degraded(), "read-only latch must degrade health");
    assert_eq!(snap.gauge("store.readonly"), 1, "gauge must be exported");
    assert!(handle.degraded(), "handle view agrees with the wire view");

    handle.shutdown();
}
