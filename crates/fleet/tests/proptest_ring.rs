//! Property tests for the consistent-hash ring: placement must be
//! deterministic and balanced, and membership changes must move only
//! ~K/N of the keys — the whole point of consistent hashing is that a
//! topology change is an incremental event, not a reshuffle.

use lepton_fleet::Ring;
use lepton_storage::sha256::{sha256, Digest};
use proptest::prelude::*;

const KEYS: usize = 1000;

fn keys(salt: u64) -> Vec<Digest> {
    (0..KEYS as u64)
        .map(|i| sha256(format!("block-{salt}-{i}").as_bytes()))
        .collect()
}

fn names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("node-{i:03}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Two rings built from the same membership, vnodes, and seed
    /// agree on every replica set — gateway instances coordinate
    /// through configuration alone.
    #[test]
    fn placement_is_deterministic(
        nodes in 2usize..9,
        seed in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let a = Ring::new(names(nodes), 64, seed);
        let b = Ring::new(names(nodes), 64, seed);
        for k in keys(salt) {
            prop_assert_eq!(a.replica_set(&k, 2), b.replica_set(&k, 2));
        }
    }

    /// With 128 vnodes, primary placement over 1k keys is balanced
    /// within a stated bound: no node holds more than twice the fair
    /// share, none less than a quarter of it.
    #[test]
    fn placement_is_balanced(
        nodes in 2usize..7,
        seed in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let ring = Ring::new(names(nodes), 128, seed);
        let mut counts = vec![0usize; nodes];
        for k in keys(salt) {
            counts[ring.primary(&k).expect("non-empty ring")] += 1;
        }
        let fair = KEYS as f64 / nodes as f64;
        for (i, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64) < fair * 2.0,
                "node {i} holds {c} of {KEYS} keys (fair {fair:.0}) — hot spot"
            );
            prop_assert!(
                (c as f64) > fair * 0.25,
                "node {i} holds {c} of {KEYS} keys (fair {fair:.0}) — starved"
            );
        }
    }

    /// Adding one node moves only ~K/(N+1) primaries (we allow 2.5x
    /// slack for vnode placement noise), and every key that moved,
    /// moved *to the new node* — existing nodes never trade keys among
    /// themselves on a join.
    #[test]
    fn adding_a_node_moves_about_k_over_n(
        nodes in 2usize..7,
        seed in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let old = Ring::new(names(nodes), 128, seed);
        let new = old.with_nodes(names(nodes + 1));
        let ks = keys(salt);
        let mut moved = 0usize;
        for k in &ks {
            let before = old.replica_names(k, 1);
            let after = new.replica_names(k, 1);
            if before != after {
                moved += 1;
                prop_assert_eq!(
                    after[0],
                    format!("node-{:03}", nodes).as_str(),
                    "a moved key must land on the joining node"
                );
            }
        }
        let ideal = KEYS as f64 / (nodes + 1) as f64;
        prop_assert!(moved > 0, "the new node took nothing");
        prop_assert!(
            (moved as f64) < ideal * 2.5,
            "moved {moved} of {KEYS} keys for 1 join (ideal {ideal:.0}) — reshuffle"
        );
    }

    /// Removing one node disturbs exactly the keys whose replica set
    /// contained it: everyone else's replica set is untouched.
    #[test]
    fn removing_a_node_only_disturbs_its_keys(
        nodes in 3usize..8,
        seed in any::<u64>(),
        salt in any::<u64>(),
    ) {
        let old = Ring::new(names(nodes), 128, seed);
        let survivors: Vec<String> = names(nodes - 1);
        let gone = format!("node-{:03}", nodes - 1);
        let new = old.with_nodes(survivors);
        for k in keys(salt) {
            let before = old.replica_names(&k, 2);
            let after = new.replica_names(&k, 2);
            if before.contains(&gone.as_str()) {
                // The survivor of the old pair must still be in the
                // new set — only the lost copy is re-homed.
                for name in before.iter().filter(|n| **n != gone) {
                    prop_assert!(
                        after.contains(name),
                        "surviving replica {name} evicted by an unrelated removal"
                    );
                }
            } else {
                prop_assert_eq!(before, after, "untouched key moved on node removal");
            }
        }
    }
}
