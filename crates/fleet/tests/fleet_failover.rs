//! End-to-end fleet behavior over real sockets: a 3-node, R=2 fleet
//! must survive the death of one node (every block written before the
//! kill stays readable through the gateway), read-repair must restore
//! damaged and missing copies onto healthy nodes, and a rebalance
//! after the topology change must re-establish full replication.

use lepton_corpus::builder::{clean_jpeg, CorpusSpec};
use lepton_fleet::{rebalance, FleetConfig, FleetGateway, HealthPolicy, LocalFleet};
use lepton_server::client::RetryPolicy;
use lepton_server::ServiceConfig;
use lepton_storage::blockstore::{hex, StoreConfig};
use lepton_storage::sha256::Digest;
use std::path::PathBuf;
use std::time::Duration;

fn temp_root(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("lepton-fleet-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn payloads() -> Vec<Vec<u8>> {
    let spec = CorpusSpec {
        min_dim: 48,
        max_dim: 96,
        ..Default::default()
    };
    let mut out: Vec<Vec<u8>> = (0..3u64).map(|s| clean_jpeg(&spec, s)).collect();
    for i in 0..5u64 {
        out.push(
            format!("incompressible-ish blob {i} ")
                .into_bytes()
                .repeat(40 + i as usize * 17),
        );
    }
    out
}

fn fleet_cfg() -> FleetConfig {
    FleetConfig {
        replicas: 2,
        timeout: Duration::from_secs(30),
        retry: RetryPolicy {
            attempts: 2,
            initial_backoff: Duration::from_millis(5),
            multiplier: 2,
            max_backoff: Duration::from_millis(20),
            jitter: Some(0xFA11),
        },
        health: HealthPolicy {
            eject_after: 2,
            // Long enough that a test never sees a surprise re-probe.
            probation: Duration::from_secs(120),
        },
        ..Default::default()
    }
}

/// Copies of `key` across the fleet's live stores.
fn live_copies(fleet: &LocalFleet, key: &Digest) -> usize {
    (0..fleet.members().len())
        .filter(|&i| fleet.is_alive(i) && fleet.store(i).contains(key))
        .count()
}

#[test]
fn three_node_fleet_survives_one_death_and_rebalances() {
    let root = temp_root("kill");
    let mut fleet = LocalFleet::spawn(
        &root,
        3,
        &StoreConfig {
            shards: 4,
            ..Default::default()
        },
        &ServiceConfig::default(),
    )
    .unwrap();
    let gw = FleetGateway::new(fleet.members().to_vec(), fleet_cfg());

    // Write the corpus through the gateway; every block must land on
    // exactly R=2 of the 3 nodes.
    let blocks = payloads();
    let keys: Vec<Digest> = blocks.iter().map(|b| gw.put(b).unwrap()).collect();
    assert_eq!(gw.metrics.partial_writes.get(), 0);
    for key in &keys {
        assert_eq!(live_copies(&fleet, key), 2, "block {}", hex(key));
    }

    // Kill node 0. Every block written before the kill must still be
    // readable through the gateway — blocks with a replica on node 0
    // fail over to the surviving copy.
    fleet.kill(0);
    for (key, expect) in keys.iter().zip(&blocks) {
        let got = gw.get(key).unwrap().expect("block readable after kill");
        assert_eq!(&got, expect, "byte-exact through failover");
    }
    let dead_primaries = keys.iter().filter(|k| gw.replica_set(k)[0] == 0).count();
    assert!(dead_primaries > 0, "seed luck: node 0 owned nothing");
    // Failovers are counted only while the dead node is still being
    // *attempted*; after `eject_after` failures it is skipped, which
    // is routing, not failover.
    let failovers = gw.metrics.failovers.get();
    let expected = dead_primaries.min(fleet_cfg().health.eject_after as usize) as u64;
    assert_eq!(
        failovers, expected,
        "{dead_primaries} dead-primary keys, eject_after 2"
    );
    // Two consecutive failures eject the dead node; later reads skip
    // it without paying the connect error.
    assert!(gw.metrics.ejections.get() >= 1);
    assert!(gw.nodes()[0].health().ejected);

    // Writes keep working against the degraded fleet; ones whose
    // replica set includes the dead node are counted partial.
    let extra = b"written while one node is down".to_vec();
    let extra_key = gw.put(&extra).unwrap();
    assert_eq!(gw.get(&extra_key).unwrap().unwrap(), extra);

    // Topology change: a gateway over the two survivors. The ring
    // gives every block both surviving nodes as its replica set, and
    // the rebalance driver streams exactly the missing copies.
    let survivors: Vec<_> = fleet.members()[1..].to_vec();
    let gw2 = FleetGateway::new(survivors, fleet_cfg());
    let report = rebalance(&gw2);
    assert!(report.clean(), "{report:?}");
    assert_eq!(report.keys as usize, keys.len() + 1);
    assert!(report.blocks_moved > 0, "someone must have been missing");
    for key in keys.iter().chain([&extra_key]) {
        assert_eq!(
            live_copies(&fleet, key),
            2,
            "block {} not re-replicated",
            hex(key)
        );
    }
    // A second pass finds nothing to do — the driver is idempotent.
    let again = rebalance(&gw2);
    assert_eq!(again.blocks_moved, 0, "{again:?}");

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn damaged_replica_is_read_repaired_onto_the_healthy_node() {
    let root = temp_root("repair");
    let fleet = LocalFleet::spawn(
        &root,
        3,
        &StoreConfig {
            shards: 4,
            ..Default::default()
        },
        &ServiceConfig::default(),
    )
    .unwrap();
    let gw = FleetGateway::new(fleet.members().to_vec(), fleet_cfg());

    let block = b"a block whose primary copy is about to rot".to_vec();
    let key = gw.put(&block).unwrap();
    let members = gw.replica_set(&key);

    // Damage the primary's on-disk record.
    let primary_store = fleet.store(members[0]);
    let path = (0..primary_store.shard_count())
        .map(|i| {
            primary_store
                .root()
                .join(format!("shard-{i:03}"))
                .join(hex(&key))
        })
        .find(|p| p.exists())
        .expect("record on disk");
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x20;
    std::fs::write(&path, &bytes).unwrap();
    let scrub = primary_store.scrub(1).unwrap();
    assert_eq!(scrub.corrupt, 1, "the damage is real");

    // The gateway serves the true bytes from the replica, and the
    // primary's copy is repaired in-line (the server quarantined the
    // damaged record, so the repair put landed).
    let got = gw.get(&key).unwrap().expect("present");
    assert_eq!(got, block, "corruption must not exit the gateway");
    assert_eq!(gw.metrics.failovers.get(), 1);
    assert_eq!(gw.metrics.read_repairs.get(), 1);
    assert_eq!(
        primary_store.get(&key).unwrap().as_deref(),
        Some(block.as_slice()),
        "primary's copy restored"
    );
    assert_eq!(primary_store.scrub(1).unwrap().corrupt, 0, "store healed");

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn missing_copy_from_partial_write_is_read_repaired() {
    let root = temp_root("partial");
    let mut fleet = LocalFleet::spawn(
        &root,
        3,
        &StoreConfig {
            shards: 4,
            ..Default::default()
        },
        &ServiceConfig::default(),
    )
    .unwrap();
    let gw = FleetGateway::new(fleet.members().to_vec(), fleet_cfg());

    // Kill the *primary* of this block's replica set, then write it:
    // the put acks on the secondary only (a partial write).
    let block = (0..200u64)
        .map(|i| format!("partial-write probe {i};"))
        .collect::<String>()
        .into_bytes();
    let key = lepton_storage::sha256::sha256(&block);
    let members = gw.replica_set(&key);
    fleet.kill(members[0]);
    assert_eq!(gw.put(&block).unwrap(), key);
    assert_eq!(gw.metrics.partial_writes.get(), 1);
    assert_eq!(live_copies(&fleet, &key), 1);

    // Revive the fleet: fresh services over the same store
    // directories. The primary is back but *empty* for this block; a
    // read starts there, sees "missing", fails over to the secondary,
    // and repairs the hole it observed on the way.
    drop(fleet);
    let fleet2 = LocalFleet::spawn(
        &root,
        3,
        &StoreConfig {
            shards: 4,
            ..Default::default()
        },
        &ServiceConfig::default(),
    )
    .unwrap();
    let gw2 = FleetGateway::new(fleet2.members().to_vec(), fleet_cfg());
    let got = gw2.get(&key).unwrap().expect("present");
    assert_eq!(got, block);
    // Whichever order the replicas answered, the missing copy is now
    // restored: both members of the set hold it.
    assert_eq!(
        gw2.metrics.read_repairs.get(),
        1,
        "the empty secondary was repaired in-line"
    );
    assert_eq!(live_copies(&fleet2, &key), 2);

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn hedged_read_beats_a_slow_replica_without_charging_it() {
    let root = temp_root("hedge");
    let fleet = LocalFleet::spawn(
        &root,
        3,
        &StoreConfig {
            shards: 4,
            ..Default::default()
        },
        &ServiceConfig::default(),
    )
    .unwrap();
    let cfg = FleetConfig {
        hedge: Some(Duration::from_millis(50)),
        ..fleet_cfg()
    };
    let gw = FleetGateway::new(fleet.members().to_vec(), cfg);

    let block = payloads().pop().unwrap();
    let key = gw.put(&block).unwrap();
    // Turn this key's primary into the degraded-host regime: up,
    // answering, slow. A serial read would eat the whole delay.
    let primary = gw.replica_set(&key)[0];
    fleet.inject_delay(primary, Duration::from_secs(2));

    let t0 = std::time::Instant::now();
    let got = gw.get(&key).unwrap().expect("present");
    let elapsed = t0.elapsed();
    assert_eq!(got, block);
    assert!(
        elapsed < Duration::from_secs(1),
        "hedge must beat the slow primary, took {elapsed:?}"
    );

    assert_eq!(gw.metrics.hedged_reads.get(), 1);
    assert_eq!(gw.metrics.hedge_wins.get(), 1);
    assert_eq!(
        gw.metrics.hedge_cancellations.get(),
        1,
        "the abandoned primary attempt is counted"
    );
    // The loser never completed, so nothing failed: no failover, no
    // health strike, and certainly no ejection for merely being slow.
    assert_eq!(gw.metrics.failovers.get(), 0);
    assert_eq!(gw.metrics.read_repairs.get(), 0);
    let snap = gw.nodes()[primary].health();
    assert!(!snap.ejected);
    assert_eq!(snap.consecutive_failures, 0);

    // With the delay lifted, hedged reads stay quiet: the primary
    // answers within budget and no extra hedge fires.
    fleet.inject_delay(primary, Duration::ZERO);
    let got = gw.get(&key).unwrap().expect("present");
    assert_eq!(got, block);
    assert_eq!(gw.metrics.hedged_reads.get(), 1);

    std::fs::remove_dir_all(&root).unwrap();
}

/// Killing a replica must flip the gateway's degraded-health flag
/// within one watchdog evaluation window of attempts against it — the
/// §6 anomaly-detection requirement, observed end to end.
#[test]
fn dead_replica_flips_degraded_within_one_window() {
    let root = temp_root("degraded");
    let mut fleet = LocalFleet::spawn(
        &root,
        3,
        &StoreConfig {
            shards: 4,
            ..Default::default()
        },
        &ServiceConfig::default(),
    )
    .unwrap();
    let cfg = FleetConfig {
        // Keep attempting the dead node (no ejection) so the watchdog
        // sees a sustained ~50% attempt-error rate, and evaluate on a
        // short 4-event window so one burst of reads is decisive.
        health: HealthPolicy {
            eject_after: 1000,
            probation: Duration::from_secs(120),
        },
        // Serial reads fail over primary-first, so only dead-*primary*
        // keys produce attempt errors (~1/3 of the corpus): alarm on
        // any error in a short window rather than the default 25%.
        watchdog: lepton_obs::WatchdogConfig {
            window: 4,
            error_threshold: 0.2,
            ..Default::default()
        },
        ..fleet_cfg()
    };
    let gw = FleetGateway::new(fleet.members().to_vec(), cfg);

    let blocks = payloads();
    let keys: Vec<Digest> = blocks.iter().map(|b| gw.put(b).unwrap()).collect();
    assert!(!gw.degraded(), "healthy fleet must not report degraded");

    fleet.kill(0);
    // Reads after the kill: every key whose primary is node 0 yields
    // a failed attempt before failing over. Two passes over the
    // corpus guarantee whole windows full of post-kill events.
    for _ in 0..2 {
        for (key, expect) in keys.iter().zip(&blocks) {
            let got = gw.get(key).unwrap().expect("block readable after kill");
            assert_eq!(&got, expect);
        }
    }
    assert!(
        gw.degraded(),
        "dead replica must latch degraded: {} evaluations, {} trips",
        gw.watchdog().evaluations(),
        gw.watchdog().trips()
    );
    // The flag rides the published snapshot like any other metric.
    let snap = gw.snapshot();
    assert!(snap.degraded());
    assert_eq!(snap.gauge("health.degraded"), 1);

    std::fs::remove_dir_all(&root).unwrap();
}
