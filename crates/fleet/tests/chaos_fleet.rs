//! The fleet chaos tier: replicated durability under node crashes.
//!
//! Three nodes, R=2, every node's store on its own seeded [`FaultVfs`].
//! Mid-batch, one node's power is cut (disk gone under a live service —
//! the nastiest case), then the node is killed, rebooted, and restarted
//! (which reopens its store and runs the startup recovery sweep). The
//! contract:
//!
//! * every gateway-acked put stays readable byte-exact through the
//!   outage (single-node crash never loses an acked write);
//! * one rebalance pass after the restart restores full R=2
//!   replication;
//! * the restarted node comes back clean — no orphaned tmps, no torn
//!   records surviving recovery.
//!
//! Quick mode sweeps one victim; `CHAOS_FULL=1` sweeps every node and
//! a bigger batch.

use lepton_fleet::{rebalance, FleetConfig, FleetGateway, HealthPolicy, LocalFleet};
use lepton_server::client::RetryPolicy;
use lepton_server::ServiceConfig;
use lepton_storage::blockstore::{hex, StoreConfig};
use lepton_storage::sha256::Digest;
use lepton_storage::vfs::{FaultConfig, FaultVfs, Vfs};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn full() -> bool {
    std::env::var("CHAOS_FULL").is_ok_and(|v| v == "1")
}

fn temp_root(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("lepton-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn fleet_cfg() -> FleetConfig {
    FleetConfig {
        replicas: 2,
        timeout: Duration::from_secs(30),
        retry: RetryPolicy {
            attempts: 2,
            initial_backoff: Duration::from_millis(5),
            multiplier: 2,
            max_backoff: Duration::from_millis(20),
            jitter: Some(0xC405),
        },
        health: HealthPolicy {
            eject_after: 2,
            probation: Duration::from_secs(120),
        },
        ..Default::default()
    }
}

fn store_cfg() -> StoreConfig {
    StoreConfig {
        shards: 2,
        cache_bytes: 0,
        compress_on_write: false,
        ..StoreConfig::default()
    }
}

fn blobs(seed: u64, n: usize) -> Vec<Vec<u8>> {
    let mut z = seed | 1;
    (0..n)
        .map(|i| {
            let len = 80 + ((z >> 9) % 1200) as usize;
            (0..len)
                .map(|_| {
                    z = z
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64 + 1);
                    (z >> 33) as u8
                })
                .collect()
        })
        .collect()
}

fn live_copies(fleet: &LocalFleet, key: &Digest) -> usize {
    (0..fleet.members().len())
        .filter(|&i| fleet.is_alive(i) && fleet.store(i).contains(key))
        .count()
}

#[test]
fn acked_puts_survive_single_node_crash_and_one_rebalance_restores_r2() {
    let victims: Vec<usize> = if full() { vec![0, 1, 2] } else { vec![1] };
    let batch = if full() { 24 } else { 10 };

    for victim in victims {
        let root = temp_root(&format!("v{victim}"));
        let node_vfs: Vec<Arc<FaultVfs>> = (0..3)
            .map(|i| FaultVfs::new(FaultConfig::crash_only(0xF1EE7 + i as u64, u64::MAX)))
            .collect();
        let mut fleet =
            LocalFleet::spawn_on(&root, 3, &store_cfg(), &ServiceConfig::default(), |i| {
                node_vfs[i].clone() as Arc<dyn Vfs>
            })
            .unwrap();
        let gw = FleetGateway::new(fleet.members().to_vec(), fleet_cfg());

        let data = blobs(0xB10C ^ victim as u64, batch);
        let mut acked: Vec<(Digest, Vec<u8>)> = Vec::new();

        // First half lands on a healthy fleet.
        for blob in &data[..batch / 2] {
            let key = gw.put(blob).expect("healthy fleet must ack");
            acked.push((key, blob.clone()));
        }
        for (key, _) in &acked {
            assert_eq!(live_copies(&fleet, key), 2, "block {}", hex(key));
        }

        // Power cut mid-batch: the victim's disk vanishes under its
        // still-running service, then the node dies outright. Puts
        // continue against the degraded fleet; whatever the gateway
        // acks, it owes durably.
        node_vfs[victim].power_cut();
        for (i, blob) in data[batch / 2..].iter().enumerate() {
            if i == 2 {
                fleet.kill(victim);
            }
            match gw.put(blob) {
                Ok(key) => acked.push((key, blob.clone())),
                Err(e) => panic!("one dead node must not fail a put: {e:?}"),
            }
        }

        // Every acked put is readable byte-exact through the outage.
        for (key, expect) in &acked {
            let got = gw
                .get(key)
                .expect("gateway read during outage")
                .expect("acked block present during outage");
            assert_eq!(&got, expect, "byte-exact through failover");
        }

        // Reboot and restart the victim: its store reopens through the
        // startup recovery sweep, on a fresh endpoint.
        node_vfs[victim].reboot();
        fleet
            .restart(victim)
            .expect("crashed node must recover on restart");
        let report = fleet.store(victim).recover(false).unwrap();
        assert_eq!(report.orphans_found, 0, "startup sweep missed tmps");
        assert_eq!(report.torn_found, 0, "startup sweep missed torn records");

        // One rebalance pass over the restarted topology restores R=2
        // for every acked block.
        let gw2 = FleetGateway::new(fleet.members().to_vec(), fleet_cfg());
        let report = rebalance(&gw2);
        assert!(report.clean(), "{report:?}");
        for (key, expect) in &acked {
            assert_eq!(
                live_copies(&fleet, key),
                2,
                "block {} not re-replicated",
                hex(key)
            );
            let got = gw2
                .get(key)
                .unwrap()
                .expect("block readable after recovery");
            assert_eq!(&got, expect, "byte-exact after restart + rebalance");
        }
        // Idempotence: a second pass finds nothing to move.
        assert_eq!(rebalance(&gw2).blocks_moved, 0);

        std::fs::remove_dir_all(&root).unwrap();
    }
}
