//! Torture rig over the fleet gateway: mutated and hostile content
//! through `put`/`get` across a live replicated fleet. The gateway
//! inherits the blockstore contract — arbitrary content is stored
//! (hostile JPEGs land raw on the member stores), and reads return the
//! exact original bytes or a typed `FleetError` — never wrong bytes,
//! never a dead node process from a poisoned payload.

use lepton_corpus::builder::{clean_jpeg, CorpusSpec};
use lepton_corpus::{hostile_cases, mutation_matrix, rig::RigCase};
use lepton_fleet::{FleetConfig, FleetGateway, LocalFleet};
use lepton_server::ServiceConfig;
use lepton_storage::blockstore::StoreConfig;
use std::path::PathBuf;
use std::time::Duration;

fn temp_root(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("lepton-fleet-torture-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn torture_cases() -> Vec<RigCase> {
    let spec = CorpusSpec {
        min_dim: 48,
        max_dim: 96,
        ..Default::default()
    };
    let bases: Vec<(String, Vec<u8>)> = (0..2)
        .map(|i| (format!("jpeg{i}"), clean_jpeg(&spec, 0xF1EE7 ^ i)))
        .collect();
    let named: Vec<(&str, Vec<u8>)> = bases.iter().map(|(n, d)| (n.as_str(), d.clone())).collect();
    let mut cases = mutation_matrix(&named, &[0xF00D]);
    cases.extend(hostile_cases());
    cases
}

#[test]
fn gateway_put_get_survives_the_matrix() {
    let root = temp_root("matrix");
    let fleet = LocalFleet::spawn(
        &root,
        3,
        &StoreConfig {
            shards: 4,
            ..Default::default()
        },
        &ServiceConfig::default(),
    )
    .unwrap();
    let gw = FleetGateway::new(
        fleet.members().to_vec(),
        FleetConfig {
            replicas: 2,
            timeout: Duration::from_secs(30),
            ..Default::default()
        },
    );

    for case in torture_cases() {
        let key = gw
            .put(&case.input)
            .unwrap_or_else(|e| panic!("{}: fleet put refused content: {e:?}", case.label));
        let got = gw
            .get(&key)
            .unwrap_or_else(|e| panic!("{}: fleet get failed: {e:?}", case.label))
            .unwrap_or_else(|| panic!("{}: block vanished", case.label));
        assert_eq!(got, case.input, "{}: wrong bytes through fleet", case.label);
    }
    assert_eq!(
        gw.metrics.partial_writes.get(),
        0,
        "hostile content must not degrade replication"
    );
    // Every node survived the full matrix.
    for i in 0..3 {
        assert!(fleet.is_alive(i), "node {i} died during the torture run");
    }
    let _ = std::fs::remove_dir_all(&root);
}
