//! The rebalance driver: make at-rest placement match the ring.
//!
//! After a topology change (node added, node replaced), some blocks'
//! replica sets differ from where their copies physically sit. The
//! driver walks every reachable node's block list, computes each
//! block's *current* replica set on the gateway's ring, and streams
//! exactly the copies that are missing from their owners — blocks
//! whose replica set did not change are never touched, so the work is
//! ~`K·R/N` block transfers per node added, not a reshuffle. The same
//! pass doubles as anti-entropy: copies lost to partial writes or
//! quarantined damage are restored from a surviving replica.
//!
//! Copies on nodes that are *no longer* in a block's replica set are
//! left in place deliberately: they are a safety net until the new
//! owners confirm their copies, and a separate garbage-collection
//! sweep (future work) can reclaim them with the replica sets as the
//! authority.

use crate::gateway::FleetGateway;
use lepton_storage::sha256::Digest;
use std::collections::BTreeMap;
use std::time::Instant;

/// Outcome of one rebalance pass.
#[derive(Clone, Debug, Default)]
pub struct RebalanceReport {
    /// Distinct blocks seen across the fleet.
    pub keys: u64,
    /// Copies streamed onto new owners.
    pub blocks_moved: u64,
    /// Logical bytes streamed.
    pub bytes_moved: u64,
    /// Copies that could not be placed (all sources or the target
    /// failed); re-run the pass after the fleet heals.
    pub failed: u64,
    /// Nodes whose block list could not be read — their copies are
    /// invisible to this pass.
    pub unreachable_nodes: u64,
    /// Wall-clock seconds for the pass.
    pub secs: f64,
}

impl RebalanceReport {
    /// Did the pass complete with full visibility and no failures?
    pub fn clean(&self) -> bool {
        self.failed == 0 && self.unreachable_nodes == 0
    }
}

/// Run one rebalance pass over `gateway`'s current topology.
pub fn rebalance(gateway: &FleetGateway) -> RebalanceReport {
    let t0 = Instant::now();
    let mut report = RebalanceReport::default();

    // Who holds what, by listing every node. BTreeMap keeps the walk
    // deterministic for a given fleet state.
    let mut holders: BTreeMap<Digest, Vec<usize>> = BTreeMap::new();
    for idx in 0..gateway.nodes().len() {
        match gateway.list_node(idx) {
            Ok(keys) => {
                for key in keys {
                    holders.entry(key).or_default().push(idx);
                }
            }
            Err(_) => report.unreachable_nodes += 1,
        }
    }
    report.keys = holders.len() as u64;

    for (key, holding) in &holders {
        let want = gateway.replica_set(key);
        let missing: Vec<usize> = want
            .iter()
            .copied()
            .filter(|t| !holding.contains(t))
            .collect();
        if missing.is_empty() {
            continue;
        }
        // Fetch once per key, from a surviving holder (prefer one that
        // is also a current owner: it is the most likely to be healthy
        // and warm), then stream to every missing owner.
        let mut sources: Vec<usize> = holding
            .iter()
            .copied()
            .filter(|s| want.contains(s))
            .collect();
        sources.extend(holding.iter().copied().filter(|s| !want.contains(s)));
        // Re-hash before streaming: the driver must not amplify one
        // node's corruption onto fresh owners (the same gate the
        // gateway's get applies).
        let bytes = sources.into_iter().find_map(|src| {
            gateway
                .fetch_from(src, key)
                .ok()
                .flatten()
                .filter(|b| lepton_storage::sha256::sha256(b) == *key)
        });
        let Some(bytes) = bytes else {
            report.failed += missing.len() as u64;
            continue;
        };
        for target in missing {
            match gateway.put_to(target, &bytes) {
                Ok(acked) if acked == *key => {
                    report.blocks_moved += 1;
                    report.bytes_moved += bytes.len() as u64;
                }
                _ => report.failed += 1,
            }
        }
    }
    report.secs = t0.elapsed().as_secs_f64();
    report
}
