//! # lepton-fleet — N blockservers acting as one store
//!
//! The paper's Lepton never ran on one machine: it served a fleet of
//! blockservers behind load balancers, and the interesting systems
//! problems — routing (§5.5), fleet-wide backfill (§5.6), surviving
//! bad hosts (§6.6) — were fleet problems. This crate is that layer
//! for the block storage path: it makes N live conversion services
//! (each exposing the blockstore ops over the UDS/TCP wire protocol)
//! behave as a single replicated, self-healing store.
//!
//! * [`ring`] — the seeded consistent-hash ring: virtual nodes,
//!   deterministic placement by block digest, ~K/N key movement on
//!   membership change.
//! * [`health`] — per-node circuit breaker: consecutive-failure
//!   ejection, probation re-probes.
//! * [`gateway`] — [`FleetGateway`]: replicated `put` (R copies,
//!   success on primary ack, partial writes counted), failover `get`
//!   with in-line read-repair and optional hedging (race the next
//!   replica after a latency budget — the tail-taming read path the
//!   `fig10_replay` harness measures), fleet-wide `stat`.
//! * [`mod@rebalance`] — after a topology change, stream only the
//!   blocks whose replica set changed onto their new owners.
//! * [`local`] — [`LocalFleet`]: N complete nodes in one process, plus
//!   the manifest format every fleet tool shares.
//!
//! ```no_run
//! use lepton_fleet::{FleetConfig, FleetGateway, LocalFleet};
//! use lepton_server::ServiceConfig;
//! use lepton_storage::blockstore::StoreConfig;
//! use std::path::Path;
//!
//! let fleet = LocalFleet::spawn(
//!     Path::new("/tmp/fleet"),
//!     3,
//!     &StoreConfig::default(),
//!     &ServiceConfig::default(),
//! )
//! .unwrap();
//! let gw = FleetGateway::new(fleet.members().to_vec(), FleetConfig::default());
//! let key = gw.put(b"a block").unwrap(); // lands on 2 of the 3 nodes
//! assert_eq!(gw.get(&key).unwrap().unwrap(), b"a block");
//! ```

pub mod gateway;
pub mod health;
pub mod local;
pub mod rebalance;
pub mod ring;

pub use gateway::{FleetConfig, FleetError, FleetGateway, FleetMetrics, FleetStat, NodeStat};
pub use health::{HealthPolicy, HealthSnapshot, NodeHealth};
pub use local::{manifest_path, parse_manifest, read_manifest, LocalFleet};
pub use rebalance::{rebalance, RebalanceReport};
pub use ring::Ring;
