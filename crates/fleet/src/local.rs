//! Spawning and describing fleets of local blockserver nodes.
//!
//! [`LocalFleet`] runs N complete conversion services in one process —
//! each with its own [`ShardedStore`] under `root/node-NNN` and its
//! own TCP endpoint — which is how `lepton fleet serve`, the failover
//! tests, and the `fig15_fleet` harness stand up a fleet without a
//! cluster. The **manifest** (one `name endpoint` line per node) is
//! the fleet's only shared configuration: any process that can read it
//! can build an agreeing [`FleetGateway`](crate::FleetGateway).
//!
//! All codec work across every node — blockstore admission gates and
//! reads alike — runs on the process-wide `lepton_core::Engine` pool
//! (pre-spawned workers, reusable model arenas; §5.1), so an N-node
//! local fleet shares one warm set of codec threads instead of
//! spawning per request.

use lepton_server::{serve, Endpoint, ServiceConfig, ServiceHandle};
use lepton_storage::blockstore::{ShardedStore, StoreConfig};
use lepton_storage::vfs::{RealVfs, Vfs};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Conventional manifest file name inside a fleet root.
pub const MANIFEST_FILE: &str = "FLEET";

/// N in-process blockserver nodes with their own stores and sockets.
pub struct LocalFleet {
    members: Vec<(String, Endpoint)>,
    handles: Vec<Option<ServiceHandle>>,
    stores: Vec<Arc<ShardedStore>>,
    /// Per-node filesystem + config, kept so [`restart`](Self::restart)
    /// can reopen the same store the node crashed on.
    vfs: Vec<Arc<dyn Vfs>>,
    root: PathBuf,
    store_cfg: StoreConfig,
    service_cfg: ServiceConfig,
}

impl LocalFleet {
    /// Spawn `count` nodes under `root`. Each node `i` serves a store
    /// at `root/node-{i:03}` on an ephemeral local TCP port;
    /// `store_cfg` and `service_cfg` act as templates (the blockstore
    /// field of `service_cfg` is replaced per node).
    pub fn spawn(
        root: &Path,
        count: usize,
        store_cfg: &StoreConfig,
        service_cfg: &ServiceConfig,
    ) -> io::Result<LocalFleet> {
        let real: Arc<dyn Vfs> = Arc::new(RealVfs);
        Self::spawn_on(root, count, store_cfg, service_cfg, |_| Arc::clone(&real))
    }

    /// [`spawn`](Self::spawn) with a caller-chosen filesystem per node
    /// — the chaos tier hands each node its own seeded
    /// [`FaultVfs`](lepton_storage::vfs::FaultVfs) so a crash can be
    /// injected into exactly one replica.
    pub fn spawn_on(
        root: &Path,
        count: usize,
        store_cfg: &StoreConfig,
        service_cfg: &ServiceConfig,
        mut node_vfs: impl FnMut(usize) -> Arc<dyn Vfs>,
    ) -> io::Result<LocalFleet> {
        let mut members = Vec::with_capacity(count);
        let mut handles = Vec::with_capacity(count);
        let mut stores = Vec::with_capacity(count);
        let mut vfs = Vec::with_capacity(count);
        for i in 0..count {
            let name = node_name(i);
            let node_fs = node_vfs(i);
            let store = Arc::new(ShardedStore::open_on(
                Arc::clone(&node_fs),
                root.join(&name),
                store_cfg.clone(),
            )?);
            let cfg = ServiceConfig {
                blockstore: Some(Arc::clone(&store)),
                ..service_cfg.clone()
            };
            let handle = serve(&Endpoint::tcp("127.0.0.1:0")?, cfg)?;
            members.push((name, handle.endpoint().clone()));
            handles.push(Some(handle));
            stores.push(store);
            vfs.push(node_fs);
        }
        Ok(LocalFleet {
            members,
            handles,
            stores,
            vfs,
            root: root.to_path_buf(),
            store_cfg: store_cfg.clone(),
            service_cfg: service_cfg.clone(),
        })
    }

    /// Restart a killed node: reopen its store on the node's own
    /// filesystem — which runs the startup recovery sweep, exactly as
    /// a rebooted machine would — and serve it on a fresh ephemeral
    /// endpoint. The member list is updated in place; callers holding
    /// a gateway must rebuild it from [`members`](Self::members) (a
    /// real redeploy republishes the manifest the same way).
    pub fn restart(&mut self, idx: usize) -> io::Result<()> {
        if let Some(handle) = self.handles[idx].take() {
            handle.shutdown();
        }
        let name = node_name(idx);
        let store = Arc::new(ShardedStore::open_on(
            Arc::clone(&self.vfs[idx]),
            self.root.join(&name),
            self.store_cfg.clone(),
        )?);
        let cfg = ServiceConfig {
            blockstore: Some(Arc::clone(&store)),
            ..self.service_cfg.clone()
        };
        let handle = serve(&Endpoint::tcp("127.0.0.1:0")?, cfg)?;
        self.members[idx] = (name, handle.endpoint().clone());
        self.handles[idx] = Some(handle);
        self.stores[idx] = store;
        Ok(())
    }

    /// The members as (name, endpoint) — what a gateway is built from.
    pub fn members(&self) -> &[(String, Endpoint)] {
        &self.members
    }

    /// Node `idx`'s store (e.g. to damage a replica in a test).
    pub fn store(&self, idx: usize) -> &Arc<ShardedStore> {
        &self.stores[idx]
    }

    /// Kill node `idx`: stop its service and drop its listener. The
    /// store directory stays on disk; the fleet's point is surviving
    /// exactly this.
    pub fn kill(&mut self, idx: usize) {
        if let Some(handle) = self.handles[idx].take() {
            handle.shutdown();
        }
    }

    /// Is node `idx` still serving?
    pub fn is_alive(&self, idx: usize) -> bool {
        self.handles[idx].is_some()
    }

    /// Node `idx`'s live service handle (None once killed) — for
    /// reading its gauges and metrics, or injecting test conditions.
    pub fn handle(&self, idx: usize) -> Option<&ServiceHandle> {
        self.handles[idx].as_ref()
    }

    /// Make node `idx` serve every conversion and block op `d` slower
    /// (0 restores full speed): the degraded-host regime of §6.3/§6.6
    /// — the node is up, answering probes, and slow — which is exactly
    /// the failure hedged reads exist to hide. No-op on a killed node.
    pub fn inject_delay(&self, idx: usize, d: std::time::Duration) {
        if let Some(handle) = &self.handles[idx] {
            handle.inject_delay(d);
        }
    }

    /// The manifest text for this fleet.
    pub fn manifest(&self) -> String {
        let mut out = String::new();
        for (name, ep) in &self.members {
            out.push_str(&format!("{name} {ep}\n"));
        }
        out
    }

    /// Write the manifest to `path` atomically (temp file + rename),
    /// so a concurrent `fleet put`/`get` never reads a half-written
    /// membership.
    pub fn write_manifest(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.manifest().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }
}

/// Conventional node name for index `i`.
pub fn node_name(i: usize) -> String {
    format!("node-{i:03}")
}

/// Parse manifest text: one `name endpoint` pair per line, `#`
/// comments and blank lines ignored.
pub fn parse_manifest(text: &str) -> io::Result<Vec<(String, Endpoint)>> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, ep)) = line.split_once(char::is_whitespace) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("manifest line {}: expected `name endpoint`", lineno + 1),
            ));
        };
        let endpoint: Endpoint = ep.trim().parse()?;
        // Names are ring identities; a duplicate is a configuration
        // error that must surface here, not as a panic in Ring::new.
        if out.iter().any(|(n, _)| n == name) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("manifest line {}: duplicate node name {name:?}", lineno + 1),
            ));
        }
        // Two names for one endpoint is worse than a duplicate name:
        // the ring would count one physical service as two members, so
        // an R=2 replica set could be both aliases of the same machine
        // — replication satisfied on paper, voided in reality.
        if out.iter().any(|(_, e)| *e == endpoint) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "manifest line {}: endpoint {endpoint} already bound to another node",
                    lineno + 1
                ),
            ));
        }
        out.push((name.to_string(), endpoint));
    }
    if out.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "manifest names no nodes",
        ));
    }
    Ok(out)
}

/// Read and parse a manifest file.
pub fn read_manifest(path: &Path) -> io::Result<Vec<(String, Endpoint)>> {
    parse_manifest(&std::fs::read_to_string(path)?)
}

/// Where a fleet root keeps its manifest
/// (`root/FLEET`).
pub fn manifest_path(root: &Path) -> PathBuf {
    root.join(MANIFEST_FILE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrips() {
        let text = "\
# a fleet of two
node-000 tcp:127.0.0.1:9001
node-001 uds:/tmp/node1.sock

";
        let members = parse_manifest(text).unwrap();
        assert_eq!(members.len(), 2);
        assert_eq!(members[0].0, "node-000");
        assert_eq!(members[0].1.to_string(), "tcp:127.0.0.1:9001");
        assert_eq!(members[1].1, Endpoint::uds("/tmp/node1.sock"));
    }

    #[test]
    fn manifest_rejects_garbage() {
        assert!(parse_manifest("").is_err(), "no nodes");
        assert!(parse_manifest("just-a-name\n").is_err());
        assert!(parse_manifest("n0 carrier-pigeon:coop\n").is_err());
        assert!(
            parse_manifest("n0 tcp:127.0.0.1:1\nn0 tcp:127.0.0.1:2\n").is_err(),
            "duplicate names are a parse error, not a downstream panic"
        );
        assert!(
            parse_manifest("n0 tcp:127.0.0.1:1\nn1 tcp:127.0.0.1:1\n").is_err(),
            "two names for one endpoint would fake replication"
        );
    }
}
