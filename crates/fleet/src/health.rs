//! Per-node health tracking: consecutive-failure ejection with
//! probation re-probes.
//!
//! The paper's deployment leaned on load balancers to steer around
//! unhealthy blockservers (§5.5, §6.6 — hosts that time out get queued
//! for automated investigation); the gateway needs the same reflex
//! in-process. The state machine is the standard circuit breaker:
//!
//! ```text
//! Healthy --(eject_after consecutive failures)--> Ejected
//! Ejected --(probation elapsed)--> Probing   (exactly one request)
//! Probing --success--> Healthy      Probing --failure--> Ejected
//! ```
//!
//! While a node is `Ejected` the gateway sends it nothing, so one dead
//! machine costs each request at most one timeout ever, not one
//! timeout per request. The single-probe rule keeps a recovering node
//! from being trampled the instant its probation ends.

use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// Ejection policy knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Consecutive failures before a node is ejected.
    pub eject_after: u32,
    /// How long an ejected node sits out before one probe is allowed.
    pub probation: Duration,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            eject_after: 3,
            probation: Duration::from_secs(5),
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum State {
    Healthy,
    Ejected { since: Instant },
    Probing { since: Instant },
}

struct Inner {
    state: State,
    consecutive_failures: u32,
    ejections: u64,
}

/// One node's health, shared by every request path that touches it.
pub struct NodeHealth {
    policy: HealthPolicy,
    inner: Mutex<Inner>,
}

/// Point-in-time view of a node's health (for `stat` output).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Is traffic currently being kept off this node?
    pub ejected: bool,
    /// Current consecutive-failure streak.
    pub consecutive_failures: u32,
    /// Times this node has been ejected over the gateway's lifetime.
    pub ejections: u64,
}

impl NodeHealth {
    /// A healthy node under `policy`.
    pub fn new(policy: HealthPolicy) -> NodeHealth {
        NodeHealth {
            policy,
            inner: Mutex::new(Inner {
                state: State::Healthy,
                consecutive_failures: 0,
                ejections: 0,
            }),
        }
    }

    /// Should a request be sent to this node right now?
    ///
    /// `Healthy` always admits. `Ejected` admits exactly one request
    /// once probation has elapsed (moving to `Probing`); the answer to
    /// everyone else is no until that probe reports back — or until a
    /// whole further probation passes, which covers a probe whose
    /// caller died without reporting.
    pub fn admit(&self) -> bool {
        let mut g = self.inner.lock();
        match g.state {
            State::Healthy => true,
            State::Ejected { since } => {
                if since.elapsed() >= self.policy.probation {
                    g.state = State::Probing {
                        since: Instant::now(),
                    };
                    true
                } else {
                    false
                }
            }
            State::Probing { since } => {
                if since.elapsed() >= self.policy.probation {
                    // The outstanding probe evidently never reported;
                    // allow another.
                    g.state = State::Probing {
                        since: Instant::now(),
                    };
                    true
                } else {
                    false
                }
            }
        }
    }

    /// A request to this node succeeded: any streak ends, probation
    /// ends, the node is healthy.
    pub fn record_success(&self) {
        let mut g = self.inner.lock();
        g.consecutive_failures = 0;
        g.state = State::Healthy;
    }

    /// A request to this node failed. Returns `true` when this failure
    /// ejected the node (so the caller can count ejection events).
    pub fn record_failure(&self) -> bool {
        let mut g = self.inner.lock();
        g.consecutive_failures = g.consecutive_failures.saturating_add(1);
        let eject = match g.state {
            State::Healthy => g.consecutive_failures >= self.policy.eject_after,
            // A failed probe re-ejects immediately: the node had its
            // one chance.
            State::Probing { .. } => true,
            State::Ejected { .. } => false,
        };
        if eject {
            g.state = State::Ejected {
                since: Instant::now(),
            };
            g.ejections += 1;
        }
        eject
    }

    /// Is the node currently ejected (including mid-probe)?
    pub fn is_ejected(&self) -> bool {
        !matches!(self.inner.lock().state, State::Healthy)
    }

    /// Snapshot for reporting.
    pub fn snapshot(&self) -> HealthSnapshot {
        let g = self.inner.lock();
        HealthSnapshot {
            ejected: !matches!(g.state, State::Healthy),
            consecutive_failures: g.consecutive_failures,
            ejections: g.ejections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> HealthPolicy {
        HealthPolicy {
            eject_after: 3,
            probation: Duration::from_millis(30),
        }
    }

    #[test]
    fn ejects_after_consecutive_failures_only() {
        let h = NodeHealth::new(quick());
        assert!(!h.record_failure());
        assert!(!h.record_failure());
        h.record_success(); // streak broken
        assert!(!h.record_failure());
        assert!(!h.record_failure());
        assert!(h.record_failure(), "third consecutive ejects");
        assert!(h.is_ejected());
        assert!(!h.admit(), "ejected nodes get no traffic");
        assert_eq!(h.snapshot().ejections, 1);
    }

    #[test]
    fn probation_admits_exactly_one_probe() {
        let h = NodeHealth::new(quick());
        for _ in 0..3 {
            h.record_failure();
        }
        assert!(!h.admit());
        std::thread::sleep(Duration::from_millis(35));
        assert!(h.admit(), "probation elapsed: one probe");
        assert!(!h.admit(), "second caller waits for the probe verdict");
    }

    #[test]
    fn probe_success_restores_health() {
        let h = NodeHealth::new(quick());
        for _ in 0..3 {
            h.record_failure();
        }
        std::thread::sleep(Duration::from_millis(35));
        assert!(h.admit());
        h.record_success();
        assert!(!h.is_ejected());
        assert!(h.admit());
        assert_eq!(h.snapshot().consecutive_failures, 0);
    }

    #[test]
    fn probe_failure_re_ejects_immediately() {
        let h = NodeHealth::new(quick());
        for _ in 0..3 {
            h.record_failure();
        }
        std::thread::sleep(Duration::from_millis(35));
        assert!(h.admit());
        assert!(h.record_failure(), "one failed probe re-ejects");
        assert!(!h.admit(), "back on the bench");
        assert_eq!(h.snapshot().ejections, 2);
    }

    #[test]
    fn stuck_probe_is_replaced_after_another_probation() {
        let h = NodeHealth::new(quick());
        for _ in 0..3 {
            h.record_failure();
        }
        std::thread::sleep(Duration::from_millis(35));
        assert!(h.admit()); // probe dispatched, never reports
        assert!(!h.admit());
        std::thread::sleep(Duration::from_millis(35));
        assert!(h.admit(), "a lost probe must not wedge the node");
    }
}
