//! The fleet gateway: N live blockserver nodes acting as one store.
//!
//! A [`FleetGateway`] fronts a set of conversion services (each
//! running the `BlockPut`/`BlockGet`/`BlockStat`/`BlockList` ops over
//! the UDS/TCP wire protocol) and gives callers the single-store
//! surface the paper's blockserver clients saw, with the fleet
//! mechanics hidden behind it:
//!
//! * **Placement** — the [`Ring`] maps a block digest to an R-node
//!   replica set; every gateway with the same seed and membership
//!   agrees without coordination.
//! * **Writes** — `put` writes to all R replicas in ring order and
//!   succeeds once the first (acting primary) acks; fewer than R acks
//!   is counted as a partial write for the rebalance/repair machinery
//!   to close later.
//! * **Reads** — `get` tries replicas in ring order and fails over on
//!   error or timeout; when a later replica serves the block, the
//!   copies observed missing or damaged on earlier replicas are
//!   **read-repaired** in-line (the server quarantines damaged
//!   records on read precisely so this repair `put` can land).
//! * **Health** — consecutive failures eject a node (probation
//!   re-probes let it back in), so a dead machine costs one timeout,
//!   not one per request.
//!
//! Every cross-node call goes through the bounded
//! [`retry_with_backoff`] helper, and every served payload is
//! re-hashed against its address at the gateway — a fleet must not
//! amplify a single node's corruption.

use crate::health::{HealthPolicy, HealthSnapshot, NodeHealth};
use crate::ring::{Ring, DEFAULT_SEED, DEFAULT_VNODES};
use lepton_server::client::{self, retry_with_backoff, ClientError, RetryPolicy};
use lepton_server::protocol::BlockStatReply;
use lepton_server::Endpoint;
use lepton_storage::sha256::{sha256, Digest};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Gateway configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Replication factor R: copies per block (paper-style fleets ran
    /// replicated block storage; we default to 2).
    pub replicas: usize,
    /// Virtual nodes per member on the ring.
    pub vnodes: usize,
    /// Ring seed — all gateways of one fleet must agree.
    pub seed: u64,
    /// Per-request socket timeout.
    pub timeout: Duration,
    /// Retry policy for cross-node requests (the failover path).
    pub retry: RetryPolicy,
    /// Ejection policy.
    pub health: HealthPolicy,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            replicas: 2,
            vnodes: DEFAULT_VNODES,
            seed: DEFAULT_SEED,
            timeout: Duration::from_secs(10),
            retry: RetryPolicy {
                attempts: 2,
                initial_backoff: Duration::from_millis(20),
                multiplier: 2,
                max_backoff: Duration::from_millis(200),
            },
            health: HealthPolicy::default(),
        }
    }
}

/// One member of the fleet.
pub struct FleetNode {
    name: String,
    endpoint: Endpoint,
    health: NodeHealth,
}

impl FleetNode {
    /// Node name (the ring identity).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Where the node's service listens.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Health snapshot.
    pub fn health(&self) -> HealthSnapshot {
        self.health.snapshot()
    }
}

/// Gateway counters.
#[derive(Debug, Default)]
pub struct FleetMetrics {
    /// Successful `put`s.
    pub puts: AtomicU64,
    /// Successful `get`s (served bytes or authoritative not-found).
    pub gets: AtomicU64,
    /// `put`s acked by fewer than R replicas.
    pub partial_writes: AtomicU64,
    /// `get`s served after at least one earlier replica was attempted
    /// and failed to deliver (skipping an ejected node is routing, not
    /// failover).
    pub failovers: AtomicU64,
    /// Copies re-written onto replicas observed missing or damaged.
    pub read_repairs: AtomicU64,
    /// Node ejection events.
    pub ejections: AtomicU64,
}

/// Errors the gateway can return.
#[derive(Debug)]
pub enum FleetError {
    /// The gateway has no member nodes.
    NoNodes,
    /// Every replica in the set failed the operation; carries the last
    /// per-node error for diagnosis.
    AllReplicasFailed {
        /// The block being read or written.
        key: Digest,
        /// The final node's error.
        last: ClientError,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoNodes => write!(f, "fleet has no nodes"),
            FleetError::AllReplicasFailed { key, last } => {
                write!(
                    f,
                    "all replicas failed for {}: {last}",
                    lepton_storage::blockstore::hex(key)
                )
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// Outcome of one replica read attempt, driving failover and repair.
enum ReadOutcome {
    /// Node answered: no such block. A healthy target for repair.
    Missing,
    /// Node is up but could not serve the block (damaged record,
    /// storage failure). The server quarantined damage, so a repair
    /// put can land.
    Damaged,
    /// Node unreachable or timing out — no point sending it a repair.
    Down,
    /// Node skipped because its health state refuses traffic.
    Skipped,
}

/// Per-node rows of a [`FleetGateway::stat`] aggregation.
#[derive(Clone, Debug)]
pub struct NodeStat {
    /// Node name.
    pub name: String,
    /// Did the node answer the stat probe?
    pub reachable: bool,
    /// Health snapshot at aggregation time.
    pub health: HealthSnapshot,
    /// The node's own blockstore summary, when reachable.
    pub stats: Option<BlockStatReply>,
}

/// Fleet-wide aggregation of per-node blockstore stats.
#[derive(Clone, Debug, Default)]
pub struct FleetStat {
    /// Per-node rows, in membership order.
    pub nodes: Vec<NodeStat>,
    /// Copies at rest across the fleet (each block counts once per
    /// replica).
    pub copies: u64,
    /// Of which Lepton-compressed.
    pub lepton_copies: u64,
    /// Sum of logical bytes across all copies.
    pub logical_bytes: u64,
    /// Sum of at-rest payload bytes across all copies.
    pub stored_bytes: u64,
    /// Nodes that answered.
    pub reachable: usize,
}

impl FleetStat {
    /// Fleet-wide savings fraction (0..1) across all copies.
    pub fn savings(&self) -> f64 {
        if self.logical_bytes == 0 {
            0.0
        } else {
            1.0 - self.stored_bytes as f64 / self.logical_bytes as f64
        }
    }
}

/// The consistent-hash gateway over live blockserver nodes.
pub struct FleetGateway {
    nodes: Vec<FleetNode>,
    ring: Ring,
    cfg: FleetConfig,
    /// Counters.
    pub metrics: FleetMetrics,
}

impl std::fmt::Debug for FleetGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetGateway")
            .field("nodes", &self.nodes.len())
            .field("replicas", &self.cfg.replicas)
            .finish()
    }
}

impl FleetGateway {
    /// Build a gateway over `members` (name, endpoint) with `cfg`.
    pub fn new(members: Vec<(String, Endpoint)>, cfg: FleetConfig) -> FleetGateway {
        let ring = Ring::new(members.iter().map(|(n, _)| n.clone()), cfg.vnodes, cfg.seed);
        let nodes = members
            .into_iter()
            .map(|(name, endpoint)| FleetNode {
                name,
                endpoint,
                health: NodeHealth::new(cfg.health),
            })
            .collect();
        FleetGateway {
            nodes,
            ring,
            cfg,
            metrics: FleetMetrics::default(),
        }
    }

    /// The member nodes, in membership order.
    pub fn nodes(&self) -> &[FleetNode] {
        &self.nodes
    }

    /// The placement ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The gateway's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// The replica set (node indices, primary first) for a key.
    pub fn replica_set(&self, key: &Digest) -> Vec<usize> {
        self.ring.replica_set(key, self.cfg.replicas)
    }

    fn record_outcome(&self, idx: usize, ok: bool) {
        if ok {
            self.nodes[idx].health.record_success();
        } else if self.nodes[idx].health.record_failure() {
            self.metrics.ejections.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Store a block on its replica set. Succeeds once the first
    /// replica (the acting primary) acks; replicas that could not be
    /// written are left to read-repair/rebalance and counted as a
    /// partial write.
    pub fn put(&self, data: &[u8]) -> Result<Digest, FleetError> {
        let key = sha256(data);
        let members = self.replica_set(&key);
        if members.is_empty() {
            return Err(FleetError::NoNodes);
        }
        let mut acks = 0usize;
        let mut last: Option<ClientError> = None;
        for &m in &members {
            let node = &self.nodes[m];
            if !node.health.admit() {
                continue;
            }
            match retry_with_backoff(&self.cfg.retry, |_| {
                client::block_put(&node.endpoint, data, self.cfg.timeout)
            }) {
                Ok(acked) if acked == key => {
                    self.record_outcome(m, true);
                    acks += 1;
                }
                Ok(_) => {
                    // A node that acks the wrong address is broken.
                    self.record_outcome(m, false);
                    last = Some(ClientError::Garbled("put acked a different address"));
                }
                Err(e) => {
                    self.record_outcome(m, false);
                    last = Some(e);
                }
            }
        }
        if acks == 0 {
            return Err(FleetError::AllReplicasFailed {
                key,
                last: last.unwrap_or(ClientError::Garbled("all replicas ejected")),
            });
        }
        if acks < members.len() {
            self.metrics.partial_writes.fetch_add(1, Ordering::Relaxed);
        }
        self.metrics.puts.fetch_add(1, Ordering::Relaxed);
        Ok(key)
    }

    /// Fetch a block, failing over across the replica set and
    /// read-repairing copies observed missing or damaged. `Ok(None)`
    /// only when *every* replica authoritatively answered "not found";
    /// a set where some replica failed is an error, because the block
    /// may exist on the unreachable copy.
    pub fn get(&self, key: &Digest) -> Result<Option<Vec<u8>>, FleetError> {
        let members = self.replica_set(key);
        if members.is_empty() {
            return Err(FleetError::NoNodes);
        }
        let mut outcomes: Vec<(usize, ReadOutcome)> = Vec::with_capacity(members.len());
        let mut last: Option<ClientError> = None;
        for &m in &members {
            let node = &self.nodes[m];
            if !node.health.admit() {
                outcomes.push((m, ReadOutcome::Skipped));
                continue;
            }
            match retry_with_backoff(&self.cfg.retry, |_| {
                client::block_get(&node.endpoint, key, self.cfg.timeout)
            }) {
                Ok(Some(bytes)) => {
                    if sha256(&bytes) != *key {
                        // Never let one node's corruption exit the
                        // gateway; treat as a damaged replica.
                        self.record_outcome(m, false);
                        outcomes.push((m, ReadOutcome::Damaged));
                        last = Some(ClientError::Garbled("replica served wrong bytes"));
                        continue;
                    }
                    self.record_outcome(m, true);
                    // A failover is a serve after an earlier replica
                    // was *attempted* and did not deliver; skipping an
                    // already-ejected node is routing, not failover —
                    // a healthy converged fleet must read as zero.
                    if outcomes
                        .iter()
                        .any(|(_, o)| !matches!(o, ReadOutcome::Skipped))
                    {
                        self.metrics.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                    self.repair(key, &bytes, &outcomes);
                    self.metrics.gets.fetch_add(1, Ordering::Relaxed);
                    return Ok(Some(bytes));
                }
                Ok(None) => {
                    self.record_outcome(m, true); // the node answered
                    outcomes.push((m, ReadOutcome::Missing));
                }
                Err(e) => {
                    let outcome = if e.is_transient() {
                        ReadOutcome::Down
                    } else {
                        ReadOutcome::Damaged
                    };
                    self.record_outcome(m, false);
                    outcomes.push((m, outcome));
                    last = Some(e);
                }
            }
        }
        if outcomes
            .iter()
            .all(|(_, o)| matches!(o, ReadOutcome::Missing))
        {
            self.metrics.gets.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        }
        Err(FleetError::AllReplicasFailed {
            key: *key,
            last: last.unwrap_or(ClientError::Garbled("all replicas ejected")),
        })
    }

    /// Re-write `data` onto replicas that answered "missing" or
    /// "damaged" while a later replica had the block. Best-effort and
    /// single-shot: a repair that fails will be retried by the next
    /// read or by a rebalance pass.
    ///
    /// A "damaged" replica's repair is verified with a follow-up read:
    /// the server quarantines *corrupt* records (so the put lands),
    /// but a record failing with an I/O error is still in place and
    /// the put silently dedups against it — the ack alone does not
    /// prove the copy was fixed, and `read_repairs` must never count
    /// repairs that did not happen. A failed repair is simply left for
    /// the next read or rebalance pass: it does not charge the node's
    /// health (the node just answered the read that got us here).
    fn repair(&self, key: &Digest, data: &[u8], outcomes: &[(usize, ReadOutcome)]) {
        for (m, outcome) in outcomes {
            let must_verify = match outcome {
                ReadOutcome::Missing => false,
                ReadOutcome::Damaged => true,
                ReadOutcome::Down | ReadOutcome::Skipped => continue,
            };
            let node = &self.nodes[*m];
            let repaired = match retry_with_backoff(&self.cfg.retry, |_| {
                client::block_put(&node.endpoint, data, self.cfg.timeout)
            }) {
                Ok(acked) if acked == *key => {
                    !must_verify
                        || matches!(
                            retry_with_backoff(&self.cfg.retry, |_| {
                                client::block_get(&node.endpoint, key, self.cfg.timeout)
                            }),
                            Ok(Some(bytes)) if sha256(&bytes) == *key
                        )
                }
                _ => false,
            };
            if repaired {
                self.record_outcome(*m, true);
                self.metrics.read_repairs.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Aggregate blockstore stats across the whole fleet. Health
    /// state is reported but not modified — a stats sweep must never
    /// eject anyone.
    pub fn stat(&self) -> FleetStat {
        let mut out = FleetStat::default();
        for node in &self.nodes {
            let reply = client::block_stat(&node.endpoint, self.cfg.timeout).ok();
            let row = NodeStat {
                name: node.name.clone(),
                reachable: reply.is_some(),
                health: node.health.snapshot(),
                stats: reply,
            };
            if let Some(s) = &row.stats {
                out.copies += s.blocks;
                out.lepton_copies += s.lepton_blocks;
                out.logical_bytes += s.logical_bytes;
                out.stored_bytes += s.stored_bytes;
                out.reachable += 1;
            }
            out.nodes.push(row);
        }
        out
    }

    /// List the block addresses a member node holds (the rebalance
    /// driver's walk).
    pub fn list_node(&self, idx: usize) -> Result<Vec<Digest>, ClientError> {
        retry_with_backoff(&self.cfg.retry, |_| {
            client::block_list(&self.nodes[idx].endpoint, self.cfg.timeout)
        })
    }

    /// Fetch a block directly from one member (no failover, no
    /// repair) — the rebalance driver's read side.
    pub fn fetch_from(&self, idx: usize, key: &Digest) -> Result<Option<Vec<u8>>, ClientError> {
        retry_with_backoff(&self.cfg.retry, |_| {
            client::block_get(&self.nodes[idx].endpoint, key, self.cfg.timeout)
        })
    }

    /// Write a block directly to one member — the rebalance driver's
    /// write side.
    pub fn put_to(&self, idx: usize, data: &[u8]) -> Result<Digest, ClientError> {
        retry_with_backoff(&self.cfg.retry, |_| {
            client::block_put(&self.nodes[idx].endpoint, data, self.cfg.timeout)
        })
    }
}
