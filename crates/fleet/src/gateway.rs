//! The fleet gateway: N live blockserver nodes acting as one store.
//!
//! A [`FleetGateway`] fronts a set of conversion services (each
//! running the `BlockPut`/`BlockGet`/`BlockStat`/`BlockList` ops over
//! the UDS/TCP wire protocol) and gives callers the single-store
//! surface the paper's blockserver clients saw, with the fleet
//! mechanics hidden behind it:
//!
//! * **Placement** — the [`Ring`] maps a block digest to an R-node
//!   replica set; every gateway with the same seed and membership
//!   agrees without coordination.
//! * **Writes** — `put` writes to all R replicas in ring order and
//!   succeeds once the first (acting primary) acks; fewer than R acks
//!   is counted as a partial write for the rebalance/repair machinery
//!   to close later.
//! * **Reads** — `get` tries replicas in ring order and fails over on
//!   error or timeout; when a later replica serves the block, the
//!   copies observed missing or damaged on earlier replicas are
//!   **read-repaired** in-line (the server quarantines damaged
//!   records on read precisely so this repair `put` can land). With
//!   [`FleetConfig::hedge`] set, reads are **hedged**: a primary that
//!   blows the latency budget races the next replica, first verified
//!   answer wins, and the loser is abandoned without being charged.
//! * **Health** — consecutive failures eject a node (probation
//!   re-probes let it back in), so a dead machine costs one timeout,
//!   not one per request.
//!
//! Every cross-node call goes through the bounded
//! [`retry_with_backoff`] helper, and every served payload is
//! re-hashed against its address at the gateway — a fleet must not
//! amplify a single node's corruption.

use crate::health::{HealthPolicy, HealthSnapshot, NodeHealth};
use crate::ring::{Ring, DEFAULT_SEED, DEFAULT_VNODES};
use lepton_obs::{Counter, Registry, Watchdog, WatchdogConfig};
use lepton_server::client::{self, retry_with_backoff, ClientError, RetryPolicy};
use lepton_server::protocol::BlockStatReply;
use lepton_server::Endpoint;
use lepton_storage::sha256::{sha256, Digest};
use std::sync::Arc;
use std::time::Duration;

/// Gateway configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Replication factor R: copies per block (paper-style fleets ran
    /// replicated block storage; we default to 2).
    pub replicas: usize,
    /// Virtual nodes per member on the ring.
    pub vnodes: usize,
    /// Ring seed — all gateways of one fleet must agree.
    pub seed: u64,
    /// Per-request socket timeout.
    pub timeout: Duration,
    /// Retry policy for cross-node requests (the failover path).
    pub retry: RetryPolicy,
    /// Ejection policy.
    pub health: HealthPolicy,
    /// Hedged-read latency budget: when set, a `get` whose first
    /// replica has not answered within this budget fires the same
    /// read at the next replica and serves whichever answers first
    /// (the classic tail-taming trade: a little duplicate work for a
    /// lot of p99). `None` (the default) reads strictly serially.
    pub hedge: Option<Duration>,
    /// Degraded-health watchdog windows/thresholds: the gateway feeds
    /// every replica-attempt outcome in, and a window whose error rate
    /// crosses the threshold (a dead or corrupting replica) latches
    /// the fleet-level degraded flag.
    pub watchdog: WatchdogConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            replicas: 2,
            vnodes: DEFAULT_VNODES,
            seed: DEFAULT_SEED,
            timeout: Duration::from_secs(10),
            retry: RetryPolicy {
                attempts: 2,
                initial_backoff: Duration::from_millis(20),
                multiplier: 2,
                max_backoff: Duration::from_millis(200),
                // Seeded from the gateway's own placement seed: a shed
                // storm fans retries out instead of re-stampeding, and
                // a replayed fleet replays its sleeps too.
                jitter: Some(DEFAULT_SEED),
            },
            health: HealthPolicy::default(),
            hedge: None,
            watchdog: WatchdogConfig::default(),
        }
    }
}

/// One member of the fleet.
pub struct FleetNode {
    name: String,
    endpoint: Endpoint,
    health: NodeHealth,
}

impl FleetNode {
    /// Node name (the ring identity).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Where the node's service listens.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Health snapshot.
    pub fn health(&self) -> HealthSnapshot {
        self.health.snapshot()
    }
}

/// Gateway counters. All cells are `lepton_obs` counters registered on
/// the gateway's [`FleetGateway::registry`] under `fleet.*` names, so
/// a snapshot exports the same atomics the read/write paths bump.
#[derive(Debug, Default)]
pub struct FleetMetrics {
    /// Successful `put`s.
    pub puts: Arc<Counter>,
    /// Successful `get`s (served bytes or authoritative not-found).
    pub gets: Arc<Counter>,
    /// `put`s acked by fewer than R replicas.
    pub partial_writes: Arc<Counter>,
    /// `get`s served after at least one earlier replica was attempted
    /// and failed to deliver (skipping an ejected node is routing, not
    /// failover).
    pub failovers: Arc<Counter>,
    /// Copies re-written onto replicas observed missing or damaged.
    pub read_repairs: Arc<Counter>,
    /// Node ejection events.
    pub ejections: Arc<Counter>,
    /// Hedge attempts fired: reads where the first replica had not
    /// answered within the hedge budget and a second replica was
    /// asked concurrently.
    pub hedged_reads: Arc<Counter>,
    /// Reads served by a hedge attempt rather than the primary.
    pub hedge_wins: Arc<Counter>,
    /// In-flight attempts abandoned because another attempt served the
    /// read first. A cancelled loser's outcome is unknown, so it is
    /// never charged to node health and never counted as a failover.
    pub hedge_cancellations: Arc<Counter>,
}

impl FleetMetrics {
    /// Publish every counter on `registry` as `<prefix>.<field>`.
    fn bind_registry(&self, registry: &Registry, prefix: &str) {
        for (name, c) in [
            ("puts", &self.puts),
            ("gets", &self.gets),
            ("partial_writes", &self.partial_writes),
            ("failovers", &self.failovers),
            ("read_repairs", &self.read_repairs),
            ("ejections", &self.ejections),
            ("hedged_reads", &self.hedged_reads),
            ("hedge_wins", &self.hedge_wins),
            ("hedge_cancellations", &self.hedge_cancellations),
        ] {
            registry.adopt_counter(&format!("{prefix}.{name}"), c);
        }
    }
}

/// Errors the gateway can return.
#[derive(Debug)]
pub enum FleetError {
    /// The gateway has no member nodes.
    NoNodes,
    /// Every replica in the set failed the operation; carries the last
    /// per-node error for diagnosis.
    AllReplicasFailed {
        /// The block being read or written.
        key: Digest,
        /// The final node's error.
        last: ClientError,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoNodes => write!(f, "fleet has no nodes"),
            FleetError::AllReplicasFailed { key, last } => {
                write!(
                    f,
                    "all replicas failed for {}: {last}",
                    lepton_storage::blockstore::hex(key)
                )
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// Outcome of one replica read attempt, driving failover and repair.
enum ReadOutcome {
    /// Node answered: no such block. A healthy target for repair.
    Missing,
    /// Node is up but could not serve the block (damaged record,
    /// storage failure). The server quarantined damage, so a repair
    /// put can land.
    Damaged,
    /// Node unreachable or timing out — no point sending it a repair.
    Down,
    /// Node skipped because its health state refuses traffic.
    Skipped,
}

/// A hedge attempt's answer: which slot fired it, and what came back.
type AttemptReply = (usize, Result<Option<Vec<u8>>, ClientError>);

/// Per-node rows of a [`FleetGateway::stat`] aggregation.
#[derive(Clone, Debug)]
pub struct NodeStat {
    /// Node name.
    pub name: String,
    /// Did the node answer the stat probe?
    pub reachable: bool,
    /// Health snapshot at aggregation time.
    pub health: HealthSnapshot,
    /// The node's own blockstore summary, when reachable.
    pub stats: Option<BlockStatReply>,
}

/// Fleet-wide aggregation of per-node blockstore stats.
#[derive(Clone, Debug, Default)]
pub struct FleetStat {
    /// Per-node rows, in membership order.
    pub nodes: Vec<NodeStat>,
    /// Copies at rest across the fleet (each block counts once per
    /// replica).
    pub copies: u64,
    /// Of which Lepton-compressed.
    pub lepton_copies: u64,
    /// Sum of logical bytes across all copies.
    pub logical_bytes: u64,
    /// Sum of at-rest payload bytes across all copies.
    pub stored_bytes: u64,
    /// Nodes that answered.
    pub reachable: usize,
}

impl FleetStat {
    /// Fleet-wide savings fraction (0..1) across all copies.
    pub fn savings(&self) -> f64 {
        if self.logical_bytes == 0 {
            0.0
        } else {
            1.0 - self.stored_bytes as f64 / self.logical_bytes as f64
        }
    }
}

/// The consistent-hash gateway over live blockserver nodes.
pub struct FleetGateway {
    nodes: Vec<FleetNode>,
    ring: Ring,
    cfg: FleetConfig,
    /// Counters.
    pub metrics: FleetMetrics,
    registry: Arc<Registry>,
    watchdog: Arc<Watchdog>,
}

impl std::fmt::Debug for FleetGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetGateway")
            .field("nodes", &self.nodes.len())
            .field("replicas", &self.cfg.replicas)
            .finish()
    }
}

impl FleetGateway {
    /// Build a gateway over `members` (name, endpoint) with `cfg`.
    pub fn new(members: Vec<(String, Endpoint)>, cfg: FleetConfig) -> FleetGateway {
        let ring = Ring::new(members.iter().map(|(n, _)| n.clone()), cfg.vnodes, cfg.seed);
        let nodes = members
            .into_iter()
            .map(|(name, endpoint)| FleetNode {
                name,
                endpoint,
                health: NodeHealth::new(cfg.health),
            })
            .collect();
        let registry = Arc::new(Registry::new());
        let metrics = FleetMetrics::default();
        metrics.bind_registry(&registry, "fleet");
        let watchdog = Arc::new(Watchdog::new(cfg.watchdog));
        FleetGateway {
            nodes,
            ring,
            cfg,
            metrics,
            registry,
            watchdog,
        }
    }

    /// The gateway's metric registry (`fleet.*` counters; a
    /// [`FleetGateway::snapshot`] adds the live degraded flag).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The gateway-level health watchdog, fed by every replica-attempt
    /// outcome.
    pub fn watchdog(&self) -> &Watchdog {
        &self.watchdog
    }

    /// Has the watchdog latched the degraded flag (e.g. a replica dead
    /// long enough for an evaluation window of elevated errors)?
    pub fn degraded(&self) -> bool {
        self.watchdog.degraded()
    }

    /// Point-in-time export of the gateway's counters plus the
    /// watchdog gauges (`health.degraded`, `watchdog.*`).
    pub fn snapshot(&self) -> lepton_obs::Snapshot {
        self.watchdog.publish(&self.registry);
        self.registry.snapshot()
    }

    /// The member nodes, in membership order.
    pub fn nodes(&self) -> &[FleetNode] {
        &self.nodes
    }

    /// The placement ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The gateway's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.cfg
    }

    /// The replica set (node indices, primary first) for a key.
    pub fn replica_set(&self, key: &Digest) -> Vec<usize> {
        self.ring.replica_set(key, self.cfg.replicas)
    }

    fn record_outcome(&self, idx: usize, ok: bool) {
        if ok {
            self.nodes[idx].health.record_success();
        } else if self.nodes[idx].health.record_failure() {
            self.metrics.ejections.inc();
        }
    }

    /// Store a block on its replica set. Succeeds once the first
    /// replica (the acting primary) acks; replicas that could not be
    /// written are left to read-repair/rebalance and counted as a
    /// partial write.
    pub fn put(&self, data: &[u8]) -> Result<Digest, FleetError> {
        let key = sha256(data);
        let members = self.replica_set(&key);
        if members.is_empty() {
            return Err(FleetError::NoNodes);
        }
        let mut acks = 0usize;
        let mut last: Option<ClientError> = None;
        for &m in &members {
            let node = &self.nodes[m];
            if !node.health.admit() {
                continue;
            }
            match retry_with_backoff(&self.cfg.retry, |_| {
                client::block_put(&node.endpoint, data, self.cfg.timeout)
            }) {
                Ok(acked) if acked == key => {
                    self.record_outcome(m, true);
                    self.watchdog.record_event(false, false);
                    acks += 1;
                }
                Ok(_) => {
                    // A node that acks the wrong address is broken.
                    self.record_outcome(m, false);
                    self.watchdog.record_event(false, true);
                    last = Some(ClientError::Garbled("put acked a different address"));
                }
                Err(e) => {
                    self.record_outcome(m, false);
                    self.watchdog.record_event(false, true);
                    last = Some(e);
                }
            }
        }
        if acks == 0 {
            return Err(FleetError::AllReplicasFailed {
                key,
                last: last.unwrap_or(ClientError::Garbled("all replicas ejected")),
            });
        }
        if acks < members.len() {
            self.metrics.partial_writes.inc();
        }
        self.metrics.puts.inc();
        Ok(key)
    }

    /// Fetch a block, failing over across the replica set and
    /// read-repairing copies observed missing or damaged. `Ok(None)`
    /// only when *every* replica authoritatively answered "not found";
    /// a set where some replica failed is an error, because the block
    /// may exist on the unreachable copy.
    ///
    /// When [`FleetConfig::hedge`] is set, the read is hedged: if the
    /// first replica has not answered within the budget, the same read
    /// fires at the next replica concurrently and whichever answers
    /// first is served (verified); the loser is abandoned and counted
    /// in `hedge_cancellations`.
    pub fn get(&self, key: &Digest) -> Result<Option<Vec<u8>>, FleetError> {
        let members = self.replica_set(key);
        if members.is_empty() {
            return Err(FleetError::NoNodes);
        }
        match self.cfg.hedge {
            Some(budget) if members.len() >= 2 => self.get_hedged(key, &members, budget),
            _ => self.get_serial(key, &members),
        }
    }

    /// One blocking read attempt against node `m` (retry policy and
    /// all).
    fn attempt_read(&self, m: usize, key: &Digest) -> Result<Option<Vec<u8>>, ClientError> {
        retry_with_backoff(&self.cfg.retry, |_| {
            client::block_get(&self.nodes[m].endpoint, key, self.cfg.timeout)
        })
    }

    /// Classify one completed read attempt, recording node health.
    fn classify_read(
        &self,
        m: usize,
        key: &Digest,
        result: Result<Option<Vec<u8>>, ClientError>,
    ) -> Result<Vec<u8>, (ReadOutcome, Option<ClientError>)> {
        // Every completed attempt is one watchdog event: a window of
        // elevated attempt errors (dead or corrupting replica) latches
        // the fleet degraded flag.
        match result {
            Ok(Some(bytes)) => {
                if sha256(&bytes) != *key {
                    // Never let one node's corruption exit the
                    // gateway; treat as a damaged replica.
                    self.record_outcome(m, false);
                    self.watchdog.record_event(false, true);
                    Err((
                        ReadOutcome::Damaged,
                        Some(ClientError::Garbled("replica served wrong bytes")),
                    ))
                } else {
                    self.record_outcome(m, true);
                    self.watchdog.record_event(false, false);
                    Ok(bytes)
                }
            }
            Ok(None) => {
                self.record_outcome(m, true); // the node answered
                self.watchdog.record_event(false, false);
                Err((ReadOutcome::Missing, None))
            }
            Err(e) => {
                let outcome = if e.is_transient() {
                    ReadOutcome::Down
                } else {
                    ReadOutcome::Damaged
                };
                self.record_outcome(m, false);
                self.watchdog.record_event(false, true);
                Err((outcome, Some(e)))
            }
        }
    }

    /// Serve verified bytes: count the failover (if any earlier
    /// replica was *attempted* and did not deliver — skipping an
    /// already-ejected node is routing, not failover, and a cancelled
    /// hedge loser never completed, so it is neither), repair the
    /// replicas known to lack the block, bump the counter.
    fn serve_read(
        &self,
        key: &Digest,
        bytes: Vec<u8>,
        outcomes: &[(usize, ReadOutcome)],
    ) -> Result<Option<Vec<u8>>, FleetError> {
        if outcomes
            .iter()
            .any(|(_, o)| !matches!(o, ReadOutcome::Skipped))
        {
            self.metrics.failovers.inc();
        }
        self.repair(key, &bytes, outcomes);
        self.metrics.gets.inc();
        Ok(Some(bytes))
    }

    /// The terminal no-serve answer: authoritative not-found only when
    /// every replica said "missing"; otherwise the error that kept the
    /// block unreachable.
    fn exhausted_read(
        &self,
        key: &Digest,
        outcomes: &[(usize, ReadOutcome)],
        last: Option<ClientError>,
    ) -> Result<Option<Vec<u8>>, FleetError> {
        if outcomes
            .iter()
            .all(|(_, o)| matches!(o, ReadOutcome::Missing))
        {
            self.metrics.gets.inc();
            return Ok(None);
        }
        Err(FleetError::AllReplicasFailed {
            key: *key,
            last: last.unwrap_or(ClientError::Garbled("all replicas ejected")),
        })
    }

    /// Advance through `members` from `*pos`, recording skips for
    /// nodes whose health refuses traffic, until one admits a request.
    /// Admission is consulted lazily — exactly once per node per get —
    /// so a probing node's single probe slot is never consumed by a
    /// replica that was never actually tried.
    fn next_admitted(
        &self,
        members: &[usize],
        pos: &mut usize,
        outcomes: &mut Vec<(usize, ReadOutcome)>,
    ) -> Option<usize> {
        while *pos < members.len() {
            let m = members[*pos];
            *pos += 1;
            if self.nodes[m].health.admit() {
                return Some(m);
            }
            outcomes.push((m, ReadOutcome::Skipped));
        }
        None
    }

    /// The strictly serial read path: one replica at a time, in ring
    /// order.
    fn get_serial(&self, key: &Digest, members: &[usize]) -> Result<Option<Vec<u8>>, FleetError> {
        let mut outcomes: Vec<(usize, ReadOutcome)> = Vec::with_capacity(members.len());
        let mut last: Option<ClientError> = None;
        let mut pos = 0usize;
        while let Some(m) = self.next_admitted(members, &mut pos, &mut outcomes) {
            match self.classify_read(m, key, self.attempt_read(m, key)) {
                Ok(bytes) => return self.serve_read(key, bytes, &outcomes),
                Err((outcome, err)) => {
                    outcomes.push((m, outcome));
                    if err.is_some() {
                        last = err;
                    }
                }
            }
        }
        self.exhausted_read(key, &outcomes, last)
    }

    /// The hedged read path: fire the primary, and if it has not
    /// answered within `budget`, fire the next admitted replica too.
    /// First verified success wins; any attempt still in flight at
    /// serve time is abandoned (counted, never charged to health —
    /// its outcome is unknown, and charging a node for being slower
    /// than the winner would let one hot request eject a healthy
    /// node). If both hedge attempts complete without serving, the
    /// remaining replicas are tried serially, preserving the serial
    /// path's exhaustion semantics.
    fn get_hedged(
        &self,
        key: &Digest,
        members: &[usize],
        budget: Duration,
    ) -> Result<Option<Vec<u8>>, FleetError> {
        let mut outcomes: Vec<(usize, ReadOutcome)> = Vec::with_capacity(members.len());
        let mut last: Option<ClientError> = None;
        let mut pos = 0usize;

        let (tx, rx) = std::sync::mpsc::channel::<AttemptReply>();
        let Some(primary) = self.next_admitted(members, &mut pos, &mut outcomes) else {
            return self.exhausted_read(key, &outcomes, last);
        };
        self.spawn_attempt(0, primary, key, tx.clone());
        let mut fired = vec![primary];
        let mut pending = 1usize;
        let mut hedged = false;

        while pending > 0 {
            let msg = if !hedged {
                match rx.recv_timeout(budget) {
                    Ok(msg) => Some(msg),
                    Err(_) => {
                        // Budget blown: fire the hedge at the next
                        // admitted replica (if any remains).
                        hedged = true;
                        if let Some(m) = self.next_admitted(members, &mut pos, &mut outcomes) {
                            self.metrics.hedged_reads.inc();
                            self.spawn_attempt(fired.len(), m, key, tx.clone());
                            fired.push(m);
                            pending += 1;
                        }
                        None
                    }
                }
            } else {
                // We hold a sender, so recv() cannot disconnect; the
                // pending counter bounds how many messages exist.
                rx.recv().ok()
            };
            let Some((slot, result)) = msg else { continue };
            pending -= 1;
            let m = fired[slot];
            match self.classify_read(m, key, result) {
                Ok(bytes) => {
                    if slot > 0 {
                        self.metrics.hedge_wins.inc();
                    }
                    if pending > 0 {
                        self.metrics.hedge_cancellations.add(pending as u64);
                    }
                    return self.serve_read(key, bytes, &outcomes);
                }
                Err((outcome, err)) => {
                    outcomes.push((m, outcome));
                    if err.is_some() {
                        last = err;
                    }
                }
            }
        }

        // Both hedge attempts completed without a serve: walk the
        // remaining replicas serially.
        while let Some(m) = self.next_admitted(members, &mut pos, &mut outcomes) {
            match self.classify_read(m, key, self.attempt_read(m, key)) {
                Ok(bytes) => return self.serve_read(key, bytes, &outcomes),
                Err((outcome, err)) => {
                    outcomes.push((m, outcome));
                    if err.is_some() {
                        last = err;
                    }
                }
            }
        }
        self.exhausted_read(key, &outcomes, last)
    }

    /// Fire one read attempt on its own thread with fully owned data;
    /// the result (or nothing, if the gateway stopped listening) comes
    /// back over the channel tagged with its slot.
    fn spawn_attempt(
        &self,
        slot: usize,
        m: usize,
        key: &Digest,
        tx: std::sync::mpsc::Sender<AttemptReply>,
    ) {
        let endpoint = self.nodes[m].endpoint.clone();
        let key = *key;
        let timeout = self.cfg.timeout;
        let retry = self.cfg.retry;
        std::thread::spawn(move || {
            let result =
                retry_with_backoff(&retry, |_| client::block_get(&endpoint, &key, timeout));
            let _ = tx.send((slot, result));
        });
    }

    /// Re-write `data` onto replicas that answered "missing" or
    /// "damaged" while a later replica had the block. Best-effort and
    /// single-shot: a repair that fails will be retried by the next
    /// read or by a rebalance pass.
    ///
    /// A "damaged" replica's repair is verified with a follow-up read:
    /// the server quarantines *corrupt* records (so the put lands),
    /// but a record failing with an I/O error is still in place and
    /// the put silently dedups against it — the ack alone does not
    /// prove the copy was fixed, and `read_repairs` must never count
    /// repairs that did not happen. A failed repair is simply left for
    /// the next read or rebalance pass: it does not charge the node's
    /// health (the node just answered the read that got us here).
    fn repair(&self, key: &Digest, data: &[u8], outcomes: &[(usize, ReadOutcome)]) {
        for (m, outcome) in outcomes {
            let must_verify = match outcome {
                ReadOutcome::Missing => false,
                ReadOutcome::Damaged => true,
                ReadOutcome::Down | ReadOutcome::Skipped => continue,
            };
            let node = &self.nodes[*m];
            let repaired = match retry_with_backoff(&self.cfg.retry, |_| {
                client::block_put(&node.endpoint, data, self.cfg.timeout)
            }) {
                Ok(acked) if acked == *key => {
                    !must_verify
                        || matches!(
                            retry_with_backoff(&self.cfg.retry, |_| {
                                client::block_get(&node.endpoint, key, self.cfg.timeout)
                            }),
                            Ok(Some(bytes)) if sha256(&bytes) == *key
                        )
                }
                _ => false,
            };
            if repaired {
                self.record_outcome(*m, true);
                self.metrics.read_repairs.inc();
            }
        }
    }

    /// Aggregate blockstore stats across the whole fleet. Health
    /// state is reported but not modified — a stats sweep must never
    /// eject anyone.
    pub fn stat(&self) -> FleetStat {
        let mut out = FleetStat::default();
        for node in &self.nodes {
            let reply = client::block_stat(&node.endpoint, self.cfg.timeout).ok();
            let row = NodeStat {
                name: node.name.clone(),
                reachable: reply.is_some(),
                health: node.health.snapshot(),
                stats: reply,
            };
            if let Some(s) = &row.stats {
                out.copies += s.blocks;
                out.lepton_copies += s.lepton_blocks;
                out.logical_bytes += s.logical_bytes;
                out.stored_bytes += s.stored_bytes;
                out.reachable += 1;
            }
            out.nodes.push(row);
        }
        out
    }

    /// List the block addresses a member node holds (the rebalance
    /// driver's walk).
    pub fn list_node(&self, idx: usize) -> Result<Vec<Digest>, ClientError> {
        retry_with_backoff(&self.cfg.retry, |_| {
            client::block_list(&self.nodes[idx].endpoint, self.cfg.timeout)
        })
    }

    /// Fetch a block directly from one member (no failover, no
    /// repair) — the rebalance driver's read side.
    pub fn fetch_from(&self, idx: usize, key: &Digest) -> Result<Option<Vec<u8>>, ClientError> {
        retry_with_backoff(&self.cfg.retry, |_| {
            client::block_get(&self.nodes[idx].endpoint, key, self.cfg.timeout)
        })
    }

    /// Write a block directly to one member — the rebalance driver's
    /// write side.
    pub fn put_to(&self, idx: usize, data: &[u8]) -> Result<Digest, ClientError> {
        retry_with_backoff(&self.cfg.retry, |_| {
            client::block_put(&self.nodes[idx].endpoint, data, self.cfg.timeout)
        })
    }
}
