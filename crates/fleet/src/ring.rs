//! The seeded consistent-hash ring: deterministic block placement
//! with minimal movement on membership change.
//!
//! The paper's blockservers sat behind load balancers that assigned
//! *conversions* randomly (§5.5); block *placement* in the storage
//! fleet is the opposite problem — a block's address must map to the
//! same small replica set from every gateway, across topology changes,
//! with only ~K/N of keys moving when a node joins or leaves. The
//! classic consistent-hash answer: each node projects `vnodes` virtual
//! points onto a 64-bit ring, a block lands at the point clockwise of
//! its digest, and its replica set is the next R *distinct* nodes.
//!
//! Everything is deterministic: vnode positions are SHA-256 of
//! `(seed, node name, vnode index)`, a key's position is the first 8
//! bytes of its (already SHA-256) address. Two gateways configured
//! with the same seed, vnode count, and member names agree on every
//! placement without talking to each other.

use lepton_storage::sha256::{Digest, Sha256};

/// Default virtual nodes per member. 64 keeps the ring small while
/// holding per-node load imbalance to roughly ±20% — see the
/// `proptest_ring` balance bound.
pub const DEFAULT_VNODES: usize = 64;

/// Default ring seed ("LEPTFLEE" in spirit).
pub const DEFAULT_SEED: u64 = 0x4C45_5054_464C_4545;

/// A consistent-hash ring over named nodes.
#[derive(Clone, Debug)]
pub struct Ring {
    /// Member names, in insertion order; `points` refer to them by
    /// index.
    nodes: Vec<String>,
    /// Sorted `(position, node index)` pairs — the ring itself.
    points: Vec<(u64, u32)>,
    vnodes: usize,
    seed: u64,
}

/// Position of one vnode: first 8 bytes (big-endian) of
/// `SHA-256(seed || name || vnode index)`.
fn vnode_point(seed: u64, name: &str, vnode: u64) -> u64 {
    let mut h = Sha256::new();
    h.update(&seed.to_le_bytes());
    h.update(name.as_bytes());
    h.update(&vnode.to_le_bytes());
    let d = h.finish();
    u64::from_be_bytes(d[..8].try_into().expect("8 bytes"))
}

/// Position of a key: its address is already a SHA-256, so the first
/// 8 bytes are uniformly distributed — no re-hash needed.
fn key_point(key: &Digest) -> u64 {
    u64::from_be_bytes(key[..8].try_into().expect("8 bytes"))
}

impl Ring {
    /// Build a ring over `nodes` with `vnodes` virtual points each,
    /// positioned by `seed`. Duplicate names are rejected by panic —
    /// a fleet with two nodes of the same name is a configuration
    /// error no runtime behavior can make sensible.
    pub fn new(
        nodes: impl IntoIterator<Item = impl Into<String>>,
        vnodes: usize,
        seed: u64,
    ) -> Ring {
        let nodes: Vec<String> = nodes.into_iter().map(Into::into).collect();
        let vnodes = vnodes.max(1);
        {
            let mut sorted: Vec<&String> = nodes.iter().collect();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), nodes.len(), "duplicate node names");
        }
        let mut points = Vec::with_capacity(nodes.len() * vnodes);
        for (i, name) in nodes.iter().enumerate() {
            for v in 0..vnodes as u64 {
                points.push((vnode_point(seed, name, v), i as u32));
            }
        }
        points.sort_unstable();
        Ring {
            nodes,
            points,
            vnodes,
            seed,
        }
    }

    /// A new ring with the same geometry (vnodes, seed) over a changed
    /// membership — the way a topology change is expressed.
    pub fn with_nodes(&self, nodes: impl IntoIterator<Item = impl Into<String>>) -> Ring {
        Ring::new(nodes, self.vnodes, self.seed)
    }

    /// Member names, in insertion order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Member count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Virtual nodes per member.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// The ring seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The replica set for `key`: indices of the first `r` *distinct*
    /// nodes clockwise of the key's position. The first entry is the
    /// primary. Fewer than `r` nodes in the ring yields them all.
    pub fn replica_set(&self, key: &Digest, r: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(r.min(self.nodes.len()));
        if self.points.is_empty() || r == 0 {
            return out;
        }
        let kp = key_point(key);
        let start = self.points.partition_point(|&(p, _)| p < kp);
        for step in 0..self.points.len() {
            let (_, node) = self.points[(start + step) % self.points.len()];
            let node = node as usize;
            if !out.contains(&node) {
                out.push(node);
                if out.len() == r.min(self.nodes.len()) {
                    break;
                }
            }
        }
        out
    }

    /// The replica set as node names (for comparing placements across
    /// rings with different memberships, where indices don't line up).
    pub fn replica_names(&self, key: &Digest, r: usize) -> Vec<&str> {
        self.replica_set(key, r)
            .into_iter()
            .map(|i| self.nodes[i].as_str())
            .collect()
    }

    /// The primary node index for `key`, if the ring is non-empty.
    pub fn primary(&self, key: &Digest) -> Option<usize> {
        self.replica_set(key, 1).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lepton_storage::sha256::sha256;

    fn keys(n: usize) -> Vec<Digest> {
        (0..n)
            .map(|i| sha256(format!("block-{i}").as_bytes()))
            .collect()
    }

    #[test]
    fn placement_is_deterministic() {
        let a = Ring::new(["n0", "n1", "n2"], 32, 7);
        let b = Ring::new(["n0", "n1", "n2"], 32, 7);
        for k in keys(64) {
            assert_eq!(a.replica_set(&k, 2), b.replica_set(&k, 2));
        }
    }

    #[test]
    fn seed_changes_placement() {
        let a = Ring::new(["n0", "n1", "n2"], 32, 1);
        let b = Ring::new(["n0", "n1", "n2"], 32, 2);
        let moved = keys(256)
            .iter()
            .filter(|k| a.primary(k) != b.primary(k))
            .count();
        assert!(moved > 0, "different seeds, same ring?");
    }

    #[test]
    fn replica_set_is_distinct_and_sized() {
        let ring = Ring::new(["a", "b", "c", "d"], 16, 0);
        for k in keys(128) {
            let rs = ring.replica_set(&k, 2);
            assert_eq!(rs.len(), 2);
            assert_ne!(rs[0], rs[1], "replicas on distinct nodes");
        }
    }

    #[test]
    fn small_ring_caps_replicas_at_membership() {
        let ring = Ring::new(["only"], 16, 0);
        let k = sha256(b"x");
        assert_eq!(ring.replica_set(&k, 3), vec![0]);
        let empty = Ring::new(Vec::<String>::new(), 16, 0);
        assert!(empty.replica_set(&k, 2).is_empty());
        assert_eq!(empty.primary(&k), None);
    }

    #[test]
    fn membership_change_keeps_most_primaries() {
        let old = Ring::new(["n0", "n1", "n2", "n3"], 64, 3);
        let new = old.with_nodes(["n0", "n1", "n2", "n3", "n4"]);
        let ks = keys(1000);
        let moved = ks
            .iter()
            .filter(|k| old.replica_names(k, 1) != new.replica_names(k, 1))
            .count();
        // Ideal movement is K/N = 200; allow generous slack but far
        // below a reshuffle.
        assert!(moved > 0, "the new node must take some keys");
        assert!(moved < 400, "moved {moved} of 1000 — not consistent");
    }

    #[test]
    fn duplicate_names_panic() {
        let r = std::panic::catch_unwind(|| Ring::new(["a", "a"], 4, 0));
        assert!(r.is_err());
    }
}
