//! Torture rig over the blockstore: mutated and hostile inputs through
//! `put`/`get`, plus budget-starved handles.
//!
//! The store's contract is stronger than the codec's: `put` never
//! refuses content (admission failure just lands the block raw), and
//! `get` either returns the exact original bytes or a typed error —
//! never wrong bytes (SHA-256 gate), never a panic. A budget refusal
//! on read is policy, not damage: the record must not be quarantined
//! and must remain readable by an adequately-budgeted handle.

use lepton_core::{CompressOptions, ResourceBudget};
use lepton_corpus::builder::{clean_jpeg, CorpusSpec};
use lepton_corpus::{hostile_cases, mutation_matrix, probe, rig::RigCase};
use lepton_storage::blockstore::{ShardedStore, StoreConfig, StoreError};
use lepton_storage::StoredFormat;
use std::path::PathBuf;

fn spec() -> CorpusSpec {
    CorpusSpec {
        min_dim: 48,
        max_dim: 112,
        ..Default::default()
    }
}

fn temp_root(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("lepton-torture-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn torture_cases() -> Vec<RigCase> {
    let bases: Vec<(String, Vec<u8>)> = (0..2)
        .map(|i| (format!("jpeg{i}"), clean_jpeg(&spec(), 0x570E ^ i)))
        .collect();
    let named: Vec<(&str, Vec<u8>)> = bases.iter().map(|(n, d)| (n.as_str(), d.clone())).collect();
    let mut cases = mutation_matrix(&named, &[0xF00D, 0xBEEF]);
    cases.extend(hostile_cases());
    cases
}

fn starved_budget() -> ResourceBudget {
    ResourceBudget {
        decode_bytes: 1 << 10,
        encode_bytes: 1 << 10,
        ..Default::default()
    }
}

#[test]
fn put_get_never_returns_wrong_bytes_for_any_mutation() {
    // Force reads through the codec: no decoded-block cache.
    let root = temp_root("putget");
    let store = ShardedStore::open(
        &root,
        StoreConfig {
            cache_bytes: 0,
            ..Default::default()
        },
    )
    .unwrap();
    for case in torture_cases() {
        let outcome = probe(|| {
            let key = store.put(&case.input)?;
            store.get(&key)
        })
        .unwrap_or_else(|p| panic!("{}: PANIC: {p}", case.label));
        match outcome {
            Ok(Some(bytes)) => assert_eq!(
                bytes, case.input,
                "{}: stored bytes came back different",
                case.label
            ),
            Ok(None) => panic!("{}: block vanished after put", case.label),
            Err(e) => panic!("{}: put/get refused hostile *content*: {e}", case.label),
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn starved_encode_budget_degrades_to_raw_storage() {
    // Admission under a 1 KiB encode budget can never succeed, but put
    // must not fail: §5.7 shutoff semantics — the block lands raw.
    let root = temp_root("rawfall");
    let store = ShardedStore::open(
        &root,
        StoreConfig {
            compress: CompressOptions {
                budget: starved_budget(),
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let jpeg = clean_jpeg(&spec(), 0xFA11);
    let key = store.put(&jpeg).unwrap();
    assert_eq!(store.format_of(&key).unwrap(), Some(StoredFormat::Raw));
    assert_eq!(store.get(&key).unwrap().unwrap(), jpeg);
    assert_eq!(store.metrics.lepton_blocks.get(), 0);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn starved_decode_budget_refuses_reads_without_quarantine() {
    let root = temp_root("budget-read");
    // Write with the default budget: block admitted as Lepton.
    let writer = ShardedStore::open(&root, StoreConfig::default()).unwrap();
    let jpeg = clean_jpeg(&spec(), 0x6E7);
    let key = writer.put(&jpeg).unwrap();
    assert_eq!(writer.format_of(&key).unwrap(), Some(StoredFormat::Lepton));
    drop(writer);

    // Read through a starved handle: typed Budget refusal, metric
    // bumped, record NOT quarantined.
    let starved = ShardedStore::open(
        &root,
        StoreConfig {
            cache_bytes: 0,
            compress: CompressOptions {
                budget: ResourceBudget {
                    decode_bytes: 1 << 10,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    match starved.get(&key) {
        Err(StoreError::Budget { required, limit }) => {
            assert!(required > limit, "{required} vs {limit}")
        }
        other => panic!("expected Budget refusal, got {other:?}"),
    }
    assert_eq!(starved.metrics.budget_rejections.get(), 1);
    assert_eq!(starved.metrics.corrupt_blocks.get(), 0);
    drop(starved);

    // The record is healthy: a normally-budgeted handle still serves
    // the exact bytes, and check_block agrees nothing is damaged.
    let reader = ShardedStore::open(
        &root,
        StoreConfig {
            cache_bytes: 0,
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(reader.get(&key).unwrap().unwrap(), jpeg);
    assert!(reader.check_block(&key).unwrap());
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn default_budget_passes_the_corpus_through_the_store() {
    let root = temp_root("default");
    let store = ShardedStore::open(&root, StoreConfig::default()).unwrap();
    for i in 0..4u64 {
        let jpeg = clean_jpeg(&spec(), 0xC0DE ^ i);
        let key = store.put(&jpeg).unwrap();
        assert_eq!(
            store.format_of(&key).unwrap(),
            Some(StoredFormat::Lepton),
            "default budget must not push clean files to raw"
        );
        assert_eq!(store.get(&key).unwrap().unwrap(), jpeg);
    }
    assert_eq!(store.metrics.budget_rejections.get(), 0);
    let _ = std::fs::remove_dir_all(&root);
}
