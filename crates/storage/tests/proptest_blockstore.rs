//! Property tests for the disk-backed sharded blockstore: concurrent
//! `put`/`get` from many threads must round-trip every payload
//! byte-exactly, and a corrupted on-disk block must be caught by the
//! read-path hash check — refused, never served.

use lepton_corpus::builder::{clean_jpeg, CorpusSpec};
use lepton_storage::blockstore::{hex, ShardedStore, StoreConfig, StoreError};
use lepton_storage::sha256::sha256;
use lepton_storage::StoredFormat;
use proptest::prelude::*;
use std::path::PathBuf;

fn spec() -> CorpusSpec {
    CorpusSpec {
        min_dim: 48,
        max_dim: 112,
        ..Default::default()
    }
}

fn temp_root(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("lepton-bs-prop-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Deterministic non-JPEG payload.
fn blob(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 32) as u8
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// ≥4 threads hammering one store with a mixed JPEG/non-JPEG
    /// payload set: every payload round-trips byte-exactly, from every
    /// thread, including the dedup races where several threads put the
    /// same content at once.
    #[test]
    fn concurrent_put_get_roundtrips(
        case_seed in any::<u64>(),
        jpeg_count in 2usize..5,
        blob_count in 2usize..5,
        shards in 1usize..9,
    ) {
        let payloads: Vec<Vec<u8>> = (0..jpeg_count)
            .map(|i| clean_jpeg(&spec(), case_seed ^ i as u64))
            .chain((0..blob_count).map(|i| blob(case_seed ^ (0xB10B + i as u64), 600 + i * 321)))
            .collect();
        let root = temp_root(&format!("conc-{case_seed:x}-{shards}"));
        let cfg = StoreConfig { shards, ..Default::default() };
        let store = ShardedStore::open(&root, cfg).expect("open");

        let threads = 4;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let store = &store;
                let payloads = &payloads;
                scope.spawn(move || {
                    // Every thread puts every payload (maximal dedup
                    // contention), in a thread-specific order.
                    for i in 0..payloads.len() {
                        let p = &payloads[(i + t) % payloads.len()];
                        let key = store.put(p).expect("put");
                        assert_eq!(key, sha256(p), "address is the content hash");
                    }
                    // And reads everything back, byte-exact.
                    for p in payloads {
                        let got = store.get(&sha256(p)).expect("get").expect("present");
                        assert_eq!(&got, p, "byte-exact round trip");
                    }
                });
            }
        });

        // One block per distinct payload, whatever the interleaving.
        prop_assert_eq!(store.keys().expect("keys").len(), payloads.len());
        // JPEGs were admitted compressed; blobs stayed raw.
        for (i, p) in payloads.iter().enumerate() {
            let fmt = store.format_of(&sha256(p)).expect("format").expect("present");
            if i < jpeg_count {
                prop_assert_eq!(fmt, StoredFormat::Lepton);
            } else {
                prop_assert_eq!(fmt, StoredFormat::Raw);
            }
        }
        std::fs::remove_dir_all(&root).expect("cleanup");
    }

    /// Flipping any payload byte of an on-disk record makes the read
    /// path refuse the block with `Corrupt` — the hash check, not the
    /// caller, is what stands between damage and served data.
    #[test]
    fn corrupted_block_is_detected_not_served(
        seed in any::<u64>(),
        victim_jpeg in any::<bool>(),
        flip_bit in 0u8..8,
    ) {
        let root = temp_root(&format!("corrupt-{seed:x}-{victim_jpeg}-{flip_bit}"));
        let store = ShardedStore::open(&root, StoreConfig::default()).expect("open");
        let payload = if victim_jpeg {
            clean_jpeg(&spec(), seed)
        } else {
            blob(seed, 4000)
        };
        let key = store.put(&payload).expect("put");

        // Find the record on disk and flip one payload bit somewhere
        // past the 13-byte header.
        let path = (0..store.shard_count())
            .map(|i| root.join(format!("shard-{i:03}")).join(hex(&key)))
            .find(|p| p.exists())
            .expect("block file exists");
        let mut bytes = std::fs::read(&path).expect("read");
        let header = 13;
        let idx = header + (seed as usize % (bytes.len() - header));
        bytes[idx] ^= 1 << flip_bit;
        std::fs::write(&path, &bytes).expect("write");

        // A fresh handle (no cache) must never serve wrong bytes.
        drop(store);
        let store = ShardedStore::open(&root, StoreConfig::default()).expect("reopen");
        match store.get(&key) {
            Err(StoreError::Corrupt(k)) => {
                prop_assert_eq!(k, key);
                prop_assert!(
                    store.metrics.corrupt_blocks.get() >= 1
                );
            }
            Ok(Some(bytes)) => {
                // A flipped bit inside a Lepton container can land in
                // semantically-null padding; serving is acceptable
                // only if the bytes are *exactly* the original (a raw
                // block has no such slack — every payload flip must be
                // caught by the hash check).
                prop_assert!(victim_jpeg, "raw block flip must be detected");
                prop_assert_eq!(bytes, payload, "wrong bytes served");
            }
            other => prop_assert!(false, "unexpected outcome: {:?}", other),
        }
        std::fs::remove_dir_all(&root).expect("cleanup");
    }
}

/// A truncated or magic-smashed record is also refused.
#[test]
fn damaged_header_is_refused() {
    let root = temp_root("header");
    let store = ShardedStore::open(&root, StoreConfig::default()).expect("open");
    let payload = blob(7, 2000);
    let key = store.put(&payload).expect("put");
    let path = (0..store.shard_count())
        .map(|i| root.join(format!("shard-{i:03}")).join(hex(&key)))
        .find(|p| p.exists())
        .expect("block file exists");

    // Smash the magic.
    let mut bytes = std::fs::read(&path).expect("read");
    bytes[0] = b'X';
    std::fs::write(&path, &bytes).expect("write");
    assert!(matches!(store.get(&key), Err(StoreError::Corrupt(_))));

    // Truncate below the header.
    std::fs::write(&path, b"LB").expect("write");
    assert!(matches!(store.get(&key), Err(StoreError::Corrupt(_))));
    std::fs::remove_dir_all(&root).expect("cleanup");
}

/// The cache must not mask corruption forever: a block cached before
/// the damage is dropped from the cache once the damage is seen by a
/// cold read elsewhere — but a *hot* read may legitimately serve the
/// still-correct cached bytes. What must never happen is serving wrong
/// bytes: assert the served value, when served, is the original.
#[test]
fn cache_never_serves_wrong_bytes() {
    let root = temp_root("cachecorrupt");
    let store = ShardedStore::open(&root, StoreConfig::default()).expect("open");
    let payload = blob(11, 3000);
    let key = store.put(&payload).expect("put");
    assert_eq!(store.get(&key).expect("get").expect("present"), payload); // cached

    let path = (0..store.shard_count())
        .map(|i| root.join(format!("shard-{i:03}")).join(hex(&key)))
        .find(|p| p.exists())
        .expect("block file exists");
    let mut bytes = std::fs::read(&path).expect("read");
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("write");

    // Hot read: served from cache, still the original bytes.
    assert_eq!(store.get(&key).expect("get").expect("present"), payload);
    // Cold read (fresh handle): the damage is caught.
    drop(store);
    let store = ShardedStore::open(&root, StoreConfig::default()).expect("reopen");
    assert!(matches!(store.get(&key), Err(StoreError::Corrupt(_))));
    std::fs::remove_dir_all(&root).expect("cleanup");
}
