//! Property tests for format-evolution machinery (§6.7): acceptance
//! windows must be exact for arbitrary version pairs, and the
//! deployment registry must never deploy a build that cannot read
//! what the fleet writes — for any registry contents.

use lepton_core::{CompressOptions, LeptonError};
use lepton_storage::deploy::{Build, DeployOutcome, QualificationRegistry, VersionedCodec};
use proptest::prelude::*;

fn arb_build(tag: usize) -> impl Strategy<Value = Build> {
    (1u8..=40, 0u8..=10).prop_map(move |(writes, back)| Build {
        hash: format!("build-{tag}-{writes}-{back}"),
        writes_version: writes,
        accepts_from: writes.saturating_sub(back).max(1),
    })
}

proptest! {
    /// `can_decode` is exactly the closed interval
    /// `[accepts_from, writes_version]` for any build and version.
    #[test]
    fn acceptance_window_is_exact(build in arb_build(0), v in 0u8..=50) {
        let expected = v >= build.accepts_from && v <= build.writes_version;
        prop_assert_eq!(build.can_decode(v), expected);
    }

    /// For any pair of builds, the two §6.7 failure modes fall out of
    /// the window arithmetic: a strictly older build cannot read a
    /// strictly newer file, and a stricter build refuses files below
    /// its floor.
    #[test]
    fn failure_modes_are_window_arithmetic(old in arb_build(1), new in arb_build(2)) {
        if new.writes_version > old.writes_version {
            prop_assert!(!old.can_decode(new.writes_version));
        }
        if old.writes_version < new.accepts_from {
            prop_assert!(!new.can_decode(old.writes_version));
        }
    }

    /// `deploy_safe` never hands out a build that cannot decode what
    /// the newest build writes, no matter what got qualified or which
    /// hash the operator asks for.
    #[test]
    fn deploy_safe_never_deploys_incompatible(
        builds in proptest::collection::vec(arb_build(3), 1..8),
        pick in any::<u8>(),
    ) {
        let mut reg = QualificationRegistry::default();
        for b in &builds {
            reg.qualify(b.clone());
        }
        let newest_writes = reg.newest().unwrap().writes_version;

        // Blank field: must yield the newest build.
        if let DeployOutcome::Deployed(b) = reg.deploy_safe(None) {
            prop_assert_eq!(b.writes_version, newest_writes);
        } else {
            prop_assert!(false, "non-empty registry must default-deploy");
        }

        // Named request: whatever comes back can read the fleet's files.
        let hash = &builds[(pick as usize) % builds.len()].hash;
        if let DeployOutcome::Deployed(b) = reg.deploy_safe(Some(hash)) {
            prop_assert!(b.can_decode(newest_writes));
        }
    }

    /// The historical tool's blank-field default is always the first
    /// qualified build — the reproduced footgun, pinned as a property
    /// so nobody "fixes" the historical model by accident.
    #[test]
    fn legacy_default_is_first_qualified(builds in proptest::collection::vec(arb_build(4), 1..8)) {
        let mut reg = QualificationRegistry::default();
        for b in &builds {
            reg.qualify(b.clone());
        }
        if let DeployOutcome::Deployed(b) = reg.deploy(None) {
            prop_assert_eq!(&b.hash, &builds[0].hash);
        } else {
            prop_assert!(false);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On real containers: a codec accepts exactly the stamps in its
    /// window, and within-window decodes are byte-exact.
    #[test]
    fn versioned_codec_enforces_window_on_real_containers(
        seed in any::<u64>(),
        writes in 2u8..=6,
        stamp in 1u8..=8,
    ) {
        let build = Build {
            hash: "probe".into(),
            writes_version: writes,
            accepts_from: 2,
        };
        let codec = VersionedCodec::new(build.clone(), CompressOptions::default());
        let jpeg = lepton_corpus::builder::clean_jpeg(
            &lepton_corpus::builder::CorpusSpec {
                min_dim: 48,
                max_dim: 96,
                ..Default::default()
            },
            seed,
        );
        let mut container = codec.compress(&jpeg).unwrap();
        prop_assert_eq!(container[2], writes);

        container[2] = stamp;
        match codec.decompress(&container) {
            Ok(out) => {
                prop_assert!(build.can_decode(stamp));
                prop_assert_eq!(out, jpeg);
            }
            Err(LeptonError::UnsupportedVersion(v)) => {
                prop_assert_eq!(v, stamp);
                prop_assert!(!build.can_decode(stamp));
            }
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }
}
