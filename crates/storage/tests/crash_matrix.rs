//! The crash matrix: the store's durability invariant, proven by
//! exhaustion.
//!
//! One seeded put/get/backfill/scrub workload runs once fault-free to
//! count its mutating filesystem operations, then runs again *N* times
//! over [`FaultVfs`] — once per injection point — with the power cut at
//! exactly that operation. After every crash the store is rebooted and
//! reopened (which runs the startup recovery sweep), and the invariant
//! is asserted:
//!
//! * every **acknowledged** put reads back byte-exact;
//! * every **unacknowledged** put is atomically absent, complete, or a
//!   typed refusal — never wrong bytes, never a panic;
//! * recovery leaves no orphaned tmp files and no torn records behind.
//!
//! Quick mode (the default) keeps the workload small enough for CI;
//! `CHAOS_FULL=1` enlarges it and sweeps more seeds. Set
//! `LEPTON_CHAOS_JSON=/path/out.json` to emit a machine-readable
//! summary (faults injected, crashes survived, recovery-time
//! histogram) — the chaos-smoke CI job archives it.

use lepton_corpus::{Corpus, CorpusSpec};
use lepton_storage::blockstore::{ShardedStore, StoreConfig, StoreError};
use lepton_storage::sha256::{sha256, Digest};
use lepton_storage::vfs::{FaultConfig, FaultVfs, Vfs};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

fn full() -> bool {
    std::env::var("CHAOS_FULL").is_ok_and(|v| v == "1")
}

fn store_cfg() -> StoreConfig {
    StoreConfig {
        shards: 4,
        cache_bytes: 0, // every read hits the (virtual) disk
        compress_on_write: false,
        ..StoreConfig::default()
    }
}

/// Deterministic workload bytes: seeded pseudo-random blobs plus a few
/// real JPEGs, so `backfill` genuinely converts (and its rewrite path
/// sits inside the crash matrix too).
fn workload_blobs(seed: u64) -> Vec<Vec<u8>> {
    let (random_n, jpeg_n) = if full() { (16, 3) } else { (5, 2) };
    let mut blobs = Vec::new();
    let mut z = seed | 1;
    for i in 0..random_n {
        let len = 64 + ((z >> 7) % 1800) as usize;
        let mut b = Vec::with_capacity(len);
        for _ in 0..len {
            z = z
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i as u64 + 1);
            b.push((z >> 33) as u8);
        }
        blobs.push(b);
    }
    let corpus = Corpus::generate(&CorpusSpec {
        count: jpeg_n,
        min_dim: 16,
        max_dim: 24,
        clean_fraction: 1.0,
        seed: seed ^ 0x1A6E,
    });
    blobs.extend(corpus.files.into_iter().map(|f| f.data));
    blobs
}

/// Drive the workload, recording every acknowledged put. Errors are
/// expected once the power is cut; what is never acceptable is a panic
/// or a wrong read.
fn run_workload(
    vfs: &Arc<FaultVfs>,
    store: &ShardedStore,
    blobs: &[Vec<u8>],
    acked: &mut Vec<(Digest, Vec<u8>)>,
) {
    for (i, blob) in blobs.iter().enumerate() {
        match store.put(blob) {
            Ok(key) => acked.push((key, blob.clone())),
            Err(StoreError::Io(_) | StoreError::ReadOnly(_)) => {}
            Err(e) => panic!("put may fail only with a typed I/O error, got {e:?}"),
        }
        // Interleave reads: while the machine is up, an acked put must
        // already read back exactly.
        if i % 2 == 1 {
            for (key, expect) in acked.iter() {
                match store.get(key) {
                    Ok(Some(got)) => assert_eq!(&got, expect, "live read must be exact"),
                    Ok(None) => {
                        assert!(vfs.crashed(), "acked put vanished while the machine was up")
                    }
                    Err(_) => {} // powered off or typed refusal
                }
            }
        }
    }
    let _ = store.backfill(1);
    let _ = store.scrub(1);
}

/// Assert the durability invariant against a freshly recovered store.
fn assert_invariant(store: &ShardedStore, blobs: &[Vec<u8>], acked: &[(Digest, Vec<u8>)]) {
    for (key, expect) in acked {
        let got = store
            .get(key)
            .unwrap_or_else(|e| panic!("acked put must be readable after recovery: {e:?}"))
            .unwrap_or_else(|| panic!("acked put missing after recovery"));
        assert_eq!(&got, expect, "acked put must be byte-exact");
    }
    for blob in blobs {
        let key = sha256(blob);
        match store.get(&key) {
            Ok(Some(got)) => assert_eq!(&got, blob, "a present block must be complete"),
            Ok(None) => {}                    // atomically absent
            Err(StoreError::Corrupt(_)) => {} // refused, never served wrong
            Err(e) => panic!("recovered get must not fail with {e:?}"),
        }
    }
    let report = store.recover(false).expect("post-recovery sweep");
    assert_eq!(report.orphans_found, 0, "recovery must sweep every tmp");
    assert_eq!(
        report.torn_found, 0,
        "recovery must quarantine every torn record"
    );
}

#[test]
fn crash_at_every_injection_point_preserves_acked_puts() {
    let seeds: &[u64] = if full() {
        &[0xC4A5_0001, 0xC4A5_0002]
    } else {
        &[0xC4A5_0001]
    };
    let root = Path::new("/store");
    let mut total_points = 0u64;
    let mut crashes_survived = 0u64;
    let mut faults_injected = 0u64;
    let mut recovery_ms: Vec<f64> = Vec::new();

    for &seed in seeds {
        let blobs = workload_blobs(seed);

        // Fault-free replay: size the matrix.
        let vfs = FaultVfs::new(FaultConfig::default());
        let store = ShardedStore::open_on(vfs.clone() as Arc<dyn Vfs>, root, store_cfg())
            .expect("fault-free open");
        let mut acked = Vec::new();
        run_workload(&vfs, &store, &blobs, &mut acked);
        assert_eq!(acked.len(), blobs.len(), "fault-free run acks everything");
        assert_invariant(&store, &blobs, &acked);
        let ops = vfs.op_count();
        assert!(ops > 0, "workload must touch the disk");
        total_points += ops;

        // The matrix: crash at every mutating operation (0-indexed).
        for k in 0..ops {
            let vfs = FaultVfs::new(FaultConfig::crash_only(seed, k));
            let mut acked = Vec::new();
            // A crash during open itself is fine: nothing acked yet.
            if let Ok(store) = ShardedStore::open_on(vfs.clone() as Arc<dyn Vfs>, root, store_cfg())
            {
                run_workload(&vfs, &store, &blobs, &mut acked);
            }
            assert!(vfs.crashed(), "crash point {k} within the replayed ops");
            faults_injected += vfs.fault_log().len() as u64;

            vfs.reboot();
            let t0 = Instant::now();
            let store = ShardedStore::open_on(vfs.clone() as Arc<dyn Vfs>, root, store_cfg())
                .unwrap_or_else(|e| panic!("reopen after crash at {k} must recover: {e:?}"));
            recovery_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            assert_invariant(&store, &blobs, &acked);
            crashes_survived += 1;
        }
    }

    assert_eq!(crashes_survived, total_points);
    write_summary(
        total_points,
        crashes_survived,
        faults_injected,
        &recovery_ms,
    );
}

/// The seeded storm tier: probabilistic EIO / ENOSPC / short writes on
/// top of normal traffic. Every failure must be typed, reads must never
/// return wrong bytes, and an ENOSPC anywhere latches read-only instead
/// of half-writing.
#[test]
fn seeded_fault_storm_never_serves_wrong_bytes() {
    let seeds: u64 = if full() { 24 } else { 6 };
    for seed in 0..seeds {
        let cfg = FaultConfig {
            seed: 0x5708_0000 + seed,
            eio_per_mille: 25,
            enospc_per_mille: 10,
            short_write_per_mille: 25,
            crash_at: None,
        };
        let vfs = FaultVfs::new(cfg);
        let blobs = workload_blobs(0xB10B ^ seed);
        let Ok(store) = ShardedStore::open_on(vfs.clone() as Arc<dyn Vfs>, "/store", store_cfg())
        else {
            continue; // the schedule broke open itself: a typed refusal
        };
        let mut acked = Vec::new();
        for blob in &blobs {
            match store.put(blob) {
                Ok(key) => acked.push((key, blob.clone())),
                Err(StoreError::Io(_) | StoreError::ReadOnly(_)) => {}
                Err(e) => panic!("storm put failed untyped: {e:?}"),
            }
        }
        for (key, expect) in &acked {
            match store.get(key) {
                Ok(Some(got)) => assert_eq!(&got, expect, "storm read must be exact"),
                Ok(None) => panic!("acked put vanished without a crash"),
                Err(StoreError::Io(_) | StoreError::Corrupt(_)) => {}
                Err(e) => panic!("storm get failed untyped: {e:?}"),
            }
        }
        // If the schedule dealt an ENOSPC into the write path, the
        // store must have latched rather than limped.
        if store.is_read_only() {
            let reason = store.read_only_reason().unwrap_or_default();
            assert!(!reason.is_empty(), "a latch always carries its reason");
        }
    }
}

fn write_summary(points: u64, survived: u64, faults: u64, recovery_ms: &[f64]) {
    let Ok(path) = std::env::var("LEPTON_CHAOS_JSON") else {
        return;
    };
    // Fixed buckets (ms) — a coarse histogram is plenty to spot a
    // recovery-time regression in CI artifacts.
    let edges = [1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0];
    let mut buckets = vec![0u64; edges.len() + 1];
    for &ms in recovery_ms {
        let i = edges.iter().position(|&e| ms < e).unwrap_or(edges.len());
        buckets[i] += 1;
    }
    let hist: Vec<String> = edges
        .iter()
        .map(|e| format!("\"<{e}ms\""))
        .chain([format!("\">={}ms\"", edges[edges.len() - 1])])
        .zip(&buckets)
        .map(|(label, n)| format!("{{\"bucket\":{label},\"count\":{n}}}"))
        .collect();
    let json = format!(
        "{{\"suite\":\"crash_matrix\",\"injection_points\":{points},\
\"crashes_survived\":{survived},\"faults_injected\":{faults},\
\"recovery_time_histogram\":[{}]}}\n",
        hist.join(",")
    );
    std::fs::write(&path, json).expect("chaos summary path writable");
}
