//! Determinism contract for [`FaultVfs`]: any chaos failure must be
//! replayable from its logged seed alone.
//!
//! Two instances configured identically and driven through the same
//! workload must inject the same faults at the same operations *and*
//! leave bit-identical post-crash filesystems. If this ever breaks, a
//! crash-matrix failure stops being reproducible — the whole point of
//! seeding the injector.

use lepton_storage::blockstore::{ShardedStore, StoreConfig, StoreError};
use lepton_storage::vfs::{FaultConfig, FaultVfs, Vfs};
use proptest::prelude::*;
use std::sync::Arc;

fn store_cfg() -> StoreConfig {
    StoreConfig {
        shards: 2,
        cache_bytes: 0,
        compress_on_write: false,
        ..StoreConfig::default()
    }
}

/// One deterministic store workload over a fault schedule: open, a few
/// puts, reads, then a power cut, reboot, and recovery reopen. Returns
/// nothing — the vfs carries the observable state.
fn drive(vfs: &Arc<FaultVfs>, blobs: &[Vec<u8>]) {
    let opened = ShardedStore::open_on(vfs.clone() as Arc<dyn Vfs>, "/store", store_cfg());
    if let Ok(store) = opened {
        for blob in blobs {
            match store.put(blob) {
                Ok(key) => {
                    let _ = store.get(&key);
                }
                Err(StoreError::Io(_) | StoreError::ReadOnly(_)) => {}
                Err(e) => panic!("untyped put failure: {e:?}"),
            }
        }
        let _ = store.recover(false);
    }
    vfs.power_cut();
    vfs.reboot();
    // Recovery reopen is part of the determinism surface too.
    let _ = ShardedStore::open_on(vfs.clone() as Arc<dyn Vfs>, "/store", store_cfg());
}

fn blobs_from(seed: u64, n: usize) -> Vec<Vec<u8>> {
    let mut z = seed | 1;
    (0..n)
        .map(|i| {
            let len = 16 + ((z >> 9) % 600) as usize;
            (0..len)
                .map(|_| {
                    z = z
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64 + 1);
                    (z >> 33) as u8
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Identical seeds ⇒ identical fault schedules and identical
    /// post-crash filesystem states, across the full storm + crash
    /// parameter space.
    #[test]
    fn identical_seeds_replay_identically(
        seed in any::<u64>(),
        eio in 0u16..80,
        enospc in 0u16..40,
        short in 0u16..80,
        crash_raw in 0u64..400,
        nblobs in 1usize..6,
    ) {
        let cfg = FaultConfig {
            seed,
            eio_per_mille: eio,
            enospc_per_mille: enospc,
            short_write_per_mille: short,
            // Half the space crashes at an op index, half never does.
            crash_at: (crash_raw < 200).then_some(crash_raw),
        };
        let blobs = blobs_from(seed ^ 0xB10B, nblobs);
        let a = FaultVfs::new(cfg);
        let b = FaultVfs::new(cfg);
        drive(&a, &blobs);
        drive(&b, &blobs);
        prop_assert_eq!(a.fault_log(), b.fault_log(), "schedules must match");
        prop_assert_eq!(a.dump(), b.dump(), "surviving filesystems must match");
        prop_assert_eq!(a.op_count(), b.op_count(), "op counters must match");
    }

    /// A different seed is allowed to differ — and over enough ops it
    /// must: a schedule that ignores its seed would silently turn the
    /// storm deterministic-but-unconfigurable.
    #[test]
    fn different_seeds_eventually_diverge(seed in any::<u64>()) {
        let mk = |s: u64| FaultConfig {
            seed: s,
            eio_per_mille: 120,
            enospc_per_mille: 60,
            short_write_per_mille: 120,
            crash_at: None,
        };
        let blobs = blobs_from(seed ^ 0xD1FF, 5);
        let a = FaultVfs::new(mk(seed));
        let b = FaultVfs::new(mk(seed ^ 0x5EED_F00D));
        drive(&a, &blobs);
        drive(&b, &blobs);
        // With ~30% per-op fault mass over dozens of ops, two seeds
        // agreeing on every draw is astronomically unlikely.
        prop_assert_ne!(a.fault_log(), b.fault_log(), "seed must matter");
    }
}
