//! Content-addressed block storage with transparent Lepton
//! recompression — the paper's blockserver back-end in library form.
//!
//! The Dropbox back-end stores files as up-to-4-MiB chunks addressed by
//! SHA-256 (§1, §5.6). Uploads of JPEG chunks are Lepton-compressed
//! *transparently*: a chunk is admitted in Lepton form only after a
//! byte-exact round-trip check; everything else falls back to Deflate
//! (§5.7). Downloads decompress on the fly; clients never see anything
//! but their original bytes.
//!
//! Operational controls from the paper are modeled too: the `/dev/shm`
//! shutoff switch (§5.7), the safety-net double-write (§5.7/§6.5), and
//! per-operation accounting that the cluster simulator consumes.
//!
//! Two stores live here: [`BlockStore`] is the in-memory model used by
//! the simulators and tests, and [`blockstore::ShardedStore`] is the
//! durable, sharded, disk-backed store the `lepton store` CLI and the
//! conversion service run on.

pub mod blockstore;
pub mod deploy;
pub mod sha256;
pub mod vfs;

use lepton_core::{CompressOptions, ExitCode, LeptonError};
use parking_lot::{Mutex, RwLock};
use sha256::{sha256, Digest};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The paper's chunk size: 4 MiB.
pub const CHUNK_SIZE: usize = 4 << 20;

/// How a stored chunk is encoded at rest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoredFormat {
    /// Lepton container (JPEG chunk that round-tripped).
    Lepton,
    /// zlib/Deflate fallback.
    Deflate,
    /// Raw (incompressible even by Deflate).
    Raw,
}

#[derive(Clone, Debug)]
struct StoredChunk {
    format: StoredFormat,
    payload: Vec<u8>,
    original_len: usize,
}

/// Operation counters (drives §5 accounting and the cluster simulator).
#[derive(Debug, Default)]
pub struct StoreMetrics {
    /// Chunks admitted in Lepton form.
    pub lepton_chunks: AtomicU64,
    /// Chunks stored Deflate.
    pub deflate_chunks: AtomicU64,
    /// Chunks stored raw.
    pub raw_chunks: AtomicU64,
    /// Total original bytes ingested.
    pub bytes_in: AtomicU64,
    /// Total bytes at rest.
    pub bytes_stored: AtomicU64,
    /// Lepton decodes served.
    pub lepton_decodes: AtomicU64,
    /// Round-trip failures (fell back to Deflate).
    pub roundtrip_failures: AtomicU64,
}

impl StoreMetrics {
    /// Current storage savings fraction (0..1).
    pub fn savings(&self) -> f64 {
        let inb = self.bytes_in.load(Ordering::Relaxed) as f64;
        let st = self.bytes_stored.load(Ordering::Relaxed) as f64;
        if inb == 0.0 {
            0.0
        } else {
            1.0 - st / inb
        }
    }
}

/// The content-addressed chunk store.
pub struct BlockStore {
    chunks: RwLock<BTreeMap<Digest, StoredChunk>>,
    opts: CompressOptions,
    /// The §5.7 shutoff switch: when set, no new Lepton encodes happen
    /// (decodes of existing chunks continue).
    shutoff: AtomicBool,
    /// Safety net (§5.7): uncompressed duplicates kept during ramp-up.
    safety_net: Mutex<Option<BTreeMap<Digest, Vec<u8>>>>,
    /// Exit-code tally (§6.2 table).
    pub exit_codes: Mutex<BTreeMap<ExitCode, u64>>,
    /// Operation metrics.
    pub metrics: StoreMetrics,
}

impl Default for BlockStore {
    fn default() -> Self {
        Self::new(CompressOptions::default())
    }
}

impl BlockStore {
    /// New store with the given Lepton options.
    pub fn new(opts: CompressOptions) -> Self {
        BlockStore {
            chunks: RwLock::new(BTreeMap::new()),
            opts,
            shutoff: AtomicBool::new(false),
            safety_net: Mutex::new(None),
            exit_codes: Mutex::new(BTreeMap::new()),
            metrics: StoreMetrics::default(),
        }
    }

    /// Engage/disengage the Lepton shutoff switch (§5.7: "a script can
    /// populate the file across all hosts within 30 seconds").
    pub fn set_shutoff(&self, on: bool) {
        self.shutoff.store(on, Ordering::SeqCst);
    }

    /// Enable the safety net: every chunk is *also* stored uncompressed
    /// (the paper's S3 double-write during ramp-up, §5.7/§6.5).
    pub fn enable_safety_net(&self) {
        *self.safety_net.lock() = Some(BTreeMap::new());
    }

    /// Drop the safety net (the paper eventually deleted theirs).
    pub fn delete_safety_net(&self) {
        *self.safety_net.lock() = None;
    }

    fn record_exit(&self, code: ExitCode) {
        *self.exit_codes.lock().entry(code).or_insert(0) += 1;
    }

    /// Store one chunk (≤ 4 MiB); returns its content address.
    ///
    /// JPEG-looking chunks are Lepton-compressed and **verified by a
    /// full round trip before admission**; on any failure the chunk is
    /// stored Deflate (never rejected — durability first).
    pub fn put_chunk(&self, data: &[u8]) -> Digest {
        assert!(data.len() <= CHUNK_SIZE, "chunks are at most 4 MiB");
        let key = sha256(data);
        if self.chunks.read().contains_key(&key) {
            return key; // dedup
        }
        self.metrics
            .bytes_in
            .fetch_add(data.len() as u64, Ordering::Relaxed);

        if let Some(net) = self.safety_net.lock().as_mut() {
            net.insert(key, data.to_vec());
        }

        let lepton_allowed = !self.shutoff.load(Ordering::SeqCst);
        let stored = if lepton_allowed {
            match self.try_lepton(data) {
                Ok(payload) => {
                    self.record_exit(ExitCode::Success);
                    self.metrics.lepton_chunks.fetch_add(1, Ordering::Relaxed);
                    Some(StoredChunk {
                        format: StoredFormat::Lepton,
                        payload,
                        original_len: data.len(),
                    })
                }
                Err(e) => {
                    self.record_exit(ExitCode::classify(&e));
                    if matches!(e, LeptonError::RoundtripFailed) {
                        self.metrics
                            .roundtrip_failures
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    None
                }
            }
        } else {
            self.record_exit(ExitCode::ServerShutdown);
            None
        };

        let stored = stored.unwrap_or_else(|| {
            let z = lepton_deflate::zlib_compress(data, lepton_deflate::Level::Default);
            if z.len() < data.len() {
                self.metrics.deflate_chunks.fetch_add(1, Ordering::Relaxed);
                StoredChunk {
                    format: StoredFormat::Deflate,
                    payload: z,
                    original_len: data.len(),
                }
            } else {
                self.metrics.raw_chunks.fetch_add(1, Ordering::Relaxed);
                StoredChunk {
                    format: StoredFormat::Raw,
                    payload: data.to_vec(),
                    original_len: data.len(),
                }
            }
        });
        self.metrics
            .bytes_stored
            .fetch_add(stored.payload.len() as u64, Ordering::Relaxed);
        self.chunks.write().insert(key, stored);
        key
    }

    /// Lepton-compress with round-trip verification (the admission rule).
    fn try_lepton(&self, data: &[u8]) -> Result<Vec<u8>, LeptonError> {
        let mut opts = self.opts.clone();
        opts.verify = true; // non-negotiable for admission
        lepton_core::Engine::global().compress(data, &opts)
    }

    /// Retrieve a chunk's original bytes.
    pub fn get_chunk(&self, key: &Digest) -> Option<Vec<u8>> {
        let guard = self.chunks.read();
        let c = guard.get(key)?;
        match c.format {
            StoredFormat::Lepton => {
                self.metrics.lepton_decodes.fetch_add(1, Ordering::Relaxed);
                // Decode failures of admitted chunks would be the
                // paper's page-a-human alarm; surface as None. Decode
                // with the store's own model config: the container does
                // not negotiate the model, so a store running an
                // ablation model must read with the same one it wrote.
                lepton_core::Engine::global()
                    .decompress_opts(
                        &c.payload,
                        &lepton_core::DecompressOptions {
                            model: self.opts.model,
                            budget: self.opts.budget,
                        },
                    )
                    .ok()
            }
            StoredFormat::Deflate => {
                lepton_deflate::zlib_decompress(&c.payload, c.original_len).ok()
            }
            StoredFormat::Raw => Some(c.payload.clone()),
        }
    }

    /// How a chunk is stored (for tests/metrics).
    pub fn format_of(&self, key: &Digest) -> Option<StoredFormat> {
        self.chunks.read().get(key).map(|c| c.format)
    }

    /// Bytes at rest for a chunk.
    pub fn stored_size(&self, key: &Digest) -> Option<usize> {
        self.chunks.read().get(key).map(|c| c.payload.len())
    }

    /// Store a whole file: split into 4-MiB chunks, store each, return
    /// the chunk list (the paper's per-file manifest).
    pub fn put_file(&self, data: &[u8]) -> Vec<Digest> {
        data.chunks(CHUNK_SIZE).map(|c| self.put_chunk(c)).collect()
    }

    /// Reassemble a file from its manifest.
    pub fn get_file(&self, manifest: &[Digest]) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        for key in manifest {
            out.extend(self.get_chunk(key)?);
        }
        Some(out)
    }

    /// Recover a chunk from the safety net (disaster-recovery drill,
    /// §5.7).
    pub fn recover_from_safety_net(&self, key: &Digest) -> Option<Vec<u8>> {
        self.safety_net.lock().as_ref()?.get(key).cloned()
    }

    /// Number of chunks at rest.
    pub fn chunk_count(&self) -> usize {
        self.chunks.read().len()
    }

    /// Re-encode every Deflate/Raw chunk through Lepton (the backfill
    /// worker's inner loop, §5.6). Returns (converted, bytes saved).
    pub fn backfill_pass(&self) -> (usize, u64) {
        let keys: Vec<Digest> = {
            let guard = self.chunks.read();
            guard
                .iter()
                .filter(|(_, c)| c.format != StoredFormat::Lepton)
                .map(|(k, _)| *k)
                .collect()
        };
        let mut converted = 0usize;
        let mut saved = 0u64;
        for key in keys {
            if self.shutoff.load(Ordering::SeqCst) {
                break;
            }
            let Some(original) = self.get_chunk(&key) else {
                continue;
            };
            // The §5.6 worker "double-checks the result" — try_lepton
            // verifies, and we decode once more before committing.
            let Ok(lepton) = self.try_lepton(&original) else {
                continue;
            };
            if lepton_core::decompress(&lepton).as_deref() != Ok(original.as_slice()) {
                self.record_exit(ExitCode::RoundtripFailed);
                continue;
            }
            let mut guard = self.chunks.write();
            if let Some(c) = guard.get_mut(&key) {
                if lepton.len() < c.payload.len() {
                    saved += (c.payload.len() - lepton.len()) as u64;
                    c.payload = lepton;
                    c.format = StoredFormat::Lepton;
                    converted += 1;
                }
            }
        }
        (converted, saved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lepton_corpus::builder::{clean_jpeg, CorpusSpec};

    fn spec() -> CorpusSpec {
        CorpusSpec {
            min_dim: 64,
            max_dim: 160,
            ..Default::default()
        }
    }

    #[test]
    fn jpeg_chunk_stored_as_lepton() {
        let store = BlockStore::default();
        let jpg = clean_jpeg(&spec(), 1);
        let key = store.put_chunk(&jpg);
        assert_eq!(store.format_of(&key), Some(StoredFormat::Lepton));
        assert_eq!(store.get_chunk(&key).unwrap(), jpg);
        assert!(store.stored_size(&key).unwrap() < jpg.len());
        assert!(store.metrics.savings() > 0.0);
    }

    #[test]
    fn non_jpeg_falls_back_to_deflate() {
        let store = BlockStore::default();
        let data = b"text data that deflate handles".repeat(20);
        let key = store.put_chunk(&data);
        assert_eq!(store.format_of(&key), Some(StoredFormat::Deflate));
        assert_eq!(store.get_chunk(&key).unwrap(), data);
    }

    #[test]
    fn incompressible_stored_raw() {
        let mut x = 1u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        let store = BlockStore::default();
        let key = store.put_chunk(&data);
        assert_eq!(store.format_of(&key), Some(StoredFormat::Raw));
        assert_eq!(store.get_chunk(&key).unwrap(), data);
    }

    #[test]
    fn dedup_by_content() {
        let store = BlockStore::default();
        let jpg = clean_jpeg(&spec(), 2);
        let k1 = store.put_chunk(&jpg);
        let k2 = store.put_chunk(&jpg);
        assert_eq!(k1, k2);
        assert_eq!(store.chunk_count(), 1);
    }

    #[test]
    fn file_roundtrip() {
        let store = BlockStore::default();
        let jpg = clean_jpeg(&spec(), 3);
        let manifest = store.put_file(&jpg);
        assert_eq!(store.get_file(&manifest).unwrap(), jpg);
    }

    #[test]
    fn shutoff_switch_blocks_new_encodes() {
        let store = BlockStore::default();
        store.set_shutoff(true);
        let jpg = clean_jpeg(&spec(), 4);
        let key = store.put_chunk(&jpg);
        assert_ne!(store.format_of(&key), Some(StoredFormat::Lepton));
        assert_eq!(store.get_chunk(&key).unwrap(), jpg);
        // Exit code accounting saw the shutdown.
        assert!(store
            .exit_codes
            .lock()
            .contains_key(&ExitCode::ServerShutdown));
        // And backfill converts it once re-enabled.
        store.set_shutoff(false);
        let (converted, saved) = store.backfill_pass();
        assert_eq!(converted, 1);
        assert!(saved > 0);
        assert_eq!(store.format_of(&key), Some(StoredFormat::Lepton));
        assert_eq!(store.get_chunk(&key).unwrap(), jpg);
    }

    #[test]
    fn safety_net_recovers() {
        let store = BlockStore::default();
        store.enable_safety_net();
        let jpg = clean_jpeg(&spec(), 5);
        let key = store.put_chunk(&jpg);
        assert_eq!(store.recover_from_safety_net(&key).unwrap(), jpg);
        store.delete_safety_net();
        assert!(store.recover_from_safety_net(&key).is_none());
    }

    #[test]
    fn corrupt_jpeg_families_fall_back() {
        use lepton_corpus::corrupt;
        let store = BlockStore::default();
        let jpg = clean_jpeg(&spec(), 6);
        for data in [
            corrupt::progressive_lookalike(&jpg),
            corrupt::truncate(&jpg, 0.5),
            corrupt::cmyk_stub(7),
            corrupt::soi_prefixed_garbage(2000, 8),
        ] {
            let key = store.put_chunk(&data);
            assert_eq!(store.get_chunk(&key).unwrap(), data, "durability first");
            assert_ne!(store.format_of(&key), Some(StoredFormat::Lepton));
        }
        let codes = store.exit_codes.lock();
        assert!(codes.keys().any(|c| *c == ExitCode::Progressive));
    }

    #[test]
    fn exit_code_table_accumulates() {
        let store = BlockStore::default();
        for seed in 0..3 {
            store.put_chunk(&clean_jpeg(&spec(), seed));
        }
        let codes = store.exit_codes.lock();
        assert_eq!(codes.get(&ExitCode::Success), Some(&3));
    }
}
