//! The storage filesystem boundary: a [`Vfs`] trait the blockstore
//! writes through, with a passthrough [`RealVfs`] for production and a
//! deterministic, seeded [`FaultVfs`] for crash-consistency testing.
//!
//! The paper's deployment promise — recompress hundreds of petabytes
//! and "never lose or corrupt a single byte" — is only as strong as
//! the write protocol's behaviour under hostile *environments*: a
//! power cut between `write` and `fsync`, a rename the directory never
//! learned about, a disk that fills mid-record. `FaultVfs` makes those
//! environments reproducible: it is a fully in-memory filesystem that
//! models POSIX durability (file contents become crash-durable only at
//! `sync_all`; names become crash-durable only when the parent
//! directory is fsynced) and injects faults — EIO, ENOSPC, short
//! writes — on a schedule derived purely from a seed and a
//! monotonically increasing operation counter. A simulated power cut
//! ("crash at injection point k") discards everything that was never
//! fsynced, applying a per-file *remnant policy* (lose the unsynced
//! tail, keep a torn prefix of it, or keep it all) and reverting
//! renames whose directory entry never reached the platter.
//!
//! Every decision is a pure function of `(seed, op counter)`, so any
//! chaos-test failure is replayable from its logged seed — the same
//! discipline the torture rig applies to hostile inputs, extended to
//! hostile hardware.

use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An open file handle obtained from a [`Vfs`].
pub trait VfsFile: Read + Write + Send {
    /// Flush file *content* to durable storage (POSIX `fsync`). Does
    /// not make the file's directory entry durable — that is
    /// [`Vfs::sync_dir`]'s job.
    fn sync_all(&mut self) -> io::Result<()>;

    /// Total file length in bytes.
    fn len(&self) -> io::Result<u64>;

    /// Whether the file is empty.
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// The filesystem operations the storage layer is allowed to use.
///
/// Everything the blockstore does to disk goes through this trait, so
/// a single swap point decides whether writes land on the real
/// filesystem or inside the deterministic fault injector.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Create (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Open an existing file for reading.
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Atomically rename `from` to `to` (same directory in practice).
    /// Crash-durable only once the parent directory is fsynced.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Remove a file; `NotFound` if absent.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Create a directory and any missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// Fsync a directory, making its entries (creations, renames,
    /// removals) crash-durable.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;

    /// File names (not paths) of the direct children of `path`.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<String>>;

    /// Whether a file or directory exists at `path`.
    fn exists(&self, path: &Path) -> bool;

    /// Read an entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut f = self.open(path)?;
        let mut buf = Vec::new();
        f.read_to_end(&mut buf)?;
        Ok(buf)
    }

    /// Create a file with the given contents and fsync it. The name is
    /// crash-durable only after a [`Vfs::sync_dir`] of the parent.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut f = self.create(path)?;
        f.write_all(data)?;
        f.sync_all()
    }
}

// ---------------------------------------------------------------------------
// RealVfs: the production passthrough.
// ---------------------------------------------------------------------------

/// Passthrough to `std::fs` — what production stores run on.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

struct RealFile(std::fs::File);

impl Read for RealFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.0.read(buf)
    }
}

impl Write for RealFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl VfsFile for RealFile {
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
    fn len(&self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }
}

impl Vfs for RealVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(std::fs::File::create(path)?)))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(std::fs::File::open(path)?)))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Directory fsync: open the directory and fsync the handle.
        // On platforms where directories cannot be opened as files
        // (Windows), rename durability is the filesystem's problem and
        // this is a no-op.
        #[cfg(unix)]
        {
            std::fs::File::open(path)?.sync_all()
        }
        #[cfg(not(unix))]
        {
            let _ = path;
            Ok(())
        }
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            if let Some(name) = entry?.file_name().to_str() {
                out.push(name.to_string());
            }
        }
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
}

// ---------------------------------------------------------------------------
// FaultVfs: deterministic fault injection + power-cut simulation.
// ---------------------------------------------------------------------------

/// A fault the injector can produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Generic I/O failure; nothing was written.
    Eio,
    /// Disk full (`ENOSPC`); nothing was written.
    Enospc,
    /// Partial write: a prefix of the buffer landed, then EIO.
    ShortWrite,
    /// Simulated power cut: all un-fsynced state is discarded.
    PowerCut,
}

/// One injected fault, for the replay log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Operation counter value at injection.
    pub op: u64,
    /// What was injected.
    pub kind: FaultKind,
    /// Path the failing operation targeted.
    pub path: String,
}

/// Configuration for [`FaultVfs`]. Probabilities are per-mille and
/// drawn independently per mutating operation from `(seed, op)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultConfig {
    /// Seed every schedule decision derives from.
    pub seed: u64,
    /// EIO probability per mutating op (‰).
    pub eio_per_mille: u16,
    /// ENOSPC probability per mutating op (‰).
    pub enospc_per_mille: u16,
    /// Short-write probability per write call (‰).
    pub short_write_per_mille: u16,
    /// Power-cut at this mutating-op index (the crash matrix sweeps
    /// this over every index). `None` = never.
    pub crash_at: Option<u64>,
}

impl FaultConfig {
    /// A schedule that injects nothing — pure crash-matrix mode.
    pub fn crash_only(seed: u64, crash_at: u64) -> Self {
        FaultConfig {
            seed,
            crash_at: Some(crash_at),
            ..Default::default()
        }
    }
}

/// One file in the in-memory filesystem.
#[derive(Clone, Debug, Default)]
struct Node {
    /// What reads observe now.
    live: Vec<u8>,
    /// Content as of the last successful `sync_all` (what a crash
    /// preserves, modulo the remnant policy applied to the tail).
    durable: Vec<u8>,
    /// Whether `sync_all` ever succeeded on this incarnation.
    content_synced: bool,
    /// Whether this *name* survives a crash (parent dir fsynced since
    /// the entry appeared here).
    name_durable: bool,
    /// Where the durable view still thinks this file lives: set by
    /// rename until the parent directory is fsynced. On crash the file
    /// reappears under this name (rename-without-dir-fsync reordering).
    crash_alias: Option<(PathBuf, bool)>,
}

#[derive(Debug, Default)]
struct FsState {
    files: BTreeMap<PathBuf, Node>,
    dirs: BTreeSet<PathBuf>,
    /// Names removed in the live view whose removal is not yet
    /// dir-synced: (path, node as it was). A crash resurrects them.
    pending_removals: Vec<(PathBuf, Node)>,
    op: u64,
    crashed: bool,
    log: Vec<FaultEvent>,
    injected: VecDeque<FaultKind>,
}

/// Deterministic in-memory filesystem with seeded fault injection and
/// power-cut simulation. See the module docs for the durability model.
pub struct FaultVfs {
    cfg: FaultConfig,
    state: Arc<Mutex<FsState>>,
}

impl std::fmt::Debug for FaultVfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("FaultVfs")
            .field("seed", &self.cfg.seed)
            .field("op", &st.op)
            .field("crashed", &st.crashed)
            .field("files", &st.files.len())
            .finish()
    }
}

/// SplitMix64: the schedule's only source of randomness. A pure
/// function of its input, so `(seed, op)` fully determines every
/// injection decision.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn path_hash(p: &Path) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in p.as_os_str().as_encoded_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn eio(msg: &str) -> io::Error {
    io::Error::other(format!("injected fault: {msg}"))
}

fn enospc() -> io::Error {
    // Carry the real errno so the store's ENOSPC detection sees
    // exactly what a full disk would produce.
    io::Error::from_raw_os_error(28)
}

fn powered_off() -> io::Error {
    io::Error::other("simulated power cut: node is down")
}

impl FaultVfs {
    /// Build a fault-injecting filesystem with the given schedule.
    pub fn new(cfg: FaultConfig) -> Arc<Self> {
        Arc::new(FaultVfs {
            cfg,
            state: Arc::new(Mutex::new(FsState::default())),
        })
    }

    /// The configured schedule.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Mutating operations performed so far — the size of the crash
    /// matrix for a given workload.
    pub fn op_count(&self) -> u64 {
        self.state.lock().op
    }

    /// Whether the simulated machine is currently powered off.
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Every fault injected so far, in order.
    pub fn fault_log(&self) -> Vec<FaultEvent> {
        self.state.lock().log.clone()
    }

    /// Queue a one-shot fault for the next mutating operation,
    /// regardless of the seeded schedule — targeted injection for
    /// tests ("the next fsync hits ENOSPC").
    pub fn inject_next(&self, kind: FaultKind) {
        self.state.lock().injected.push_back(kind);
    }

    /// Cut power *now*: discard all un-fsynced state (applying the
    /// remnant policy to unsynced tails) and refuse every operation
    /// until [`FaultVfs::reboot`]. Idempotent.
    pub fn power_cut(&self) {
        let mut st = self.state.lock();
        if !st.crashed {
            let op = st.op;
            Self::crash_locked(&self.cfg, &mut st, op);
        }
    }

    /// Bring the machine back up after a power cut. The surviving
    /// state is exactly what the crash semantics preserved.
    pub fn reboot(&self) {
        self.state.lock().crashed = false;
    }

    /// The surviving live view: path → contents, sorted. Two
    /// `FaultVfs` instances driven identically must dump identically —
    /// the determinism contract the proptest pins down.
    pub fn dump(&self) -> BTreeMap<PathBuf, Vec<u8>> {
        let st = self.state.lock();
        st.files
            .iter()
            .map(|(p, n)| (p.clone(), n.live.clone()))
            .collect()
    }

    /// Apply power-cut semantics to the filesystem state.
    fn crash_locked(cfg: &FaultConfig, st: &mut FsState, op: u64) {
        st.crashed = true;
        st.log.push(FaultEvent {
            op,
            kind: FaultKind::PowerCut,
            path: String::new(),
        });
        let files = std::mem::take(&mut st.files);
        let mut survivors: BTreeMap<PathBuf, Node> = BTreeMap::new();
        for (path, mut node) in files {
            // Resolve the surviving *name* first: a rename that was
            // never dir-synced reverts to the old name if that name
            // was durable, otherwise (both names volatile) the record
            // vanishes entirely.
            let surviving_name = if node.name_durable {
                Some(path.clone())
            } else {
                match node.crash_alias.take() {
                    Some((alias, true)) => Some(alias),
                    _ => None,
                }
            };
            let Some(name) = surviving_name else { continue };
            if !node.content_synced {
                // Created, written, never fsynced — but the name was
                // durable (e.g. recreated over an old entry): content
                // is at the mercy of the page cache. Remnant policy.
                node.live = remnant(cfg.seed, op, &name, &[], &node.live);
            } else if node.live != node.durable {
                let base = std::mem::take(&mut node.durable);
                let tail_src = std::mem::take(&mut node.live);
                node.live = remnant(cfg.seed, op, &name, &base, &tail_src);
            }
            node.durable = node.live.clone();
            node.content_synced = true;
            node.name_durable = true;
            node.crash_alias = None;
            survivors.insert(name, node);
        }
        // Un-dir-synced removals never happened, as far as the platter
        // is concerned: the old entry comes back.
        for (path, node) in std::mem::take(&mut st.pending_removals) {
            survivors.entry(path).or_insert(node);
        }
        st.files = survivors;
    }
}

/// Count a mutating operation and decide whether it faults. Every
/// injected fault is logged. Returns `Ok(op_index)` when the op
/// proceeds; for `ShortWrite` the caller receives deterministic
/// entropy to derive the prefix length that lands before failing.
fn gate(
    cfg: &FaultConfig,
    st: &mut FsState,
    path: &Path,
    is_write: bool,
) -> Result<u64, InjectedFault> {
    if st.crashed {
        return Err(InjectedFault::Crashed);
    }
    let op = st.op;
    st.op += 1;
    if cfg.crash_at == Some(op) {
        FaultVfs::crash_locked(cfg, st, op);
        return Err(InjectedFault::Crashed);
    }
    let forced = st.injected.pop_front();
    let kind = match forced {
        Some(k) => Some(k),
        None => {
            let r = mix(cfg.seed ^ mix(op)) % 1000;
            let eio_t = cfg.eio_per_mille as u64;
            let enospc_t = eio_t + cfg.enospc_per_mille as u64;
            let short_t = enospc_t + cfg.short_write_per_mille as u64;
            if r < eio_t {
                Some(FaultKind::Eio)
            } else if r < enospc_t {
                Some(FaultKind::Enospc)
            } else if r < short_t && is_write {
                Some(FaultKind::ShortWrite)
            } else {
                None
            }
        }
    };
    match kind {
        None => Ok(op),
        Some(FaultKind::PowerCut) => {
            FaultVfs::crash_locked(cfg, st, op);
            Err(InjectedFault::Crashed)
        }
        Some(k) => {
            st.log.push(FaultEvent {
                op,
                kind: k,
                path: path.display().to_string(),
            });
            match k {
                FaultKind::Eio => Err(InjectedFault::Eio),
                FaultKind::Enospc => Err(InjectedFault::Enospc),
                FaultKind::ShortWrite => Err(InjectedFault::Short(mix(
                    cfg.seed ^ mix(op ^ SHORT_WRITE_SALT)
                ))),
                FaultKind::PowerCut => unreachable!(),
            }
        }
    }
}

/// Salt decorrelating the short-write prefix draw from the
/// inject-or-not draw at the same op index.
const SHORT_WRITE_SALT: u64 = 0x00A1_77E5;

enum InjectedFault {
    Crashed,
    Eio,
    Enospc,
    /// Raw entropy the write path turns into a prefix length.
    Short(u64),
}

impl InjectedFault {
    fn into_io(self) -> io::Error {
        match self {
            InjectedFault::Crashed => powered_off(),
            InjectedFault::Eio => eio("EIO"),
            InjectedFault::Enospc => enospc(),
            InjectedFault::Short(_) => eio("short write"),
        }
    }
}

/// Crash remnant policy for a file's un-fsynced tail: deterministically
/// lose it, keep a torn prefix of it, or keep it whole.
fn remnant(seed: u64, op: u64, path: &Path, durable: &[u8], live: &[u8]) -> Vec<u8> {
    let h = mix(seed ^ mix(op) ^ path_hash(path));
    // The durable prefix always survives; only bytes beyond it are at
    // risk. (A rewrite shorter than the durable content can also leave
    // the durable bytes — we model the simpler append-mostly store.)
    let keep_base = durable.len().min(live.len());
    let tail = &live[keep_base..];
    let mut out = durable.to_vec();
    match h % 3 {
        0 => {} // post-write-pre-fsync loss: tail gone
        1 => {
            // Torn write: a strict prefix of the tail survives.
            if !tail.is_empty() {
                let cut = ((h >> 8) as usize) % tail.len();
                out.extend_from_slice(&tail[..cut]);
            }
        }
        _ => out.extend_from_slice(tail), // lucky: everything landed
    }
    out
}

/// An open handle into a [`FaultVfs`] file.
struct FaultFile {
    cfg: FaultConfig,
    state: Arc<Mutex<FsState>>,
    path: PathBuf,
    pos: usize,
    writable: bool,
}

impl Read for FaultFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let st = self.state.lock();
        if st.crashed {
            return Err(powered_off());
        }
        let node = st
            .files
            .get(&self.path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file vanished"))?;
        let avail = node.live.len().saturating_sub(self.pos);
        let n = avail.min(buf.len());
        buf[..n].copy_from_slice(&node.live[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if !self.writable {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "read-only handle",
            ));
        }
        let mut st = self.state.lock();
        let gated = gate(&self.cfg, &mut st, &self.path, true);
        let short = match gated {
            Ok(_) => None,
            Err(InjectedFault::Short(h)) if !buf.is_empty() => Some((h as usize) % buf.len()),
            Err(f) => return Err(f.into_io()),
        };
        let node = st
            .files
            .get_mut(&self.path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file vanished"))?;
        match short {
            None => {
                node.live.extend_from_slice(buf);
                self.pos += buf.len();
                Ok(buf.len())
            }
            Some(cut) => {
                // A prefix lands, then the device errors: exactly the
                // failure `write_all` cannot paper over.
                node.live.extend_from_slice(&buf[..cut]);
                self.pos += cut;
                Err(eio("short write"))
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl VfsFile for FaultFile {
    fn sync_all(&mut self) -> io::Result<()> {
        let mut st = self.state.lock();
        if self.writable {
            gate(&self.cfg, &mut st, &self.path, false).map_err(InjectedFault::into_io)?;
        } else if st.crashed {
            return Err(powered_off());
        }
        let node = st
            .files
            .get_mut(&self.path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file vanished"))?;
        node.durable = node.live.clone();
        node.content_synced = true;
        Ok(())
    }

    fn len(&self) -> io::Result<u64> {
        let st = self.state.lock();
        if st.crashed {
            return Err(powered_off());
        }
        let node = st
            .files
            .get(&self.path)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "file vanished"))?;
        Ok(node.live.len() as u64)
    }
}

impl Vfs for FaultVfs {
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let mut st = self.state.lock();
        gate(&self.cfg, &mut st, path, false).map_err(InjectedFault::into_io)?;
        if let Some(parent) = path.parent() {
            if !st.dirs.contains(parent) {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    "parent directory does not exist",
                ));
            }
        }
        st.files.insert(path.to_path_buf(), Node::default());
        drop(st);
        Ok(Box::new(FaultFile {
            cfg: self.cfg,
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
            pos: 0,
            writable: true,
        }))
    }

    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let st = self.state.lock();
        if st.crashed {
            return Err(powered_off());
        }
        if !st.files.contains_key(path) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "no such file"));
        }
        drop(st);
        Ok(Box::new(FaultFile {
            cfg: self.cfg,
            state: Arc::clone(&self.state),
            path: path.to_path_buf(),
            pos: 0,
            writable: false,
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.state.lock();
        gate(&self.cfg, &mut st, from, false).map_err(InjectedFault::into_io)?;
        let mut node = st
            .files
            .remove(from)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "rename source missing"))?;
        // The durable view still knows the file by its old name until
        // the directory is fsynced; remember whether that old name
        // would itself have survived a crash.
        let old_name_durable = node.name_durable;
        if node.crash_alias.is_none() {
            node.crash_alias = Some((from.to_path_buf(), old_name_durable));
        }
        node.name_durable = false;
        // Rename over an existing durable entry: the target's old
        // content is what a crash would reveal — modelled as a pending
        // removal so it resurrects if the dir-sync never happens.
        if let Some(old) = st.files.remove(to) {
            if old.name_durable {
                st.pending_removals.push((to.to_path_buf(), old));
            }
        }
        st.files.insert(to.to_path_buf(), node);
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock();
        gate(&self.cfg, &mut st, path, false).map_err(InjectedFault::into_io)?;
        match st.files.remove(path) {
            Some(node) => {
                if node.name_durable {
                    st.pending_removals.push((path.to_path_buf(), node));
                }
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock();
        gate(&self.cfg, &mut st, path, false).map_err(InjectedFault::into_io)?;
        let mut p = path.to_path_buf();
        let mut chain = vec![p.clone()];
        while let Some(parent) = p.parent() {
            chain.push(parent.to_path_buf());
            p = parent.to_path_buf();
        }
        for dir in chain {
            st.dirs.insert(dir);
        }
        Ok(())
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock();
        gate(&self.cfg, &mut st, path, false).map_err(InjectedFault::into_io)?;
        if !st.dirs.contains(path) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "no such directory"));
        }
        // Every direct child's name — and every pending removal in
        // this directory — becomes crash-durable.
        for (p, node) in st.files.iter_mut() {
            if p.parent() == Some(path) {
                node.name_durable = true;
                node.crash_alias = None;
            }
        }
        st.pending_removals
            .retain(|(p, _)| p.parent() != Some(path));
        Ok(())
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<String>> {
        let st = self.state.lock();
        if st.crashed {
            return Err(powered_off());
        }
        if !st.dirs.contains(path) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "no such directory"));
        }
        let mut out: Vec<String> = st
            .files
            .keys()
            .filter(|p| p.parent() == Some(path))
            .filter_map(|p| p.file_name().and_then(|n| n.to_str()).map(String::from))
            .collect();
        let subdirs: Vec<String> = st
            .dirs
            .iter()
            .filter(|d| d.parent() == Some(path))
            .filter_map(|d| d.file_name().and_then(|n| n.to_str()).map(String::from))
            .collect();
        out.extend(subdirs);
        out.sort();
        Ok(out)
    }

    fn exists(&self, path: &Path) -> bool {
        let st = self.state.lock();
        !st.crashed && (st.files.contains_key(path) || st.dirs.contains(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    fn write_file(vfs: &Arc<FaultVfs>, path: &str, data: &[u8], sync: bool) -> io::Result<()> {
        let mut f = vfs.create(&p(path))?;
        f.write_all(data)?;
        if sync {
            f.sync_all()?;
        }
        Ok(())
    }

    #[test]
    fn synced_rename_plus_dir_sync_survives_crash() {
        let vfs = FaultVfs::new(FaultConfig::default());
        vfs.create_dir_all(&p("/d")).unwrap();
        write_file(&vfs, "/d/.tmp", b"hello", true).unwrap();
        vfs.rename(&p("/d/.tmp"), &p("/d/final")).unwrap();
        vfs.sync_dir(&p("/d")).unwrap();
        vfs.power_cut();
        vfs.reboot();
        assert_eq!(vfs.read(&p("/d/final")).unwrap(), b"hello");
    }

    #[test]
    fn unsynced_file_vanishes_on_crash() {
        let vfs = FaultVfs::new(FaultConfig::default());
        vfs.create_dir_all(&p("/d")).unwrap();
        write_file(&vfs, "/d/volatile", b"never synced", false).unwrap();
        vfs.power_cut();
        vfs.reboot();
        assert!(!vfs.exists(&p("/d/volatile")));
    }

    #[test]
    fn rename_without_dir_sync_reverts_or_vanishes() {
        let vfs = FaultVfs::new(FaultConfig::default());
        vfs.create_dir_all(&p("/d")).unwrap();
        // Make the tmp name itself durable first.
        write_file(&vfs, "/d/.tmp", b"bytes", true).unwrap();
        vfs.sync_dir(&p("/d")).unwrap();
        // Now rename without a second dir sync: the platter still
        // knows the file as "/d/.tmp".
        vfs.rename(&p("/d/.tmp"), &p("/d/final")).unwrap();
        assert!(vfs.exists(&p("/d/final")));
        vfs.power_cut();
        vfs.reboot();
        assert!(!vfs.exists(&p("/d/final")), "rename was never durable");
        assert_eq!(vfs.read(&p("/d/.tmp")).unwrap(), b"bytes");
    }

    #[test]
    fn unsynced_tail_hits_the_remnant_policy() {
        // durable prefix always survives; the unsynced tail is lost,
        // torn, or kept — but never reordered or invented.
        for seed in 0..32u64 {
            let vfs = FaultVfs::new(FaultConfig {
                seed,
                ..Default::default()
            });
            vfs.create_dir_all(&p("/d")).unwrap();
            let mut f = vfs.create(&p("/d/f")).unwrap();
            f.write_all(b"durable|").unwrap();
            f.sync_all().unwrap();
            f.write_all(b"tail").unwrap();
            drop(f);
            vfs.sync_dir(&p("/d")).unwrap();
            vfs.power_cut();
            vfs.reboot();
            let got = vfs.read(&p("/d/f")).unwrap();
            assert!(got.starts_with(b"durable|"), "durable prefix lost: {got:?}");
            assert!(
                b"durable|tail".starts_with(got.as_slice()),
                "crash invented bytes: {got:?}"
            );
        }
    }

    #[test]
    fn crash_at_k_halts_everything_until_reboot() {
        let vfs = FaultVfs::new(FaultConfig::crash_only(7, 2));
        vfs.create_dir_all(&p("/d")).unwrap(); // op 0
        let mut f = vfs.create(&p("/d/a")).unwrap(); // op 1
        let err = f.write_all(b"x").unwrap_err(); // op 2 → crash
        assert!(err.to_string().contains("power cut"));
        assert!(vfs.crashed());
        assert!(vfs.read(&p("/d/a")).is_err(), "reads fail while down");
        vfs.reboot();
        assert!(!vfs.exists(&p("/d/a")), "unsynced create discarded");
    }

    #[test]
    fn injected_enospc_carries_the_errno() {
        let vfs = FaultVfs::new(FaultConfig::default());
        vfs.create_dir_all(&p("/d")).unwrap();
        vfs.inject_next(FaultKind::Enospc);
        let err = match vfs.create(&p("/d/x")) {
            Ok(_) => panic!("injected ENOSPC did not fire"),
            Err(e) => e,
        };
        assert_eq!(err.raw_os_error(), Some(28));
    }

    #[test]
    fn identical_seeds_identical_schedules() {
        let run = |seed: u64| {
            let vfs = FaultVfs::new(FaultConfig {
                seed,
                eio_per_mille: 120,
                enospc_per_mille: 60,
                short_write_per_mille: 90,
                crash_at: None,
            });
            vfs.create_dir_all(&p("/d")).unwrap();
            for i in 0..64 {
                let _ = write_file(&vfs, &format!("/d/f{i}"), &[i as u8; 33], i % 2 == 0);
                if i % 5 == 0 {
                    let _ = vfs.sync_dir(&p("/d"));
                }
            }
            (vfs.fault_log(), vfs.dump())
        };
        let (log_a, dump_a) = run(42);
        let (log_b, dump_b) = run(42);
        assert_eq!(log_a, log_b);
        assert_eq!(dump_a, dump_b);
        assert!(!log_a.is_empty(), "schedule injected nothing at 27%");
        let (log_c, _) = run(43);
        assert_ne!(log_a, log_c, "different seed, different schedule");
    }

    #[test]
    fn remove_without_dir_sync_resurrects_on_crash() {
        let vfs = FaultVfs::new(FaultConfig::default());
        vfs.create_dir_all(&p("/d")).unwrap();
        write_file(&vfs, "/d/keep", b"data", true).unwrap();
        vfs.sync_dir(&p("/d")).unwrap();
        vfs.remove_file(&p("/d/keep")).unwrap();
        assert!(!vfs.exists(&p("/d/keep")));
        vfs.power_cut();
        vfs.reboot();
        assert_eq!(vfs.read(&p("/d/keep")).unwrap(), b"data");
    }
}
