//! Format evolution, build qualification, and the deployment tool —
//! the machinery behind the paper's fourth alarm (§6.7, "Accidental
//! deployment of incompatible old version").
//!
//! Lepton's file format evolved in production: "When features were
//! added, an older decoder may not be able to decode a newer file.
//! When Lepton's format was made stricter, an older encoder may
//! produce files that are rejected by a newer decoder." Builds were
//! *qualified* (a billion-file round-trip run) and — the footgun —
//! stayed eligible for deployment forever; an empty field in the
//! deployment tool defaulted to the very first qualified build, which
//! could neither decode newer files nor produce files newer decoders
//! accepted. Availability dropped to 99.7%, and 18 files ultimately
//! had to be re-encoded by a repair scan.
//!
//! This module models exactly that: [`VersionedCodec`] puts real
//! version bytes on real containers, [`QualificationRegistry`] keeps
//! the eternally-qualified build list with the dangerous default, and
//! [`repair_scan`] is the clean-up pass. The incident itself is a test.

use lepton_core::{CompressOptions, LeptonError};

/// Byte offset of the version field in the container (App. A.1: magic
/// is 2 bytes, version is the third byte).
const VERSION_OFFSET: usize = 2;

/// The version the in-tree codec natively reads and writes.
pub const NATIVE_VERSION: u8 = 1;

/// A build of the Lepton software, identified the way the deployment
/// tool identifies it (by hash) and characterized by the two axes of
/// format compatibility the paper describes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Build {
    /// Deployment-tool identifier.
    pub hash: String,
    /// The format version this build *writes* (and the newest it
    /// reads): features added ⇒ higher version.
    pub writes_version: u8,
    /// The oldest format version this build still accepts: format
    /// made stricter ⇒ higher floor.
    pub accepts_from: u8,
}

impl Build {
    /// Can this build decode a file written at `file_version`?
    #[must_use]
    pub fn can_decode(&self, file_version: u8) -> bool {
        (self.accepts_from..=self.writes_version).contains(&file_version)
    }
}

/// A codec bound to a [`Build`]: compresses with the build's version
/// stamp and refuses files outside the build's acceptance window —
/// using the real codec and real containers underneath.
#[derive(Clone, Debug)]
pub struct VersionedCodec {
    /// The build this codec ships in.
    pub build: Build,
    opts: CompressOptions,
}

impl VersionedCodec {
    /// Codec for a build, with the given compression options.
    pub fn new(build: Build, opts: CompressOptions) -> Self {
        VersionedCodec { build, opts }
    }

    /// Compress; the container carries this build's format version.
    pub fn compress(&self, jpeg: &[u8]) -> Result<Vec<u8>, LeptonError> {
        let mut container = lepton_core::compress(jpeg, &self.opts)?;
        container[VERSION_OFFSET] = self.build.writes_version;
        Ok(container)
    }

    /// Decompress, enforcing the build's acceptance window first — the
    /// check the incident tripped in both directions.
    pub fn decompress(&self, container: &[u8]) -> Result<Vec<u8>, LeptonError> {
        let v = *container.get(VERSION_OFFSET).ok_or(LeptonError::BadMagic)?;
        if !self.build.can_decode(v) {
            return Err(LeptonError::UnsupportedVersion(v));
        }
        // Within the window the payload is native; restore the native
        // stamp and decode for real.
        let mut native = container.to_vec();
        native[VERSION_OFFSET] = NATIVE_VERSION;
        lepton_core::decompress(&native)
    }

    /// The version this codec stamps on new files.
    pub fn writes_version(&self) -> u8 {
        self.build.writes_version
    }
}

/// The qualified-build list behind the deployment tool.
///
/// Historical practice per the paper: a build, once qualified, stays
/// eligible forever, and the tool's *default* (used when the operator
/// leaves the hash field blank) was "set when Lepton was first
/// deployed and never updated".
///
/// **Warning:** [`QualificationRegistry::deploy`] reproduces that
/// dangerous default on purpose; use
/// [`QualificationRegistry::deploy_safe`] anywhere correctness
/// matters.
#[derive(Clone, Debug, Default)]
pub struct QualificationRegistry {
    builds: Vec<Build>,
}

/// Outcome of a deployment request. Borrows the registry's build —
/// deployment is a *selection*, not a transfer; callers clone only if
/// they actually ship the build somewhere.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeployOutcome<'a> {
    /// The named (or defaulted) build is being deployed.
    Deployed(&'a Build),
    /// No such qualified build.
    UnknownHash(String),
}

impl QualificationRegistry {
    /// Register a build that passed qualification. The first build
    /// registered becomes the tool's eternal default.
    pub fn qualify(&mut self, build: Build) {
        self.builds.push(build);
    }

    /// All qualified builds, oldest first.
    #[must_use]
    pub fn qualified(&self) -> &[Build] {
        &self.builds
    }

    /// The newest qualified build — what operators *intend* to deploy.
    #[must_use]
    pub fn newest(&self) -> Option<&Build> {
        self.builds.last()
    }

    /// The deployment tool: deploy by hash, or — if the operator
    /// leaves the field blank — the internal default, which is the
    /// *first* qualified build (the §6.7 footgun, reproduced
    /// deliberately; see [`QualificationRegistry::deploy_safe`]).
    ///
    /// **Warning:** the blank-field default is the dangerous historical
    /// behavior: the build it hands back may be unable to decode what
    /// the fleet currently writes. Inspect the outcome — ignoring it is
    /// exactly how the December 12th incident happened.
    #[must_use = "the blank-field default may select an incompatible build; check the outcome"]
    pub fn deploy(&self, hash: Option<&str>) -> DeployOutcome<'_> {
        match hash {
            Some(h) => match self.builds.iter().find(|b| b.hash == h) {
                Some(b) => DeployOutcome::Deployed(b),
                None => DeployOutcome::UnknownHash(h.to_string()),
            },
            None => match self.builds.first() {
                Some(b) => DeployOutcome::Deployed(b),
                None => DeployOutcome::UnknownHash("<no qualified builds>".into()),
            },
        }
    }

    /// The post-incident fix: builds whose acceptance window cannot
    /// read files written by the newest build are no longer eligible,
    /// and the default is the newest build, not the oldest.
    #[must_use = "deployment may be refused; check the outcome"]
    pub fn deploy_safe(&self, hash: Option<&str>) -> DeployOutcome<'_> {
        let Some(newest) = self.newest() else {
            return DeployOutcome::UnknownHash("<no qualified builds>".into());
        };
        let eligible = |b: &Build| b.can_decode(newest.writes_version);
        match hash {
            Some(h) => match self.builds.iter().find(|b| b.hash == h) {
                Some(b) if eligible(b) => DeployOutcome::Deployed(b),
                Some(b) => DeployOutcome::UnknownHash(format!(
                    "{} is qualified but format-incompatible (reads {}..={}, fleet writes {})",
                    b.hash, b.accepts_from, b.writes_version, newest.writes_version
                )),
                None => DeployOutcome::UnknownHash(h.to_string()),
            },
            None => DeployOutcome::Deployed(newest),
        }
    }
}

/// One stored file in the mixed-version fleet model: the container and
/// the version it was written at.
#[derive(Clone, Debug)]
pub struct VersionedChunk {
    /// The Lepton container (version byte included).
    pub container: Vec<u8>,
    /// Version stamp, for scan selection.
    pub version: u8,
}

/// Re-encode every chunk outside `current`'s acceptance window into
/// `current`'s format — the paper's repair: "We performed a scan over
/// all these files, decoding and then re-encoding them if necessary
/// into the current version of the Lepton file format."
///
/// `originals` supplies the pre-compression bytes for chunks the
/// current build cannot read (in production this was the other, still-
/// compatible blockservers decoding them). Returns how many chunks
/// were re-encoded.
pub fn repair_scan(
    chunks: &mut [VersionedChunk],
    current: &VersionedCodec,
    originals: &dyn Fn(usize) -> Option<Vec<u8>>,
) -> Result<usize, LeptonError> {
    let mut repaired = 0;
    for (i, chunk) in chunks.iter_mut().enumerate() {
        if current.build.can_decode(chunk.version) {
            continue;
        }
        let jpeg = originals(i).ok_or(LeptonError::Internal("no source for repair"))?;
        chunk.container = current.compress(&jpeg)?;
        chunk.version = current.writes_version();
        repaired += 1;
    }
    Ok(repaired)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lepton_corpus::builder::{clean_jpeg, CorpusSpec};

    fn spec() -> CorpusSpec {
        CorpusSpec {
            min_dim: 48,
            max_dim: 112,
            ..Default::default()
        }
    }

    /// v1: the first qualified build. v2 added features (writes 2,
    /// still reads 1). v3 made the format stricter (writes 3, refuses
    /// anything below 2).
    fn builds() -> (Build, Build, Build) {
        (
            Build {
                hash: "a1b2c3".into(),
                writes_version: 1,
                accepts_from: 1,
            },
            Build {
                hash: "d4e5f6".into(),
                writes_version: 2,
                accepts_from: 1,
            },
            Build {
                hash: "090807".into(),
                writes_version: 3,
                accepts_from: 2,
            },
        )
    }

    #[test]
    fn acceptance_windows_match_the_papers_two_failure_modes() {
        let (v1, v2, v3) = builds();
        // Features added: old decoder rejects newer file.
        assert!(!v1.can_decode(2));
        assert!(v2.can_decode(1), "newer build reads older file");
        // Format stricter: newer decoder rejects oldest files.
        assert!(!v3.can_decode(1));
        assert!(v3.can_decode(2));
    }

    #[test]
    fn versioned_codec_roundtrips_within_window() {
        let (_, v2, _) = builds();
        let codec = VersionedCodec::new(v2, CompressOptions::default());
        let jpeg = clean_jpeg(&spec(), 1);
        let container = codec.compress(&jpeg).unwrap();
        assert_eq!(container[VERSION_OFFSET], 2, "stamped with build version");
        assert_eq!(codec.decompress(&container).unwrap(), jpeg);
    }

    #[test]
    fn old_build_rejects_new_file_with_version_error() {
        let (v1, v2, _) = builds();
        let new_codec = VersionedCodec::new(v2, CompressOptions::default());
        let old_codec = VersionedCodec::new(v1, CompressOptions::default());
        let jpeg = clean_jpeg(&spec(), 2);
        let new_file = new_codec.compress(&jpeg).unwrap();
        match old_codec.decompress(&new_file) {
            Err(LeptonError::UnsupportedVersion(2)) => {}
            other => panic!("expected UnsupportedVersion(2), got {other:?}"),
        }
    }

    #[test]
    fn strict_build_rejects_oldest_files() {
        let (v1, _, v3) = builds();
        let oldest = VersionedCodec::new(v1, CompressOptions::default());
        let strict = VersionedCodec::new(v3, CompressOptions::default());
        let jpeg = clean_jpeg(&spec(), 3);
        let old_file = oldest.compress(&jpeg).unwrap();
        assert!(matches!(
            strict.decompress(&old_file),
            Err(LeptonError::UnsupportedVersion(1))
        ));
    }

    #[test]
    fn blank_hash_deploys_the_first_qualified_build() {
        let (v1, v2, v3) = builds();
        let mut reg = QualificationRegistry::default();
        reg.qualify(v1.clone());
        reg.qualify(v2);
        reg.qualify(v3.clone());
        assert_eq!(reg.newest(), Some(&v3));
        // The footgun: the operator leaves the field blank.
        assert_eq!(reg.deploy(None), DeployOutcome::Deployed(&v1));
    }

    #[test]
    fn safe_tool_defaults_to_newest_and_blocks_incompatible() {
        let (v1, v2, v3) = builds();
        let mut reg = QualificationRegistry::default();
        reg.qualify(v1.clone());
        reg.qualify(v2.clone());
        reg.qualify(v3.clone());
        assert_eq!(reg.deploy_safe(None), DeployOutcome::Deployed(&v3));
        // v1 cannot read what the fleet now writes (v3): not eligible,
        // even though it is still "qualified".
        assert!(matches!(
            reg.deploy_safe(Some("a1b2c3")),
            DeployOutcome::UnknownHash(_)
        ));
        // v2 reads 1..=2 but the fleet writes 3: also blocked.
        assert!(matches!(
            reg.deploy_safe(Some("d4e5f6")),
            DeployOutcome::UnknownHash(_)
        ));
        assert_eq!(
            reg.deploy_safe(Some("090807")),
            DeployOutcome::Deployed(&v3)
        );
    }

    #[test]
    fn unknown_hash_is_reported_not_defaulted() {
        let (v1, ..) = builds();
        let mut reg = QualificationRegistry::default();
        reg.qualify(v1);
        assert!(matches!(
            reg.deploy(Some("nope")),
            DeployOutcome::UnknownHash(_)
        ));
    }

    /// The full §6.7 incident, on real containers: a mixed fleet where
    /// some blockservers run the accidentally-deployed first build.
    /// Availability drops below 100% in both directions; the repair
    /// scan re-encodes the stranded files and restores full service.
    #[test]
    fn december_twelfth_incident_reproduction() {
        let (v1, v2, _) = builds();
        let mut reg = QualificationRegistry::default();
        reg.qualify(v1.clone());
        reg.qualify(v2.clone());

        // The fleet was on v2; the blank deploy field put v1 on some
        // blockservers.
        let DeployOutcome::Deployed(accidental) = reg.deploy(None) else {
            panic!("deploy must succeed");
        };
        assert_eq!(accidental, &v1, "the tool's default is the oldest build");
        let modern = VersionedCodec::new(v2, CompressOptions::default());
        let stale = VersionedCodec::new(accidental.clone(), CompressOptions::default());

        // Uploads land on both kinds of servers while the bad config
        // is live.
        let jpegs: Vec<Vec<u8>> = (0..12).map(|s| clean_jpeg(&spec(), 100 + s)).collect();
        let mut chunks: Vec<VersionedChunk> = Vec::new();
        for (i, jpeg) in jpegs.iter().enumerate() {
            let codec = if i % 3 == 0 { &stale } else { &modern };
            chunks.push(VersionedChunk {
                container: codec.compress(jpeg).unwrap(),
                version: codec.writes_version(),
            });
        }

        // First warning sign: availability below 100% — v2-written
        // files fail on v1 servers ("unable to decode some newly
        // compressed images").
        let served_by_stale = chunks
            .iter()
            .filter(|c| stale.decompress(&c.container).is_ok())
            .count();
        assert!(
            served_by_stale < chunks.len(),
            "stale servers NACK new files"
        );

        // Second alarm: healthy servers cannot decode some files the
        // misconfigured servers *wrote* — here, v1 files under a
        // hypothetical strict build; with v2 they still decode, which
        // is why only 18 of billions of files needed repair. What v2
        // can't avoid is files being stamped v1 during the window:
        let stranded: Vec<usize> = chunks
            .iter()
            .enumerate()
            .filter(|(_, c)| c.version != modern.writes_version())
            .map(|(i, _)| i)
            .collect();
        assert!(!stranded.is_empty());

        // Repair: scan, decode with a compatible reader, re-encode
        // into the current format.
        let originals = |i: usize| Some(jpegs[i].clone());
        let strict_current = VersionedCodec::new(
            Build {
                hash: "current".into(),
                writes_version: 2,
                accepts_from: 2, // format made stricter going forward
            },
            CompressOptions::default(),
        );
        let repaired = repair_scan(&mut chunks, &strict_current, &originals).unwrap();
        assert_eq!(repaired, stranded.len(), "exactly the stranded files");

        // Full service restored: every chunk decodes on the current
        // build and round-trips to its original bytes.
        for (chunk, jpeg) in chunks.iter().zip(&jpegs) {
            assert_eq!(&strict_current.decompress(&chunk.container).unwrap(), jpeg);
        }

        // And the registry gets the post-incident behavior.
        assert!(matches!(
            reg.deploy_safe(Some("a1b2c3")),
            DeployOutcome::UnknownHash(_)
        ));
    }
}
