//! The sharded, disk-backed blockstore: transparent compress-on-write
//! behind a content address.
//!
//! [`BlockStore`](crate::BlockStore) models the paper's blockserver in
//! memory; this module is the durable version a service actually runs
//! on. Blocks live as files in N shard directories, each shard with
//! its own lock, so concurrent `put`/`get` from many threads contend
//! only when they land on the same shard. The write path is the
//! paper's admission rule made literal (§5.7): a JPEG-looking block is
//! Lepton-compressed, the result is decoded again and compared
//! byte-for-byte against the original, and only then committed — on
//! any mismatch the original bytes are stored instead and the failure
//! is counted. The address is always the SHA-256 of the *original*
//! content, so callers never observe the encoding.
//!
//! Reads decode behind a bounded, sharded LRU of recently decoded
//! blocks (hot reads skip the codec entirely), and every cold read is
//! hash-checked against its address before it is served — a corrupted
//! block surfaces as [`StoreError::Corrupt`], never as wrong bytes.
//! [`ShardedStore::backfill`] is the §5.6 worker loop: walk the store,
//! convert eligible blocks in place, report rates the cluster model
//! can be calibrated with.

use crate::sha256::{sha256, Digest};
use crate::vfs::{RealVfs, Vfs};
use crate::StoredFormat;
use lepton_core::CompressOptions;
use lepton_obs::{Counter, Gauge, Registry};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Magic prefixing every on-disk block record.
const RECORD_MAGIC: [u8; 4] = *b"LBS1";

/// Record header: magic, format byte, original length (LE u64).
const HEADER_LEN: usize = 4 + 1 + 8;

/// A parsed record header plus the open handle positioned at the
/// payload: `(format, original length, file)`.
type OpenRecord = (StoredFormat, u64, Box<dyn crate::vfs::VfsFile>);

/// Errors the disk-backed store can report.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// The on-disk record is damaged: bad header, an undecodable
    /// payload, or decoded bytes whose SHA-256 no longer matches the
    /// block's address. Corrupted blocks are **never served**.
    Corrupt(Digest),
    /// Decoding the record would exceed the store's configured decode
    /// memory budget. The record itself is *not* damaged — it is never
    /// quarantined for this, and a store with a larger budget can still
    /// serve it.
    Budget {
        /// Bytes the decode wanted.
        required: usize,
        /// Configured budget.
        limit: usize,
    },
    /// The store has latched read-only (ENOSPC or a failed fsync on
    /// the write path): writes are shed until the operator repairs the
    /// disk and reopens; reads keep serving. Carries the latch reason.
    ReadOnly(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io: {e}"),
            StoreError::Corrupt(key) => {
                write!(f, "corrupt block {}", hex(key))
            }
            StoreError::Budget { required, limit } => {
                write!(f, "decode budget exceeded: need {required}, limit {limit}")
            }
            StoreError::ReadOnly(reason) => {
                write!(f, "store is read-only: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Configuration for a [`ShardedStore`].
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Shard count: independent locks and directories. More shards ⇒
    /// less lock contention under concurrent load.
    pub shards: usize,
    /// Total decoded-block cache budget in bytes, split evenly across
    /// shards. `0` disables the cache (every read decodes).
    pub cache_bytes: usize,
    /// Codec options for the write path. `verify` is forced on at
    /// admission regardless of what is set here.
    pub compress: CompressOptions,
    /// When `false`, `put` skips the codec and stores bytes raw — the
    /// shutoff switch (§5.7) and the way tests/benches populate a
    /// store that `backfill` then converts.
    pub compress_on_write: bool,
    /// When `true` (the default), opening runs the startup
    /// [`ShardedStore::recover`] sweep in repair mode. `false` defers
    /// it — how `lepton store recover` opens, so its dry run can
    /// report damage before anything is touched.
    pub recover_on_open: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 16,
            cache_bytes: 64 << 20,
            compress: CompressOptions::default(),
            compress_on_write: true,
            recover_on_open: true,
        }
    }
}

/// Counters exported by the disk store. All are monotonic operation
/// counters for *this handle's lifetime*; the authoritative at-rest
/// picture of a store (which may outlive many handles) comes from
/// [`ShardedStore::stat`], which walks the disk.
#[derive(Debug, Default)]
pub struct ShardedMetrics {
    /// Blocks this handle admitted in Lepton form at `put`.
    pub lepton_blocks: Arc<Counter>,
    /// Blocks this handle stored raw (non-JPEG, shutoff, or failed
    /// admission).
    pub raw_blocks: Arc<Counter>,
    /// Original bytes ingested by `put`.
    pub bytes_in: Arc<Counter>,
    /// Payload bytes written at `put` (headers excluded).
    pub bytes_stored: Arc<Counter>,
    /// Round-trip mismatches at admission (fell back to raw).
    pub roundtrip_failures: Arc<Counter>,
    /// Blocks converted to Lepton in place by `backfill`.
    pub backfill_conversions: Arc<Counter>,
    /// Reads served from the decoded-block cache.
    pub cache_hits: Arc<Counter>,
    /// Reads that had to touch disk (and the codec, for Lepton blocks).
    pub cache_misses: Arc<Counter>,
    /// Corrupt records detected (and refused) by the read path —
    /// damaged headers and failed hash checks alike.
    pub corrupt_blocks: Arc<Counter>,
    /// Reads refused because the decode would exceed the memory budget
    /// (the record is healthy; it is not quarantined).
    pub budget_rejections: Arc<Counter>,
    /// 1 while the store is latched read-only (ENOSPC / failed fsync),
    /// 0 otherwise.
    pub readonly: Arc<Gauge>,
    /// Writes shed because the store was read-only.
    pub readonly_sheds: Arc<Counter>,
    /// `recover()` passes completed (including the one at open).
    pub recovery_runs: Arc<Counter>,
    /// Orphaned `*.tmp` files removed by recovery sweeps.
    pub recovery_orphans: Arc<Counter>,
    /// Torn records quarantined by recovery sweeps.
    pub recovery_torn: Arc<Counter>,
    /// Healthy blocks at rest as of the last recovery walk — the
    /// reconciled counter the disk, not this handle's lifetime, owns.
    pub blocks_at_rest: Arc<Gauge>,
}

/// Point-in-time summary of a store, as `stat` reports it.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StoreStats {
    /// Blocks at rest.
    pub blocks: u64,
    /// Of which Lepton-compressed.
    pub lepton_blocks: u64,
    /// Of which raw.
    pub raw_blocks: u64,
    /// Sum of original (logical) block sizes.
    pub logical_bytes: u64,
    /// Sum of at-rest payload sizes.
    pub stored_bytes: u64,
    /// Cache hits so far.
    pub cache_hits: u64,
    /// Cache misses so far.
    pub cache_misses: u64,
}

impl StoreStats {
    /// Storage savings fraction (0..1) over the whole store.
    pub fn savings(&self) -> f64 {
        if self.logical_bytes == 0 {
            0.0
        } else {
            1.0 - self.stored_bytes as f64 / self.logical_bytes as f64
        }
    }
}

/// Outcome of one [`ShardedStore::backfill`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct BackfillReport {
    /// Blocks examined (everything not already Lepton).
    pub scanned: u64,
    /// Blocks converted to Lepton in place.
    pub converted: u64,
    /// Blocks that failed admission and were left as they were.
    pub skipped: u64,
    /// At-rest bytes before conversion of the converted blocks.
    pub bytes_before: u64,
    /// At-rest bytes after conversion of the converted blocks.
    pub bytes_after: u64,
    /// Wall-clock seconds for the whole pass.
    pub secs: f64,
}

impl BackfillReport {
    /// Conversions per second across the pass (0 when nothing ran).
    pub fn conversions_per_sec(&self) -> f64 {
        if self.secs <= 0.0 {
            0.0
        } else {
            self.converted as f64 / self.secs
        }
    }

    /// Savings fraction achieved on the converted blocks.
    pub fn savings(&self) -> f64 {
        if self.bytes_before == 0 {
            0.0
        } else {
            1.0 - self.bytes_after as f64 / self.bytes_before as f64
        }
    }
}

/// Outcome of one [`ShardedStore::scrub`] pass.
#[derive(Clone, Debug, Default)]
pub struct ScrubReport {
    /// Blocks examined.
    pub scanned: u64,
    /// Blocks whose at-rest record failed its integrity check.
    pub corrupt: u64,
    /// Addresses of the damaged blocks (what an operator — or the
    /// fleet's read-repair — would fetch from a healthy replica).
    pub corrupt_keys: Vec<Digest>,
    /// Wall-clock seconds for the whole pass.
    pub secs: f64,
}

/// Outcome of one [`ShardedStore::recover`] sweep.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Orphaned `*.tmp` files found (a crash mid-write leaves them).
    pub orphans_found: u64,
    /// Of which actually removed (equal to `orphans_found` when
    /// applied; 0 on a dry run).
    pub orphans_removed: u64,
    /// Records whose header is torn — truncated, bad magic, unknown
    /// format byte, or a raw payload shorter than its declared length.
    pub torn_found: u64,
    /// Of which quarantined to `<hex>.corrupt` (0 on a dry run).
    pub torn_quarantined: u64,
    /// Quarantine tombstones still awaiting repair.
    pub quarantined_pending: u64,
    /// Healthy blocks counted during the walk — the reconciled
    /// at-rest block count.
    pub blocks: u64,
    /// Whether repairs were applied (`false` = dry run).
    pub applied: bool,
    /// Wall-clock seconds for the sweep.
    pub secs: f64,
}

impl RecoveryReport {
    /// Nothing to repair and nothing pending.
    pub fn clean(&self) -> bool {
        self.orphans_found == 0 && self.torn_found == 0 && self.quarantined_pending == 0
    }
}

/// A bounded LRU of decoded blocks; one per shard, behind the shard's
/// own lock.
struct ShardCache {
    /// Decoded block + its recency stamp.
    map: HashMap<Digest, (Vec<u8>, u64)>,
    /// Recency index: stamp → key; the smallest stamp is the LRU entry.
    by_stamp: BTreeMap<u64, Digest>,
    total: usize,
    cap: usize,
    tick: u64,
}

impl ShardCache {
    fn new(cap: usize) -> Self {
        ShardCache {
            map: HashMap::new(),
            by_stamp: BTreeMap::new(),
            total: 0,
            cap,
            tick: 0,
        }
    }

    fn get(&mut self, key: &Digest) -> Option<Vec<u8>> {
        self.tick += 1;
        let tick = self.tick;
        let (data, stamp) = self.map.get_mut(key)?;
        self.by_stamp.remove(&*stamp);
        *stamp = tick;
        self.by_stamp.insert(tick, *key);
        Some(data.clone())
    }

    fn insert(&mut self, key: Digest, data: Vec<u8>) {
        if data.len() > self.cap {
            return; // would evict the whole cache for one block
        }
        if let Some((old, stamp)) = self.map.remove(&key) {
            self.total -= old.len();
            self.by_stamp.remove(&stamp);
        }
        while self.total + data.len() > self.cap {
            let Some((&oldest, _)) = self.by_stamp.iter().next() else {
                break;
            };
            let victim = self.by_stamp.remove(&oldest).expect("indexed");
            let (evicted, _) = self.map.remove(&victim).expect("in map");
            self.total -= evicted.len();
        }
        self.tick += 1;
        self.total += data.len();
        self.by_stamp.insert(self.tick, key);
        self.map.insert(key, (data, self.tick));
    }

    /// Drop a key (used when a block is detected corrupt or rewritten).
    fn remove(&mut self, key: &Digest) {
        if let Some((data, stamp)) = self.map.remove(key) {
            self.total -= data.len();
            self.by_stamp.remove(&stamp);
        }
    }
}

struct Shard {
    dir: PathBuf,
    /// Serializes writes within the shard (reads go lock-free to the
    /// filesystem; rename makes block files appear atomically).
    write_lock: Mutex<()>,
    cache: Mutex<ShardCache>,
}

/// The durable, sharded, content-addressed blockstore.
pub struct ShardedStore {
    root: PathBuf,
    shards: Vec<Shard>,
    cfg: StoreConfig,
    tmp_counter: AtomicU64,
    /// Every filesystem touch goes through here: [`RealVfs`] in
    /// production, a fault injector under the chaos harnesses.
    vfs: Arc<dyn Vfs>,
    /// The read-only latch (fast-path flag + the reason it tripped).
    read_only: AtomicBool,
    read_only_reason: Mutex<Option<String>>,
    /// Operation counters.
    pub metrics: ShardedMetrics,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("root", &self.root)
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// Lowercase hex of a digest (the on-disk file name).
pub fn hex(d: &Digest) -> String {
    let mut s = String::with_capacity(64);
    for b in d {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Parse a 64-char lowercase/uppercase hex digest.
pub fn parse_hex(s: &str) -> Option<Digest> {
    let s = s.trim();
    if s.len() != 64 {
        return None;
    }
    let mut d = [0u8; 32];
    for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
        let hi = (chunk[0] as char).to_digit(16)?;
        let lo = (chunk[1] as char).to_digit(16)?;
        d[i] = ((hi << 4) | lo) as u8;
    }
    Some(d)
}

/// Cheap JPEG sniff: SOI marker followed by another marker byte. The
/// codec is the real gatekeeper; this only avoids paying a full parse
/// for blocks that obviously are not JPEGs.
fn looks_like_jpeg(data: &[u8]) -> bool {
    data.len() > 3 && data[0] == 0xFF && data[1] == 0xD8 && data[2] == 0xFF
}

impl ShardedStore {
    /// Open (creating if necessary) a store rooted at `root` with the
    /// given configuration, on the real filesystem. Shard directories
    /// are `root/shard-NNN`; opening an existing store with a
    /// different shard count is rejected, because block placement
    /// depends on it.
    pub fn open(root: impl Into<PathBuf>, cfg: StoreConfig) -> io::Result<Self> {
        Self::open_on(Arc::new(RealVfs), root, cfg)
    }

    /// Open a store on an explicit [`Vfs`] — how the chaos harnesses
    /// run the whole write/read/recover protocol against a seeded
    /// fault injector. Startup runs a full [`ShardedStore::recover`]
    /// sweep (orphaned tmps removed, torn records quarantined,
    /// counters reconciled) before the handle is returned.
    pub fn open_on(
        vfs: Arc<dyn Vfs>,
        root: impl Into<PathBuf>,
        cfg: StoreConfig,
    ) -> io::Result<Self> {
        let root = root.into();
        assert!(cfg.shards > 0, "at least one shard");
        vfs.create_dir_all(&root)?;
        // Refuse to misplace blocks: a store remembers its geometry.
        let geometry = root.join("GEOMETRY");
        match vfs.read(&geometry) {
            Ok(existing) => {
                let on_disk: usize =
                    String::from_utf8_lossy(&existing)
                        .trim()
                        .parse()
                        .map_err(|_| {
                            io::Error::new(io::ErrorKind::InvalidData, "unreadable GEOMETRY file")
                        })?;
                if on_disk != cfg.shards {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "store has {on_disk} shards, asked to open with {}",
                            cfg.shards
                        ),
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                vfs.write(&geometry, format!("{}\n", cfg.shards).as_bytes())?;
                vfs.sync_dir(&root)?;
            }
            Err(e) => return Err(e),
        }
        let per_shard_cache = cfg.cache_bytes / cfg.shards;
        let mut shards = Vec::with_capacity(cfg.shards);
        for i in 0..cfg.shards {
            let dir = root.join(format!("shard-{i:03}"));
            vfs.create_dir_all(&dir)?;
            shards.push(Shard {
                dir,
                write_lock: Mutex::new(()),
                cache: Mutex::new(ShardCache::new(per_shard_cache)),
            });
        }
        let store = ShardedStore {
            root,
            shards,
            cfg,
            tmp_counter: AtomicU64::new(0),
            vfs,
            read_only: AtomicBool::new(false),
            read_only_reason: Mutex::new(None),
            metrics: ShardedMetrics::default(),
        };
        // The startup sweep: a crash mid-put must never leave the
        // store serving torn records or accumulating orphaned tmps.
        if store.cfg.recover_on_open {
            store.recover(true).map_err(|e| match e {
                StoreError::Io(e) => e,
                other => io::Error::other(other.to_string()),
            })?;
        }
        Ok(store)
    }

    /// Whether the store has latched read-only. Reads still serve;
    /// every write is shed with [`StoreError::ReadOnly`].
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::Relaxed)
    }

    /// Why the store latched, when it did.
    pub fn read_only_reason(&self) -> Option<String> {
        self.read_only_reason.lock().clone()
    }

    /// Latch the store read-only. Called automatically on ENOSPC or a
    /// failed fsync anywhere in the write protocol; public so an
    /// operator (or a test) can freeze writes deliberately. The latch
    /// is per-handle and clears only by reopening the store.
    pub fn latch_read_only(&self, reason: &str) {
        let mut slot = self.read_only_reason.lock();
        if slot.is_none() {
            *slot = Some(reason.to_string());
        }
        self.read_only.store(true, Ordering::Relaxed);
        self.metrics.readonly.set(1);
    }

    /// Gate every record write behind the latch.
    fn check_writable(&self) -> Result<(), StoreError> {
        if self.is_read_only() {
            self.metrics.readonly_sheds.inc();
            let reason = self
                .read_only_reason
                .lock()
                .clone()
                .unwrap_or_else(|| "latched".to_string());
            return Err(StoreError::ReadOnly(reason));
        }
        Ok(())
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: &Digest) -> &Shard {
        let idx = u16::from_be_bytes([key[0], key[1]]) as usize % self.shards.len();
        &self.shards[idx]
    }

    fn block_path(&self, key: &Digest) -> PathBuf {
        self.shard_of(key).dir.join(hex(key))
    }

    /// Where a quarantined record sits: a tombstone name every walk
    /// skips, so the damaged bytes stay for forensics without being
    /// servable.
    fn quarantine_path(&self, key: &Digest) -> PathBuf {
        self.shard_of(key).dir.join(format!("{}.corrupt", hex(key)))
    }

    /// Store a block; returns the SHA-256 of `data`, under which the
    /// original bytes are retrievable forever after — whatever encoding
    /// won at admission.
    pub fn put(&self, data: &[u8]) -> Result<Digest, StoreError> {
        self.put_with(data, true)
    }

    /// Store a block without running the codec — the per-request
    /// shutoff path (§5.7): writes are never refused, they just land
    /// raw, and a later [`ShardedStore::backfill`] converts them.
    pub fn put_raw(&self, data: &[u8]) -> Result<Digest, StoreError> {
        self.put_with(data, false)
    }

    fn put_with(&self, data: &[u8], compress: bool) -> Result<Digest, StoreError> {
        let key = sha256(data);
        let path = self.block_path(&key);
        if self.vfs.exists(&path) {
            return Ok(key); // content-addressed dedup
        }
        // Shed before paying the codec: a read-only store refuses the
        // write either way, so don't burn CPU discovering it late.
        self.check_writable()?;

        // Encode outside the shard lock: the codec is the expensive
        // part and needs no coordination.
        let compress = compress && self.cfg.compress_on_write;
        let (format, payload) = if compress && looks_like_jpeg(data) {
            match self.try_admit(data) {
                Some(lepton) => (StoredFormat::Lepton, lepton),
                None => (StoredFormat::Raw, data.to_vec()),
            }
        } else {
            (StoredFormat::Raw, data.to_vec())
        };

        let shard = self.shard_of(&key);
        let guard = shard.write_lock.lock();
        if self.vfs.exists(&path) {
            return Ok(key); // raced with another writer of the same content
        }
        self.write_record(shard, &path, format, data.len() as u64, &payload)?;
        // A fresh, verified record supersedes any quarantined one: the
        // tombstone must not keep reporting damage that has been
        // repaired.
        let _ = self.vfs.remove_file(&self.quarantine_path(&key));
        drop(guard);

        self.metrics.bytes_in.add(data.len() as u64);
        self.metrics.bytes_stored.add(payload.len() as u64);
        match format {
            StoredFormat::Lepton => &self.metrics.lepton_blocks,
            _ => &self.metrics.raw_blocks,
        }
        .inc();
        Ok(key)
    }

    /// The commit gate: compress, then prove the round trip against
    /// the caller's exact bytes before anything is admitted. `None`
    /// means "store the original" — never an error to the caller.
    fn try_admit(&self, data: &[u8]) -> Option<Vec<u8>> {
        let mut opts = self.cfg.compress.clone();
        opts.verify = true;
        let lepton = lepton_core::Engine::global().compress(data, &opts).ok()?;
        // compress() already verified internally, but the blockstore
        // commit gate trusts nothing it did not check itself (§5.6
        // "double-checks the result"). The check must decode with the
        // store's own model config — the container does not carry it.
        let dec_opts = lepton_core::DecompressOptions {
            model: opts.model,
            budget: opts.budget,
        };
        if lepton_core::Engine::global()
            .decompress_opts(&lepton, &dec_opts)
            .as_deref()
            == Ok(data)
        {
            if lepton.len() < data.len() {
                return Some(lepton);
            }
            return None; // compression won nothing; raw is simpler
        }
        self.metrics.roundtrip_failures.inc();
        None
    }

    /// Write a block record crash-safely: temp file in the shard dir,
    /// fsync the file, rename into place, fsync the *directory* — only
    /// after the last step is the record durable under its final name,
    /// and only then may the caller acknowledge the put. Callers hold
    /// the shard write lock.
    ///
    /// ENOSPC anywhere, or a failed file/directory fsync, latches the
    /// store read-only: after either, nothing further this handle
    /// writes can be trusted to reach the platter, so it stops
    /// promising that it does.
    fn write_record(
        &self,
        shard: &Shard,
        path: &Path,
        format: StoredFormat,
        original_len: u64,
        payload: &[u8],
    ) -> Result<(), StoreError> {
        self.check_writable()?;
        let tmp = shard.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        let wrote = || -> Result<(), (io::Error, bool)> {
            let enospc_only = |e: io::Error| (e, false);
            let always_latch = |e: io::Error| (e, true);
            let mut f = self.vfs.create(&tmp).map_err(enospc_only)?;
            f.write_all(&RECORD_MAGIC).map_err(enospc_only)?;
            f.write_all(&[format_byte(format)]).map_err(enospc_only)?;
            f.write_all(&original_len.to_le_bytes())
                .map_err(enospc_only)?;
            f.write_all(payload).map_err(enospc_only)?;
            f.sync_all().map_err(always_latch)?;
            drop(f);
            self.vfs.rename(&tmp, path).map_err(enospc_only)?;
            self.vfs.sync_dir(&shard.dir).map_err(always_latch)
        };
        match wrote() {
            Ok(()) => Ok(()),
            Err((e, fsync_failed)) => {
                // Never leave the partial tmp behind (best-effort: on
                // a dead disk this fails too, and recovery sweeps it).
                let _ = self.vfs.remove_file(&tmp);
                if fsync_failed || is_enospc(&e) {
                    let what = if fsync_failed {
                        "failed fsync"
                    } else {
                        "ENOSPC"
                    };
                    self.latch_read_only(&format!("{what} during write: {e}"));
                    let reason = self.read_only_reason().unwrap_or_else(|| what.to_string());
                    Err(StoreError::ReadOnly(reason))
                } else {
                    Err(StoreError::Io(e))
                }
            }
        }
    }

    /// Retrieve a block's original bytes. `Ok(None)` means the key is
    /// not in the store; a damaged record is [`StoreError::Corrupt`].
    pub fn get(&self, key: &Digest) -> Result<Option<Vec<u8>>, StoreError> {
        let shard = self.shard_of(key);
        if let Some(hit) = shard.cache.lock().get(key) {
            self.metrics.cache_hits.inc();
            return Ok(Some(hit));
        }
        self.metrics.cache_misses.inc();

        let (format, original_len, payload) = match self.read_record(key)? {
            Some(rec) => rec,
            // A quarantined block is *damaged*, not absent: reporting
            // it as a miss would let a caller (or a fleet's replica
            // quorum) conclude the block never existed. The damage was
            // already counted when it was quarantined.
            None if self.vfs.exists(&self.quarantine_path(key)) => {
                return Err(StoreError::Corrupt(*key))
            }
            None => return Ok(None),
        };
        let decoded = self.decode_and_verify(key, format, original_len, payload)?;
        if self.cfg.cache_bytes > 0 {
            shard.cache.lock().insert(*key, decoded.clone());
        }
        Ok(Some(decoded))
    }

    /// The integrity gate shared by the serving read path and the
    /// scrub: decode a record's payload and prove the result hashes to
    /// the address it was stored under. Damage is counted and the
    /// cache purged (via `corrupt`); what this returns is safe to
    /// serve.
    fn decode_and_verify(
        &self,
        key: &Digest,
        format: StoredFormat,
        original_len: u64,
        payload: Vec<u8>,
    ) -> Result<Vec<u8>, StoreError> {
        let shard = self.shard_of(key);
        let decoded = match format {
            StoredFormat::Lepton => {
                // Same model config the admission gate wrote with.
                let dec_opts = lepton_core::DecompressOptions {
                    model: self.cfg.compress.model,
                    budget: self.cfg.compress.budget,
                };
                match lepton_core::Engine::global().decompress_opts(&payload, &dec_opts) {
                    Ok(jpeg) => jpeg,
                    // A budget refusal is a *policy* outcome, not
                    // damage: the record stays healthy and is never
                    // quarantined for it.
                    Err(lepton_core::LeptonError::BudgetExceeded {
                        required, limit, ..
                    }) => {
                        self.metrics.budget_rejections.inc();
                        return Err(StoreError::Budget { required, limit });
                    }
                    Err(_) => return Err(self.corrupt(shard, key)),
                }
            }
            StoredFormat::Deflate => {
                match lepton_deflate::zlib_decompress(&payload, original_len as usize) {
                    Ok(bytes) => bytes,
                    Err(_) => return Err(self.corrupt(shard, key)),
                }
            }
            StoredFormat::Raw => payload,
        };
        if decoded.len() as u64 != original_len || sha256(&decoded) != *key {
            return Err(self.corrupt(shard, key));
        }
        Ok(decoded)
    }

    fn corrupt(&self, shard: &Shard, key: &Digest) -> StoreError {
        self.metrics.corrupt_blocks.inc();
        shard.cache.lock().remove(key);
        StoreError::Corrupt(*key)
    }

    /// Open a record and parse its header. A truncated or unparseable
    /// header is corruption (counted, cache purged); a genuine I/O
    /// failure is [`StoreError::Io`], never misreported as damage.
    fn open_record(&self, key: &Digest) -> Result<Option<OpenRecord>, StoreError> {
        let path = self.block_path(key);
        let mut f = match self.vfs.open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let mut header = [0u8; HEADER_LEN];
        if let Err(e) = f.read_exact(&mut header) {
            return if e.kind() == io::ErrorKind::UnexpectedEof {
                Err(self.corrupt(self.shard_of(key), key)) // truncated record
            } else {
                Err(e.into())
            };
        }
        if header[..4] != RECORD_MAGIC {
            return Err(self.corrupt(self.shard_of(key), key));
        }
        let Some(format) = parse_format(header[4]) else {
            return Err(self.corrupt(self.shard_of(key), key));
        };
        let original_len = u64::from_le_bytes(header[5..13].try_into().expect("8 bytes"));
        Ok(Some((format, original_len, f)))
    }

    /// Header-only read: format, original length, and at-rest payload
    /// size (from file metadata — the payload bytes are not touched).
    fn read_header(&self, key: &Digest) -> Result<Option<(StoredFormat, u64, u64)>, StoreError> {
        let Some((format, original_len, f)) = self.open_record(key)? else {
            return Ok(None);
        };
        let total = f.len().map_err(StoreError::Io)?;
        Ok(Some((
            format,
            original_len,
            total.saturating_sub(HEADER_LEN as u64),
        )))
    }

    fn read_record(
        &self,
        key: &Digest,
    ) -> Result<Option<(StoredFormat, u64, Vec<u8>)>, StoreError> {
        let Some((format, original_len, mut f)) = self.open_record(key)? else {
            return Ok(None);
        };
        let mut payload = Vec::new();
        f.read_to_end(&mut payload)?;
        Ok(Some((format, original_len, payload)))
    }

    /// Whether `key` is present (no decode, no cache effects).
    pub fn contains(&self, key: &Digest) -> bool {
        self.vfs.exists(&self.block_path(key))
    }

    /// How a block is encoded at rest, if present (header-only read).
    pub fn format_of(&self, key: &Digest) -> Result<Option<StoredFormat>, StoreError> {
        Ok(self.read_header(key)?.map(|(f, _, _)| f))
    }

    /// At-rest payload size of a block, if present (header-only read).
    pub fn stored_size(&self, key: &Digest) -> Result<Option<usize>, StoreError> {
        Ok(self.read_header(key)?.map(|(_, _, p)| p as usize))
    }

    /// Every block address in the store, in shard order. Temp files
    /// and unparseable names are skipped.
    pub fn keys(&self) -> io::Result<Vec<Digest>> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for name in self.vfs.read_dir(&shard.dir)? {
                if let Some(d) = parse_hex(&name) {
                    out.push(d);
                }
            }
        }
        Ok(out)
    }

    /// Publish this handle's live counters on `registry` under
    /// `<prefix>.<field>` names. The registry adopts the *same* atomics
    /// the hot paths increment, so `Stats` snapshots are always current
    /// with no polling or copying.
    pub fn bind_registry(&self, registry: &Registry, prefix: &str) {
        let m = &self.metrics;
        for (name, counter) in [
            ("lepton_blocks", &m.lepton_blocks),
            ("raw_blocks", &m.raw_blocks),
            ("bytes_in", &m.bytes_in),
            ("bytes_stored", &m.bytes_stored),
            ("roundtrip_failures", &m.roundtrip_failures),
            ("backfill_conversions", &m.backfill_conversions),
            ("cache_hits", &m.cache_hits),
            ("cache_misses", &m.cache_misses),
            ("corrupt_blocks", &m.corrupt_blocks),
            ("budget_rejections", &m.budget_rejections),
            ("readonly_sheds", &m.readonly_sheds),
            ("recovery.runs", &m.recovery_runs),
            ("recovery.orphans_removed", &m.recovery_orphans),
            ("recovery.torn_quarantined", &m.recovery_torn),
        ] {
            registry.adopt_counter(&format!("{prefix}.{name}"), counter);
        }
        registry.adopt_gauge(&format!("{prefix}.readonly"), &m.readonly);
        registry.adopt_gauge(&format!("{prefix}.blocks_at_rest"), &m.blocks_at_rest);
    }

    /// Walk the store and summarize it. Header-only reads — payload
    /// bytes are never touched. Records with damaged headers are
    /// skipped (they are already counted in `metrics.corrupt_blocks`);
    /// genuine I/O failures still abort the walk.
    pub fn stat(&self) -> Result<StoreStats, StoreError> {
        let mut stats = StoreStats {
            cache_hits: self.metrics.cache_hits.get(),
            cache_misses: self.metrics.cache_misses.get(),
            ..Default::default()
        };
        for key in self.keys()? {
            let (format, original_len, payload_len) = match self.read_header(&key) {
                Ok(Some(rec)) => rec,
                Ok(None) | Err(StoreError::Corrupt(_)) => continue,
                Err(e) => return Err(e),
            };
            stats.blocks += 1;
            stats.logical_bytes += original_len;
            stats.stored_bytes += payload_len;
            match format {
                StoredFormat::Lepton => stats.lepton_blocks += 1,
                _ => stats.raw_blocks += 1,
            }
        }
        Ok(stats)
    }

    /// Hash-check one block *at rest*: open the record, decode the
    /// payload, and compare the SHA-256 against the address — the full
    /// cold-read gate, deliberately bypassing the decoded-block cache
    /// (a scrub that answered from cache would never see disk damage).
    /// `Ok(true)` means intact, `Ok(false)` means damaged (counted in
    /// `metrics.corrupt_blocks`, cache entry purged); a block that
    /// vanished mid-walk reads as intact.
    pub fn check_block(&self, key: &Digest) -> Result<bool, StoreError> {
        let (format, original_len, payload) = match self.read_record(key) {
            Ok(Some(rec)) => rec,
            Ok(None) => return Ok(true),
            Err(StoreError::Corrupt(_)) => return Ok(false),
            Err(e) => return Err(e),
        };
        match self.decode_and_verify(key, format, original_len, payload) {
            Ok(_) => Ok(true),
            Err(StoreError::Corrupt(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Quarantined blocks still awaiting repair: a `<hex>.corrupt`
    /// tombstone with no replacement record. These are damage an
    /// operator must still act on, even though `keys()` no longer
    /// lists them.
    fn quarantined_keys(&self) -> io::Result<Vec<Digest>> {
        let mut out = Vec::new();
        for shard in &self.shards {
            for name in self.vfs.read_dir(&shard.dir)? {
                let Some(stem) = name.strip_suffix(".corrupt") else {
                    continue;
                };
                if let Some(key) = parse_hex(stem) {
                    if !self.contains(&key) {
                        out.push(key);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Walk the store with `parallelism` workers, hash-checking every
    /// block at rest (§5.6's triple-verify discipline as an operator
    /// tool). Read-only: damaged blocks are reported, not touched —
    /// pair with [`ShardedStore::quarantine`] or the fleet's
    /// read-repair to act on the findings. Quarantined blocks whose
    /// replacement has not arrived yet are reported as corrupt too;
    /// damage must stay visible until it is actually repaired.
    pub fn scrub(&self, parallelism: usize) -> Result<ScrubReport, StoreError> {
        let todo = self.keys()?;
        let quarantined = self.quarantined_keys()?;
        let quarantined_count = quarantined.len() as u64;
        let t0 = Instant::now();
        let next = AtomicUsize::new(0);
        let corrupt = Mutex::new(quarantined);
        std::thread::scope(|scope| {
            for _ in 0..parallelism.max(1) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(key) = todo.get(i) else { break };
                    // I/O errors are folded into "damaged" for the
                    // report: either way the block is unreadable here.
                    if !self.check_block(key).unwrap_or(false) {
                        corrupt.lock().push(*key);
                    }
                });
            }
        });
        let corrupt_keys = corrupt.into_inner();
        Ok(ScrubReport {
            scanned: todo.len() as u64 + quarantined_count,
            corrupt: corrupt_keys.len() as u64,
            corrupt_keys,
            secs: t0.elapsed().as_secs_f64(),
        })
    }

    /// Header-only crash-damage check used by the recovery sweep: is
    /// the record's header parseable, and (for raw records, where it
    /// is knowable without decoding) is the payload the length the
    /// header declares? Encoded payloads torn mid-stream are caught by
    /// the read path's hash gate and by `scrub`; this pass only
    /// quarantines what a crash demonstrably tore. Deliberately does
    /// not touch the corrupt counter or the cache — it reports to the
    /// recovery accounting instead.
    fn record_is_torn(&self, key: &Digest) -> Result<bool, StoreError> {
        let path = self.block_path(key);
        let mut f = match self.vfs.open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(e.into()),
        };
        let total = f.len()?;
        let mut header = [0u8; HEADER_LEN];
        match f.read_exact(&mut header) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(true),
            Err(e) => return Err(e.into()),
        }
        if header[..4] != RECORD_MAGIC {
            return Ok(true);
        }
        let Some(format) = parse_format(header[4]) else {
            return Ok(true);
        };
        let original_len = u64::from_le_bytes(header[5..13].try_into().expect("8 bytes"));
        let payload_len = total.saturating_sub(HEADER_LEN as u64);
        Ok(format == StoredFormat::Raw && payload_len != original_len)
    }

    /// The crash-recovery sweep: walk every shard, delete orphaned
    /// `*.tmp` files (a crash mid-write leaves them), quarantine
    /// records whose header a crash tore, and reconcile the at-rest
    /// block count. With `apply = false` nothing is touched — the
    /// report says what *would* happen (the CLI's dry-run default).
    ///
    /// Runs automatically at [`ShardedStore::open`]; an operator can
    /// rerun it any time via `lepton store recover`.
    pub fn recover(&self, apply: bool) -> Result<RecoveryReport, StoreError> {
        let t0 = Instant::now();
        let mut report = RecoveryReport {
            applied: apply,
            ..Default::default()
        };
        for shard in &self.shards {
            let mut removed_any = false;
            for name in self.vfs.read_dir(&shard.dir)? {
                if name.starts_with(".tmp-") {
                    report.orphans_found += 1;
                    if apply {
                        let _guard = shard.write_lock.lock();
                        if self.vfs.remove_file(&shard.dir.join(&name)).is_ok() {
                            report.orphans_removed += 1;
                            removed_any = true;
                        }
                    }
                    continue;
                }
                if let Some(stem) = name.strip_suffix(".corrupt") {
                    if let Some(key) = parse_hex(stem) {
                        if !self.contains(&key) {
                            report.quarantined_pending += 1;
                        }
                    }
                    continue;
                }
                let Some(key) = parse_hex(&name) else {
                    continue;
                };
                if self.record_is_torn(&key)? {
                    report.torn_found += 1;
                    if apply && self.quarantine(&key)? {
                        report.torn_quarantined += 1;
                        report.quarantined_pending += 1;
                    }
                } else {
                    report.blocks += 1;
                }
            }
            if removed_any {
                // The removals must be durable too, or the next crash
                // resurrects the orphans this sweep just buried.
                self.vfs.sync_dir(&shard.dir)?;
            }
        }
        report.secs = t0.elapsed().as_secs_f64();
        self.metrics.recovery_runs.inc();
        self.metrics.recovery_orphans.add(report.orphans_removed);
        self.metrics.recovery_torn.add(report.torn_quarantined);
        self.metrics.blocks_at_rest.set(report.blocks as i64);
        Ok(report)
    }

    /// Move a damaged record aside (renamed to `<hex>.corrupt`, a name
    /// the store's walks skip) so a subsequent `put` of the true
    /// content can land — content-addressed dedup would otherwise see
    /// the damaged file and refuse to rewrite it. Returns whether a
    /// record was actually quarantined. The serving path calls this
    /// when a read trips the integrity gate, which is what lets a
    /// fleet's read-repair overwrite a bad replica.
    /// Quarantine runs even on a read-only store: it moves damage
    /// aside without writing new data, and repair must stay possible
    /// on a degraded node.
    pub fn quarantine(&self, key: &Digest) -> Result<bool, StoreError> {
        let shard = self.shard_of(key);
        let path = self.block_path(key);
        let _guard = shard.write_lock.lock();
        shard.cache.lock().remove(key);
        let dest = self.quarantine_path(key);
        match self.vfs.rename(&path, &dest) {
            Ok(()) => {
                // The tombstone rename must be as durable as the data
                // renames, or a crash un-quarantines the damage.
                if let Err(e) = self.vfs.sync_dir(&shard.dir) {
                    self.latch_read_only(&format!("failed fsync during quarantine: {e}"));
                    return Err(StoreError::Io(e));
                }
                Ok(true)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Convert one existing block to Lepton in place if it qualifies.
    /// Returns `(bytes_before, bytes_after)` when converted.
    fn backfill_one(&self, key: &Digest) -> Result<Option<(u64, u64)>, StoreError> {
        let Some((format, _, before)) = self.read_header(key)? else {
            return Ok(None);
        };
        if format == StoredFormat::Lepton {
            return Ok(None);
        }
        // Full read path (hash check included): never convert bytes we
        // cannot prove are the original content.
        let Some(original) = self.get(key)? else {
            return Ok(None);
        };
        if !looks_like_jpeg(&original) {
            return Ok(None);
        }
        let Some(lepton) = self.try_admit(&original) else {
            return Ok(None);
        };
        if lepton.len() as u64 >= before {
            return Ok(None);
        }
        let shard = self.shard_of(key);
        let after = lepton.len() as u64;
        {
            let _guard = shard.write_lock.lock();
            self.write_record(
                shard,
                &self.block_path(key),
                StoredFormat::Lepton,
                original.len() as u64,
                &lepton,
            )?;
        }
        // The cached decode stays valid (content is unchanged). The
        // put-path counters are not touched — this handle may never
        // have put the block — only the monotonic conversion count;
        // at-rest truth comes from `stat()`.
        self.metrics.backfill_conversions.inc();
        Ok(Some((before, after)))
    }

    /// The backfill driver (§5.6): walk the store with `parallelism`
    /// worker threads, converting every eligible block in place. Safe
    /// to run while `put`/`get` traffic continues.
    pub fn backfill(&self, parallelism: usize) -> Result<BackfillReport, StoreError> {
        let parallelism = parallelism.max(1);
        let todo: Vec<Digest> = {
            let mut v = Vec::new();
            for key in self.keys()? {
                if self.format_of(&key)? != Some(StoredFormat::Lepton) {
                    v.push(key);
                }
            }
            v
        };
        let t0 = Instant::now();
        let next = AtomicUsize::new(0);
        let converted = AtomicU64::new(0);
        let skipped = AtomicU64::new(0);
        let bytes_before = AtomicU64::new(0);
        let bytes_after = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..parallelism {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(key) = todo.get(i) else { break };
                    match self.backfill_one(key) {
                        Ok(Some((before, after))) => {
                            converted.fetch_add(1, Ordering::Relaxed);
                            bytes_before.fetch_add(before, Ordering::Relaxed);
                            bytes_after.fetch_add(after, Ordering::Relaxed);
                        }
                        // Corrupt or ineligible blocks are left alone;
                        // backfill is an optimization pass, not repair.
                        Ok(None) | Err(_) => {
                            skipped.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        Ok(BackfillReport {
            scanned: todo.len() as u64,
            converted: converted.into_inner(),
            skipped: skipped.into_inner(),
            bytes_before: bytes_before.into_inner(),
            bytes_after: bytes_after.into_inner(),
            secs: t0.elapsed().as_secs_f64(),
        })
    }
}

/// Whether an I/O error means the disk is full — checked by errno (the
/// injector forges errno 28 exactly like a real full disk) and by kind
/// for filesystems that report it differently.
fn is_enospc(e: &io::Error) -> bool {
    e.raw_os_error() == Some(28) || matches!(e.kind(), io::ErrorKind::StorageFull)
}

fn format_byte(f: StoredFormat) -> u8 {
    match f {
        StoredFormat::Lepton => b'L',
        StoredFormat::Deflate => b'Z',
        StoredFormat::Raw => b'R',
    }
}

fn parse_format(b: u8) -> Option<StoredFormat> {
    match b {
        b'L' => Some(StoredFormat::Lepton),
        b'Z' => Some(StoredFormat::Deflate),
        b'R' => Some(StoredFormat::Raw),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lepton_corpus::builder::{clean_jpeg, CorpusSpec};

    fn spec() -> CorpusSpec {
        CorpusSpec {
            min_dim: 64,
            max_dim: 144,
            ..Default::default()
        }
    }

    fn temp_root(tag: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("lepton-blockstore-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn jpeg_put_is_transparent_and_compressed() {
        let root = temp_root("basic");
        let store = ShardedStore::open(&root, StoreConfig::default()).unwrap();
        let jpg = clean_jpeg(&spec(), 1);
        let key = store.put(&jpg).unwrap();
        assert_eq!(key, sha256(&jpg), "addressed by original content");
        assert_eq!(store.format_of(&key).unwrap(), Some(StoredFormat::Lepton));
        assert!(store.stored_size(&key).unwrap().unwrap() < jpg.len());
        assert_eq!(store.get(&key).unwrap().unwrap(), jpg);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn non_jpeg_stored_raw_and_roundtrips() {
        let root = temp_root("raw");
        let store = ShardedStore::open(&root, StoreConfig::default()).unwrap();
        let data = b"plain bytes, not an image".repeat(50);
        let key = store.put(&data).unwrap();
        assert_eq!(store.format_of(&key).unwrap(), Some(StoredFormat::Raw));
        assert_eq!(store.get(&key).unwrap().unwrap(), data);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn cache_serves_hot_reads() {
        let root = temp_root("cache");
        let store = ShardedStore::open(&root, StoreConfig::default()).unwrap();
        let jpg = clean_jpeg(&spec(), 2);
        let key = store.put(&jpg).unwrap();
        assert_eq!(store.get(&key).unwrap().unwrap(), jpg); // cold: decode + fill
        assert_eq!(store.get(&key).unwrap().unwrap(), jpg); // hot
        assert_eq!(store.metrics.cache_hits.get(), 1);
        assert_eq!(store.metrics.cache_misses.get(), 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn lru_evicts_oldest_within_budget() {
        let mut cache = ShardCache::new(100);
        cache.insert([1; 32], vec![0; 40]);
        cache.insert([2; 32], vec![0; 40]);
        assert!(cache.get(&[1; 32]).is_some()); // touch 1: now 2 is LRU
        cache.insert([3; 32], vec![0; 40]); // evicts 2
        assert!(cache.get(&[2; 32]).is_none());
        assert!(cache.get(&[1; 32]).is_some());
        assert!(cache.get(&[3; 32]).is_some());
        // An over-budget block is refused, not cached at everyone
        // else's expense.
        cache.insert([4; 32], vec![0; 101]);
        assert!(cache.get(&[4; 32]).is_none());
    }

    #[test]
    fn store_persists_across_reopen() {
        let root = temp_root("reopen");
        let jpg = clean_jpeg(&spec(), 3);
        let key = {
            let store = ShardedStore::open(&root, StoreConfig::default()).unwrap();
            store.put(&jpg).unwrap()
        };
        let store = ShardedStore::open(&root, StoreConfig::default()).unwrap();
        assert!(store.contains(&key));
        assert_eq!(store.get(&key).unwrap().unwrap(), jpg);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reopen_with_wrong_shard_count_is_refused() {
        let root = temp_root("geometry");
        drop(ShardedStore::open(&root, StoreConfig::default()).unwrap());
        let wrong = StoreConfig {
            shards: 3,
            ..Default::default()
        };
        assert!(ShardedStore::open(&root, wrong).is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn shutoff_then_backfill_converts_in_place() {
        let root = temp_root("backfill");
        let cfg = StoreConfig {
            compress_on_write: false,
            ..Default::default()
        };
        let store = ShardedStore::open(&root, cfg).unwrap();
        let jpgs: Vec<Vec<u8>> = (0..4).map(|s| clean_jpeg(&spec(), 10 + s)).collect();
        let mut keys = Vec::new();
        for j in &jpgs {
            keys.push(store.put(j).unwrap());
        }
        // Plus one non-JPEG that backfill must leave alone.
        let other = store.put(b"not an image at all").unwrap();
        for k in &keys {
            assert_eq!(store.format_of(k).unwrap(), Some(StoredFormat::Raw));
        }
        let report = store.backfill(2).unwrap();
        assert_eq!(report.scanned, 5);
        assert_eq!(report.converted, 4, "{report:?}");
        assert!(report.savings() > 0.0);
        for (k, j) in keys.iter().zip(&jpgs) {
            assert_eq!(store.format_of(k).unwrap(), Some(StoredFormat::Lepton));
            assert_eq!(store.get(k).unwrap().unwrap(), *j);
        }
        assert_eq!(store.format_of(&other).unwrap(), Some(StoredFormat::Raw));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn backfill_from_fresh_handle_keeps_counters_sane() {
        // A backfill run in a process that never put the blocks (the
        // CLI pattern: put in one invocation, backfill in another)
        // must not wrap the put-path counters.
        let root = temp_root("fresh-backfill");
        {
            let cfg = StoreConfig {
                compress_on_write: false,
                ..Default::default()
            };
            let store = ShardedStore::open(&root, cfg).unwrap();
            store.put(&clean_jpeg(&spec(), 21)).unwrap();
        }
        let store = ShardedStore::open(&root, StoreConfig::default()).unwrap();
        let report = store.backfill(2).unwrap();
        assert_eq!(report.converted, 1);
        let m = &store.metrics;
        assert_eq!(m.backfill_conversions.get(), 1);
        assert_eq!(m.raw_blocks.get(), 0, "no wraparound");
        assert!(m.bytes_stored.get() < u64::MAX / 2);
        // The disk walk is the authority on at-rest state.
        let s = store.stat().unwrap();
        assert_eq!(s.lepton_blocks, 1);
        assert_eq!(s.raw_blocks, 0);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn put_raw_skips_the_codec() {
        let root = temp_root("putraw");
        let store = ShardedStore::open(&root, StoreConfig::default()).unwrap();
        let jpg = clean_jpeg(&spec(), 22);
        let key = store.put_raw(&jpg).unwrap();
        assert_eq!(store.format_of(&key).unwrap(), Some(StoredFormat::Raw));
        assert_eq!(store.get(&key).unwrap().unwrap(), jpg);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn scrub_reports_damage_and_quarantine_clears_it() {
        let root = temp_root("scrub");
        let store = ShardedStore::open(&root, StoreConfig::default()).unwrap();
        let jpg = clean_jpeg(&spec(), 31);
        let good = store.put(&jpg).unwrap();
        let bad = store.put(b"soon to be damaged payload bytes").unwrap();

        let clean = store.scrub(2).unwrap();
        assert_eq!(clean.scanned, 2);
        assert_eq!(clean.corrupt, 0, "{clean:?}");

        // Flip a payload byte of the raw block on disk.
        let path = store.block_path(&bad);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let report = store.scrub(2).unwrap();
        assert_eq!(report.scanned, 2);
        assert_eq!(report.corrupt, 1, "{report:?}");
        assert_eq!(report.corrupt_keys, vec![bad]);
        // Scrub is read-only: the damaged record is still in place…
        assert!(store.contains(&bad));
        assert!(matches!(store.get(&bad), Err(StoreError::Corrupt(_))));

        // …until quarantine moves it aside, after which a put of the
        // true content lands instead of hitting the dedup short-cut.
        assert!(store.quarantine(&bad).unwrap());
        assert!(!store.contains(&bad));
        assert!(!store.quarantine(&bad).unwrap(), "already moved");
        // Quarantined is damaged, not absent: a read must keep saying
        // Corrupt (never an authoritative miss), and a scrub must keep
        // reporting the block until the repair actually lands.
        assert!(matches!(store.get(&bad), Err(StoreError::Corrupt(_))));
        let pending = store.scrub(1).unwrap();
        assert_eq!(pending.corrupt, 1, "{pending:?}");
        assert_eq!(pending.corrupt_keys, vec![bad]);
        let again = store.put(b"soon to be damaged payload bytes").unwrap();
        assert_eq!(again, bad);
        assert_eq!(
            store.get(&bad).unwrap().unwrap(),
            b"soon to be damaged payload bytes"
        );
        let healed = store.scrub(1).unwrap();
        assert_eq!(healed.corrupt, 0);
        // The intact block was never disturbed.
        assert_eq!(store.get(&good).unwrap().unwrap(), jpg);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn scrub_bypasses_the_read_cache() {
        let root = temp_root("scrub-cache");
        let store = ShardedStore::open(&root, StoreConfig::default()).unwrap();
        let key = store.put(b"cached and then damaged").unwrap();
        // Warm the cache, then damage the disk record behind it.
        assert!(store.get(&key).unwrap().is_some());
        let path = store.block_path(&key);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        // A cached read would still succeed; the scrub must not.
        let report = store.scrub(1).unwrap();
        assert_eq!(report.corrupt, 1, "scrub answered from cache");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn hex_digest_roundtrip() {
        let d = sha256(b"abc");
        assert_eq!(parse_hex(&hex(&d)), Some(d));
        assert_eq!(parse_hex("zz"), None);
        assert_eq!(parse_hex(&"0".repeat(63)), None);
    }

    #[test]
    fn enospc_latches_read_only_sheds_writes_serves_reads() {
        use crate::vfs::{FaultConfig, FaultKind, FaultVfs};
        let vfs = FaultVfs::new(FaultConfig::default());
        let cfg = StoreConfig {
            shards: 2,
            compress_on_write: false,
            ..Default::default()
        };
        let store = ShardedStore::open_on(vfs.clone(), "/store", cfg).unwrap();
        let a = store.put(b"safe before the disk filled").unwrap();

        vfs.inject_next(FaultKind::Enospc);
        let err = store.put(b"this write hits a full disk").unwrap_err();
        assert!(matches!(err, StoreError::ReadOnly(_)), "{err}");
        assert!(store.is_read_only());
        assert!(store.read_only_reason().unwrap().contains("ENOSPC"));
        assert_eq!(store.metrics.readonly.value(), 1);

        // Subsequent writes shed with the typed error without touching
        // the disk; reads keep serving.
        let before = store.metrics.readonly_sheds.get();
        assert!(matches!(
            store.put(b"still full"),
            Err(StoreError::ReadOnly(_))
        ));
        assert!(store.metrics.readonly_sheds.get() > before);
        assert_eq!(
            store.get(&a).unwrap().unwrap(),
            b"safe before the disk filled"
        );
        // A fresh handle on a repaired disk is writable again.
        let store2 = ShardedStore::open_on(
            vfs.clone(),
            "/store",
            StoreConfig {
                shards: 2,
                compress_on_write: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!store2.is_read_only());
        store2.put(b"disk repaired").unwrap();
    }

    #[test]
    fn recover_sweeps_orphans_and_quarantines_torn_records() {
        use crate::vfs::{FaultConfig, FaultVfs, Vfs};
        let vfs = FaultVfs::new(FaultConfig::default());
        let cfg = StoreConfig {
            shards: 2,
            compress_on_write: false,
            ..Default::default()
        };
        let store = ShardedStore::open_on(vfs.clone(), "/store", cfg.clone()).unwrap();
        let good = store.put(b"healthy block").unwrap();

        // Plant crash debris by hand: an orphaned tmp and a record
        // whose header a "crash" truncated to garbage.
        let torn_key = sha256(b"the torn block");
        vfs.write(&store.shards[0].dir.join(".tmp-999-0"), b"partial")
            .unwrap();
        vfs.write(&store.block_path(&torn_key), b"LB").unwrap();

        let dry = store.recover(false).unwrap();
        assert_eq!(dry.orphans_found, 1);
        assert_eq!(dry.orphans_removed, 0, "dry run must not touch disk");
        assert_eq!(dry.torn_found, 1);
        assert_eq!(dry.torn_quarantined, 0);
        assert!(!dry.clean());
        assert!(vfs.exists(&store.shards[0].dir.join(".tmp-999-0")));

        let fix = store.recover(true).unwrap();
        assert_eq!(fix.orphans_removed, 1);
        assert_eq!(fix.torn_quarantined, 1);
        assert_eq!(fix.blocks, 1);
        assert!(!vfs.exists(&store.shards[0].dir.join(".tmp-999-0")));
        // The torn record is damage-visible, not absent.
        assert!(matches!(store.get(&torn_key), Err(StoreError::Corrupt(_))));
        assert_eq!(store.get(&good).unwrap().unwrap(), b"healthy block");

        let after = store.recover(true).unwrap();
        assert!(after.orphans_found == 0 && after.torn_found == 0);
        assert_eq!(after.quarantined_pending, 1, "repair still pending");
        assert_eq!(store.metrics.recovery_orphans.get(), 1);
        assert_eq!(store.metrics.recovery_torn.get(), 1);
    }

    #[test]
    fn blocks_spread_across_shard_directories() {
        let root = temp_root("spread");
        let store = ShardedStore::open(&root, StoreConfig::default()).unwrap();
        for i in 0..64u64 {
            store.put(format!("block {i}").as_bytes()).unwrap();
        }
        let used = (0..store.shard_count())
            .filter(|i| {
                std::fs::read_dir(root.join(format!("shard-{i:03}")))
                    .map(|d| d.count() > 0)
                    .unwrap_or(false)
            })
            .count();
        assert!(used > store.shard_count() / 2, "only {used} shards used");
        assert_eq!(store.keys().unwrap().len(), 64);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
