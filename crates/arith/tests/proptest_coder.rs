//! Property tests for the range coder: any sequence of (bit, context)
//! pairs must round-trip exactly, under adaptive and fixed probabilities.

use lepton_arith::{BoolDecoder, BoolEncoder, Branch, SliceSource};
use proptest::prelude::*;

proptest! {
    #[test]
    fn adaptive_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..4096)) {
        let mut enc = BoolEncoder::new();
        let mut b = Branch::new();
        for &bit in &bits {
            enc.put(bit, &mut b);
        }
        let bytes = enc.finish();
        let mut dec = BoolDecoder::new(SliceSource::new(&bytes));
        let mut b = Branch::new();
        for &bit in &bits {
            prop_assert_eq!(dec.get(&mut b), bit);
        }
    }

    #[test]
    fn multi_context_roundtrip(
        items in proptest::collection::vec((any::<bool>(), 0usize..16), 0..2048)
    ) {
        let mut enc = BoolEncoder::new();
        let mut bins = [Branch::new(); 16];
        for &(bit, ctx) in &items {
            enc.put(bit, &mut bins[ctx]);
        }
        let bytes = enc.finish();
        let mut dec = BoolDecoder::new(SliceSource::new(&bytes));
        let mut bins = [Branch::new(); 16];
        for &(bit, ctx) in &items {
            prop_assert_eq!(dec.get(&mut bins[ctx]), bit);
        }
    }

    #[test]
    fn fixed_prob_roundtrip(
        items in proptest::collection::vec((any::<bool>(), 1u16..=65535), 0..2048)
    ) {
        let mut enc = BoolEncoder::new();
        for &(bit, p) in &items {
            enc.put_with_prob(bit, p);
        }
        let bytes = enc.finish();
        let mut dec = BoolDecoder::new(SliceSource::new(&bytes));
        for &(bit, p) in &items {
            prop_assert_eq!(dec.get_with_prob(p), bit);
        }
    }

    #[test]
    fn uniform_values_roundtrip(
        vals in proptest::collection::vec((any::<u32>(), 1u32..=32), 0..512)
    ) {
        let mut enc = BoolEncoder::new();
        for &(v, n) in &vals {
            let masked = if n == 32 { v } else { v & ((1 << n) - 1) };
            enc.put_uniform_bits(masked, n);
        }
        let bytes = enc.finish();
        let mut dec = BoolDecoder::new(SliceSource::new(&bytes));
        for &(v, n) in &vals {
            let masked = if n == 32 { v } else { v & ((1 << n) - 1) };
            prop_assert_eq!(dec.get_uniform_bits(n), masked);
        }
    }

    #[test]
    fn branch_probability_in_range(obs in proptest::collection::vec(any::<bool>(), 0..10_000)) {
        let mut b = Branch::new();
        for bit in obs {
            b.record(bit);
            let p = b.prob_false();
            prop_assert!((1..=65535).contains(&p));
            let (c0, c1) = b.counts();
            prop_assert!(c0 >= 1 && c1 >= 1);
        }
    }
}
