//! Plain MSB-first bit I/O.
//!
//! Used by container headers and by tests. JPEG's entropy-coded segment
//! needs its own bit I/O with `0xFF` stuffing and restart-marker
//! alignment, which lives in `lepton-jpeg`; Deflate is LSB-first and owns
//! its bit I/O in `lepton-deflate`. This module is the shared, simple
//! case.

/// MSB-first bit writer over a growable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    /// Bits accumulated into the current partial byte (MSB side first).
    acc: u8,
    /// Number of valid bits in `acc` (0..8).
    nbits: u8,
}

impl BitWriter {
    /// New, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a single bit.
    #[inline]
    pub fn put_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | bit as u8;
        self.nbits += 1;
        if self.nbits == 8 {
            self.out.push(self.acc);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Append the low `n` bits of `v`, most-significant bit first.
    pub fn put_bits(&mut self, v: u32, n: u32) {
        debug_assert!(n <= 32);
        for i in (0..n).rev() {
            self.put_bit((v >> i) & 1 == 1);
        }
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.out.len() * 8 + self.nbits as usize
    }

    /// Pad to a byte boundary with `pad_bit` and return the buffer.
    pub fn finish(mut self, pad_bit: bool) -> Vec<u8> {
        while self.nbits != 0 {
            self.put_bit(pad_bit);
        }
        self.out
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Absolute bit position from the start of `data`.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// New reader positioned at the first bit of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, pos: 0 }
    }

    /// Read one bit; `None` at end of input.
    #[inline]
    pub fn get_bit(&mut self) -> Option<bool> {
        let byte = self.data.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Read `n` bits MSB-first; `None` if input is exhausted first.
    pub fn get_bits(&mut self, n: u32) -> Option<u32> {
        debug_assert!(n <= 32);
        let mut v = 0u32;
        for _ in 0..n {
            v = (v << 1) | self.get_bit()? as u32;
        }
        Some(v)
    }

    /// Current absolute bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Bits remaining in the input.
    pub fn remaining(&self) -> usize {
        (self.data.len() * 8).saturating_sub(self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip() {
        let mut w = BitWriter::new();
        let bits = [
            true, false, false, true, true, true, false, true, true, false,
        ];
        for &b in &bits {
            w.put_bit(b);
        }
        let bytes = w.finish(false);
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &bits {
            assert_eq!(r.get_bit(), Some(b));
        }
    }

    #[test]
    fn multibit_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b101, 3);
        w.put_bits(0xFF00, 16);
        w.put_bits(1, 1);
        let bytes = w.finish(true);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(3), Some(0b101));
        assert_eq!(r.get_bits(16), Some(0xFF00));
        assert_eq!(r.get_bits(1), Some(1));
        // Padding was 1s.
        assert_eq!(r.get_bits(4), Some(0b1111));
    }

    #[test]
    fn reader_stops_at_end() {
        let mut r = BitReader::new(&[0xAB]);
        assert_eq!(r.get_bits(8), Some(0xAB));
        assert_eq!(r.get_bit(), None);
        assert_eq!(r.get_bits(1), None);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.put_bits(0, 3);
        assert_eq!(w.bit_len(), 3);
        w.put_bits(0, 8);
        assert_eq!(w.bit_len(), 11);
    }

    #[test]
    fn pad_bit_zero() {
        let mut w = BitWriter::new();
        w.put_bit(true);
        let bytes = w.finish(false);
        assert_eq!(bytes, vec![0b1000_0000]);
    }
}
