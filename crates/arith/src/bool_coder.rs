//! Carry-correct binary range coder.
//!
//! Encoder and decoder for a binary arithmetic code with 16-bit
//! probabilities. The normalization follows the classic LZMA scheme:
//! a 64-bit `low` accumulator whose overflow bit is the carry, a 32-bit
//! `range`, and byte-at-a-time renormalization once `range` drops below
//! 2^24. This is algebraically the same family as the VP8 bool coder the
//! paper modified (RFC 6386 §13.2); see the crate docs for why we prefer
//! the byte-wise carry formulation.

use crate::Branch;

const TOP: u32 = 1 << 24;

/// Source of compressed bytes for [`BoolDecoder`].
///
/// Returns `0` once exhausted: a range decoder that knows how many symbols
/// to decode never reads meaningfully past the end, and zero-fill is the
/// conventional way to let the final symbols resolve.
pub trait ByteSource {
    /// Produce the next byte of the compressed stream (0 past the end).
    fn next_byte(&mut self) -> u8;

    /// Fill `out` with the next bytes of the stream, zero-filling past
    /// the end. The decoder calls this once per refill window instead of
    /// once per byte, so a boxed/dyn source pays one indirect call per
    /// block rather than per byte. Implementors with contiguous backing
    /// should override with a bulk copy.
    #[inline]
    fn read_block(&mut self, out: &mut [u8]) {
        for b in out.iter_mut() {
            *b = self.next_byte();
        }
    }
}

impl<S: ByteSource + ?Sized> ByteSource for &mut S {
    #[inline]
    fn next_byte(&mut self) -> u8 {
        (**self).next_byte()
    }

    #[inline]
    fn read_block(&mut self, out: &mut [u8]) {
        (**self).read_block(out)
    }
}

impl ByteSource for Box<dyn ByteSource + '_> {
    #[inline]
    fn next_byte(&mut self) -> u8 {
        (**self).next_byte()
    }

    #[inline]
    fn read_block(&mut self, out: &mut [u8]) {
        (**self).read_block(out)
    }
}

/// Shared bulk-copy implementation for slice-backed sources. Advances
/// `pos` only to `data.len()`: zero-fill reads never move the cursor, so
/// the consumption counter stays exact and cannot grow without bound on
/// adversarial streams that drain far past the end.
#[inline]
fn read_block_from_slice(data: &[u8], pos: &mut usize, out: &mut [u8]) {
    let avail = data.len() - *pos;
    let n = avail.min(out.len());
    out[..n].copy_from_slice(&data[*pos..*pos + n]);
    out[n..].fill(0);
    *pos += n;
}

/// A [`ByteSource`] over an in-memory slice.
#[derive(Clone, Debug)]
pub struct SliceSource<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> SliceSource<'a> {
    /// Wrap `data`, starting at its first byte.
    pub fn new(data: &'a [u8]) -> Self {
        SliceSource { data, pos: 0 }
    }

    /// Number of bytes consumed so far. Zero-fill reads past the end do
    /// not advance the cursor, so this is always `<= data.len()`.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

impl ByteSource for SliceSource<'_> {
    #[inline]
    fn next_byte(&mut self) -> u8 {
        match self.data.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                b
            }
            None => 0,
        }
    }

    #[inline]
    fn read_block(&mut self, out: &mut [u8]) {
        read_block_from_slice(self.data, &mut self.pos, out);
    }
}

/// An owned [`ByteSource`] over a `Vec<u8>`.
#[derive(Clone, Debug)]
pub struct VecSource {
    data: Vec<u8>,
    pos: usize,
}

impl VecSource {
    /// Wrap an owned buffer.
    pub fn new(data: Vec<u8>) -> Self {
        VecSource { data, pos: 0 }
    }

    /// Number of bytes consumed so far. Zero-fill reads past the end do
    /// not advance the cursor, so this is always `<= data.len()`.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Recover the backing buffer (e.g. to recycle its allocation).
    pub fn into_inner(self) -> Vec<u8> {
        self.data
    }
}

impl ByteSource for VecSource {
    #[inline]
    fn next_byte(&mut self) -> u8 {
        match self.data.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                b
            }
            None => 0,
        }
    }

    #[inline]
    fn read_block(&mut self, out: &mut [u8]) {
        read_block_from_slice(&self.data, &mut self.pos, out);
    }
}

/// Binary range encoder.
///
/// Bits are coded against a probability, either adaptively via a
/// [`Branch`] ([`BoolEncoder::put`]) or with a fixed probability
/// ([`BoolEncoder::put_with_prob`]). Call [`BoolEncoder::finish`] to flush
/// and take the output.
#[derive(Clone, Debug)]
pub struct BoolEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for BoolEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl BoolEncoder {
    /// New encoder with an empty output buffer.
    pub fn new() -> Self {
        Self::with_buffer(Vec::new())
    }

    /// New encoder writing into `buf` (cleared, capacity retained). This
    /// is the arena-reuse entry point: a pooled worker hands the same
    /// buffer to every job it runs, so steady-state encoding does no
    /// output-buffer reallocation at all.
    pub fn with_buffer(mut buf: Vec<u8>) -> Self {
        buf.clear();
        BoolEncoder {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: buf,
        }
    }

    /// Encode `bit` with the probability stored in `branch`, then adapt
    /// the branch. This is the only call the hot path of the model uses.
    #[inline]
    pub fn put(&mut self, bit: bool, branch: &mut Branch) {
        self.put_with_prob(bit, branch.prob_false());
        branch.record(bit);
    }

    /// [`BoolEncoder::put`] with the bin's probability refresh deferred:
    /// the counts adapt now, the cached probability stays stale until
    /// the caller's batched [`crate::refresh_probs`] sweep. Emits the
    /// same bytes as `put` — the probability is read before the record
    /// either way — provided no bin is queried again before the sweep.
    #[inline]
    pub fn put_deferred(&mut self, bit: bool, branch: &mut Branch) {
        self.put_with_prob(bit, branch.prob_false());
        branch.record_deferred(bit);
    }

    /// Encode `bit` given `prob_false`, the 16-bit fixed-point probability
    /// that `bit` is `false`. The probability must lie in `1..=65535`.
    #[inline]
    pub fn put_with_prob(&mut self, bit: bool, prob_false: u16) {
        debug_assert!(prob_false >= 1);
        let bound = (self.range >> 16) * prob_false as u32;
        // Branchless select: the bit values of real coefficient streams
        // are poorly predicted, and a mispredict costs more than the
        // extra ALU ops. `mask` is all-ones when `bit` is set.
        let mask = (bit as u32).wrapping_neg();
        self.low += (bound & mask) as u64;
        self.range = bound ^ ((bound ^ (self.range - bound)) & mask);
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    /// Encode a bit with probability 1/2 (no adaptation). Used for
    /// residual bits the model deems incompressible.
    #[inline]
    pub fn put_uniform(&mut self, bit: bool) {
        self.put_with_prob(bit, 1 << 15);
    }

    /// Encode the low `n` bits of `v`, most-significant first, each at
    /// probability 1/2.
    pub fn put_uniform_bits(&mut self, v: u32, n: u32) {
        debug_assert!(n <= 32);
        for i in (0..n).rev() {
            self.put_uniform((v >> i) & 1 == 1);
        }
    }

    #[inline]
    fn shift_low(&mut self) {
        if (self.low as u32 as u64) < 0xFF00_0000 || self.low >= (1 << 32) {
            let carry = (self.low >> 32) as u8;
            let mut first = true;
            while self.cache_size > 0 {
                let b = if first {
                    self.cache.wrapping_add(carry)
                } else {
                    0xFFu8.wrapping_add(carry)
                };
                self.out.push(b);
                first = false;
                self.cache_size -= 1;
            }
            self.cache = (self.low >> 24) as u8;
        }
        self.cache_size += 1;
        // Shift within 32 bits: the byte shifted out is exactly the one we
        // just wrote (or deferred into `cache_size`).
        self.low = ((self.low as u32) << 8) as u64;
    }

    /// Flush the coder and return the compressed bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }

    /// Bytes emitted so far (the final size will include up to 5 more
    /// flush bytes). Useful for instrumentation (Fig. 4 component sizes).
    pub fn bytes_so_far(&self) -> usize {
        self.out.len()
    }
}

/// Refill-window size for [`BoolDecoder`]'s internal byte buffer. One
/// [`ByteSource::read_block`] call per window keeps the per-byte cost of
/// renormalization at an array load — no per-byte trait hop even for
/// boxed sources.
const REFILL: usize = 64;

/// Binary range decoder, mirroring [`BoolEncoder`].
///
/// Input bytes are pulled through a 64-byte window filled by
/// [`ByteSource::read_block`], so the source (and up to one window of
/// prefetch) may run ahead of the bytes the coder has actually folded
/// into `code`.
#[derive(Clone, Debug)]
pub struct BoolDecoder<S: ByteSource> {
    code: u32,
    range: u32,
    buf: [u8; REFILL],
    buf_pos: usize,
    src: S,
}

impl<S: ByteSource> BoolDecoder<S> {
    /// Initialize from a byte source (consumes the 5-byte preamble the
    /// encoder's flush produced).
    pub fn new(src: S) -> Self {
        let mut dec = BoolDecoder {
            code: 0,
            range: u32::MAX,
            buf: [0; REFILL],
            buf_pos: REFILL,
            src,
        };
        // The first emitted byte is always the initial cache (0); skip it
        // and load the next four, exactly inverse to the encoder flush.
        dec.next_byte();
        for _ in 0..4 {
            dec.code = (dec.code << 8) | dec.next_byte() as u32;
        }
        dec
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        if self.buf_pos == REFILL {
            self.src.read_block(&mut self.buf);
            self.buf_pos = 0;
        }
        let b = self.buf[self.buf_pos];
        self.buf_pos += 1;
        b
    }

    /// Decode one bit with the probability in `branch`, then adapt it.
    #[inline]
    pub fn get(&mut self, branch: &mut Branch) -> bool {
        let bit = self.get_with_prob(branch.prob_false());
        branch.record(bit);
        bit
    }

    /// [`BoolDecoder::get`] with the bin's probability refresh deferred
    /// (the decode mirror of [`BoolEncoder::put_deferred`]; same
    /// batched-sweep contract).
    #[inline]
    pub fn get_deferred(&mut self, branch: &mut Branch) -> bool {
        let bit = self.get_with_prob(branch.prob_false());
        branch.record_deferred(bit);
        bit
    }

    /// Decode one bit given the 16-bit probability that it is `false`.
    #[inline]
    pub fn get_with_prob(&mut self, prob_false: u16) -> bool {
        let bound = (self.range >> 16) * prob_false as u32;
        let bit = self.code >= bound;
        // Branchless select (mirrors the encoder): decoded bit values
        // are data-dependent and mispredict badly.
        let mask = (bit as u32).wrapping_neg();
        self.code -= bound & mask;
        self.range = bound ^ ((bound ^ (self.range - bound)) & mask);
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | self.next_byte() as u32;
        }
        bit
    }

    /// Decode a probability-1/2 bit.
    #[inline]
    pub fn get_uniform(&mut self) -> bool {
        self.get_with_prob(1 << 15)
    }

    /// Decode `n` probability-1/2 bits, most-significant first.
    pub fn get_uniform_bits(&mut self, n: u32) -> u32 {
        debug_assert!(n <= 32);
        let mut v = 0u32;
        for _ in 0..n {
            v = (v << 1) | self.get_uniform() as u32;
        }
        v
    }

    /// Access the underlying source. Note the decoder prefetches up to
    /// one refill window, so a consumption counter on the source runs
    /// ahead of the bytes actually folded into the coder state.
    pub fn source(&self) -> &S {
        &self.src
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_adaptive(bits: &[bool]) {
        let mut enc = BoolEncoder::new();
        let mut b = Branch::new();
        for &bit in bits {
            enc.put(bit, &mut b);
        }
        let bytes = enc.finish();
        let mut dec = BoolDecoder::new(SliceSource::new(&bytes));
        let mut b = Branch::new();
        for (i, &bit) in bits.iter().enumerate() {
            assert_eq!(dec.get(&mut b), bit, "bit {i}");
        }
    }

    #[test]
    fn empty_stream() {
        let enc = BoolEncoder::new();
        let bytes = enc.finish();
        assert_eq!(bytes.len(), 5);
        let _dec = BoolDecoder::new(SliceSource::new(&bytes));
    }

    #[test]
    fn single_bits() {
        roundtrip_adaptive(&[true]);
        roundtrip_adaptive(&[false]);
    }

    #[test]
    fn alternating() {
        let bits: Vec<bool> = (0..1000).map(|i| i % 2 == 0).collect();
        roundtrip_adaptive(&bits);
    }

    #[test]
    fn all_ones_compresses() {
        let bits = vec![true; 10_000];
        let mut enc = BoolEncoder::new();
        let mut b = Branch::new();
        for &bit in &bits {
            enc.put(bit, &mut b);
        }
        let bytes = enc.finish();
        // 10k skewed bits should collapse to a few dozen bytes.
        assert!(bytes.len() < 200, "got {} bytes", bytes.len());
        let mut dec = BoolDecoder::new(SliceSource::new(&bytes));
        let mut b = Branch::new();
        for &bit in &bits {
            assert_eq!(dec.get(&mut b), bit);
        }
    }

    #[test]
    fn skewed_random_roundtrip() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let bits: Vec<bool> = (0..50_000).map(|_| next() % 10 == 0).collect();
        roundtrip_adaptive(&bits);
    }

    #[test]
    fn uniform_bits_roundtrip() {
        let mut enc = BoolEncoder::new();
        enc.put_uniform_bits(0xDEAD_BEEF, 32);
        enc.put_uniform_bits(0x5, 3);
        let bytes = enc.finish();
        let mut dec = BoolDecoder::new(SliceSource::new(&bytes));
        assert_eq!(dec.get_uniform_bits(32), 0xDEAD_BEEF);
        assert_eq!(dec.get_uniform_bits(3), 0x5);
    }

    #[test]
    fn extreme_probabilities() {
        let mut enc = BoolEncoder::new();
        for _ in 0..1000 {
            enc.put_with_prob(false, 65535);
            enc.put_with_prob(true, 1);
        }
        let bytes = enc.finish();
        let mut dec = BoolDecoder::new(SliceSource::new(&bytes));
        for _ in 0..1000 {
            assert!(!dec.get_with_prob(65535));
            assert!(dec.get_with_prob(1));
        }
    }

    #[test]
    fn unlikely_symbols_still_roundtrip() {
        // Encode the *improbable* symbol repeatedly: stresses carry logic.
        let mut enc = BoolEncoder::new();
        for _ in 0..500 {
            enc.put_with_prob(true, 65535);
            enc.put_with_prob(false, 1);
        }
        let bytes = enc.finish();
        let mut dec = BoolDecoder::new(SliceSource::new(&bytes));
        for _ in 0..500 {
            assert!(dec.get_with_prob(65535));
            assert!(!dec.get_with_prob(1));
        }
    }

    #[test]
    fn mixed_adaptive_and_fixed() {
        let mut enc = BoolEncoder::new();
        let mut b1 = Branch::new();
        let mut b2 = Branch::new();
        let pattern: Vec<(bool, u8)> = (0..5000)
            .map(|i| ((i * 7) % 3 == 0, (i % 3) as u8))
            .collect();
        for &(bit, which) in &pattern {
            match which {
                0 => enc.put(bit, &mut b1),
                1 => enc.put(bit, &mut b2),
                _ => enc.put_uniform(bit),
            }
        }
        let bytes = enc.finish();
        let mut dec = BoolDecoder::new(SliceSource::new(&bytes));
        let mut b1 = Branch::new();
        let mut b2 = Branch::new();
        for &(bit, which) in &pattern {
            let got = match which {
                0 => dec.get(&mut b1),
                1 => dec.get(&mut b2),
                _ => dec.get_uniform(),
            };
            assert_eq!(got, bit);
        }
    }

    #[test]
    fn vec_source_matches_slice_source() {
        let mut enc = BoolEncoder::new();
        let mut b = Branch::new();
        for i in 0..256 {
            enc.put(i % 5 == 0, &mut b);
        }
        let bytes = enc.finish();
        let mut d1 = BoolDecoder::new(SliceSource::new(&bytes));
        let mut d2 = BoolDecoder::new(VecSource::new(bytes.clone()));
        let mut b1 = Branch::new();
        let mut b2 = Branch::new();
        for _ in 0..256 {
            assert_eq!(d1.get(&mut b1), d2.get(&mut b2));
        }
    }
}
