//! Adaptive binary arithmetic (range) coding for the Lepton reproduction.
//!
//! Lepton (NSDI '17, §3.1) replaces baseline JPEG's Huffman entropy layer
//! with "a modified version of a VP8 range coder" driven by adaptive
//! *statistic bins*. This crate provides that layer:
//!
//! * [`Branch`] — one adaptive statistic bin: a pair of saturating
//!   occurrence counters from which a probability is derived, exactly in
//!   the spirit of the paper's §3.2 ("each bin counting the number of
//!   'ones' and 'zeroes' encountered so far").
//! * [`BoolEncoder`] / [`BoolDecoder`] — a carry-correct binary range
//!   coder. We use the LZMA-style normalization (64-bit low, byte-wise
//!   carry propagation) rather than VP8's bit-wise carry loop; the two are
//!   algebraically equivalent binary arithmetic coders, and the byte-wise
//!   form is easier to prove correct. The probability resolution is 16
//!   bits (VP8 uses 8); this only improves coding efficiency.
//! * [`bitio`] — plain MSB-first bit readers/writers used by container
//!   headers and the model's binarization helpers.
//!
//! # Streaming
//!
//! The decoder pulls bytes through the [`ByteSource`] trait so that
//! `lepton-core` can feed it from a channel while earlier bytes of the
//! stream are still in flight — this is what makes Lepton's multithreaded,
//! time-to-first-byte-optimized decode possible (§3.4).
//!
//! # Example
//!
//! ```
//! use lepton_arith::{BoolEncoder, BoolDecoder, Branch, SliceSource};
//!
//! let bits = [true, false, true, true, false, false, true, false];
//! let mut enc = BoolEncoder::new();
//! let mut bin = Branch::new();
//! for &b in &bits {
//!     enc.put(b, &mut bin);
//! }
//! let bytes = enc.finish();
//!
//! let mut dec = BoolDecoder::new(SliceSource::new(&bytes));
//! let mut bin = Branch::new();
//! for &b in &bits {
//!     assert_eq!(dec.get(&mut bin), b);
//! }
//! ```

pub mod bitio;
mod bool_coder;
mod branch;

pub use bool_coder::{BoolDecoder, BoolEncoder, ByteSource, SliceSource, VecSource};
pub use branch::{prob_from_counts, refresh_probs, Branch, PROB_LUT};
