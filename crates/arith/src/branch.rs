//! Adaptive statistic bins ("branches").
//!
//! A [`Branch`] is one entry of Lepton's probability model: it counts the
//! zeroes and ones observed in a particular context and converts those
//! counts into the probability fed to the range coder. The paper (§3.2)
//! describes 721,564 such bins, "each initialized to a 50-50 probability
//! of zeros vs. ones" and adapted independently as the file is coded.

/// One adaptive statistic bin.
///
/// Counts saturate at 255 and are renormalized by halving (keeping each
/// count at least 1), which gives recent history more weight — the same
/// scheme the production Lepton `Branch` uses. The derived probability is
/// 16-bit fixed point: `P(bit == false) ≈ prob_false() / 65536`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Branch {
    /// `counts[0]` tracks `false` bits, `counts[1]` tracks `true` bits.
    counts: [u8; 2],
}

impl Default for Branch {
    fn default() -> Self {
        Self::new()
    }
}

impl Branch {
    /// A fresh bin with a 50-50 prior (one observation of each symbol).
    #[inline]
    pub const fn new() -> Self {
        Branch { counts: [1, 1] }
    }

    /// Probability that the next bit is `false`, in 16-bit fixed point,
    /// clamped to `1..=65535` so neither symbol ever becomes impossible.
    #[inline]
    pub fn prob_false(&self) -> u16 {
        let c0 = self.counts[0] as u32;
        let c1 = self.counts[1] as u32;
        // Rounded division; counts are >= 1 so the denominator is >= 2.
        let p = (c0 * 65536 + (c0 + c1) / 2) / (c0 + c1);
        p.clamp(1, 65535) as u16
    }

    /// Record an observed bit and adapt the probability.
    #[inline]
    pub fn record(&mut self, bit: bool) {
        let idx = bit as usize;
        if self.counts[idx] == 255 {
            // Saturated: halve both counts (rounding up, so each stays >= 1)
            // to keep adapting while preserving the learned skew.
            self.counts[0] = (self.counts[0] >> 1) | 1;
            self.counts[1] = (self.counts[1] >> 1) | 1;
        }
        self.counts[idx] += 1;
    }

    /// Raw `(false_count, true_count)` pair, for tests and debugging.
    #[inline]
    pub fn counts(&self) -> (u8, u8) {
        (self.counts[0], self.counts[1])
    }

    /// True if this bin has never been updated.
    #[inline]
    pub fn is_fresh(&self) -> bool {
        self.counts == [1, 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_branch_is_even() {
        let b = Branch::new();
        let p = b.prob_false();
        assert!((32700..=32800).contains(&p), "p = {p}");
        assert!(b.is_fresh());
    }

    #[test]
    fn skews_toward_observations() {
        let mut b = Branch::new();
        for _ in 0..100 {
            b.record(false);
        }
        assert!(b.prob_false() > 60000, "p = {}", b.prob_false());
        let mut b = Branch::new();
        for _ in 0..100 {
            b.record(true);
        }
        assert!(b.prob_false() < 5000, "p = {}", b.prob_false());
    }

    #[test]
    fn counts_saturate_by_halving() {
        let mut b = Branch::new();
        for _ in 0..10_000 {
            b.record(true);
        }
        let (c0, c1) = b.counts();
        assert!(c1 >= 128, "true count stays near saturation: {c1}");
        assert!(c0 >= 1, "false count never reaches zero: {c0}");
        // Still strongly skewed after many renormalizations.
        assert!(b.prob_false() < 2000);
    }

    #[test]
    fn probability_never_zero_or_one() {
        let mut b = Branch::new();
        for _ in 0..100_000 {
            b.record(true);
        }
        assert!(b.prob_false() >= 1);
        let mut b = Branch::new();
        for _ in 0..100_000 {
            b.record(false);
        }
        assert!(b.prob_false() >= 60000, "skewed toward false");
        assert!(b.prob_false() < u16::MAX, "never a certain prediction");
    }

    #[test]
    fn adaptation_recovers_after_regime_change() {
        let mut b = Branch::new();
        for _ in 0..1000 {
            b.record(false);
        }
        assert!(b.prob_false() > 60000);
        for _ in 0..1000 {
            b.record(true);
        }
        assert!(b.prob_false() < 32768, "renormalization lets it flip");
    }
}
