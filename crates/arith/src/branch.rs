//! Adaptive statistic bins ("branches").
//!
//! A [`Branch`] is one entry of Lepton's probability model: it counts the
//! zeroes and ones observed in a particular context and converts those
//! counts into the probability fed to the range coder. The paper (§3.2)
//! describes 721,564 such bins, "each initialized to a 50-50 probability
//! of zeros vs. ones" and adapted independently as the file is coded.
//!
//! The coder queries the probability once per coded bit, so that query
//! must not divide: the 16-bit probability is *cached in the bin* and
//! refreshed on [`Branch::record`] via a 4-KiB fixed-point reciprocal
//! table (one multiply + shift, exact). Query = one in-struct load;
//! record = one L1-resident table load plus a store. The 256×256
//! [`PROB_LUT`] pair table remains as the compile-time oracle: both it
//! and the reciprocal path equal the rounded-division formula for
//! every reachable `(false_count, true_count)` pair — enforced
//! exhaustively by the tests below.

/// Rounded-division probability for a `(c0, c1)` count pair, in 16-bit
/// fixed point, clamped to `1..=65535` so neither symbol ever becomes
/// impossible. This is the reference formula; the hot path reads
/// [`PROB_LUT`] instead.
#[inline]
pub const fn prob_from_counts(c0: u8, c1: u8) -> u16 {
    let c0 = c0 as u32;
    let c1 = c1 as u32;
    // Counts are >= 1 in every reachable state, so the denominator is
    // >= 2. (The table contains arbitrary-but-harmless values for the
    // unreachable zero-count rows.)
    let denom = if c0 + c1 == 0 { 1 } else { c0 + c1 };
    let p = (c0 * 65536 + denom / 2) / denom;
    if p < 1 {
        1
    } else if p > 65535 {
        65535
    } else {
        p as u16
    }
}

/// `PROB_LUT[c0 * 256 + c1]` = `prob_from_counts(c0, c1)`: the cached
/// probability for every count pair, computed at compile time.
///
/// Kept as the oracle the tests pin against; the hot path now uses the
/// 4-KiB `RECIP_40` reciprocal table instead — the 128-KiB pair table
/// spills past L1 under real bin-access patterns, while the
/// per-denominator reciprocals stay resident.
pub static PROB_LUT: [u16; 65536] = {
    let mut t = [0u16; 65536];
    let mut c0 = 0usize;
    while c0 < 256 {
        let mut c1 = 0usize;
        while c1 < 256 {
            t[c0 * 256 + c1] = prob_from_counts(c0 as u8, c1 as u8);
            c1 += 1;
        }
        c0 += 1;
    }
    t
};

/// `RECIP_40[d]` = `⌊2^40 / d⌋ + 1`: fixed-point reciprocals turning the
/// probability division into a multiply + shift. Exact for every
/// reachable `(c0, c1)` pair — numerators are below 2^24, far inside
/// the Granlund–Montgomery exactness bound for a 40-bit reciprocal of
/// divisors ≤ 510 — and the [`PROB_LUT`] equivalence test re-proves it
/// exhaustively.
static RECIP_40: [u64; 511] = {
    let mut t = [0u64; 511];
    let mut d = 1usize;
    while d < 511 {
        t[d] = (1u64 << 40) / d as u64 + 1;
        d += 1;
    }
    t
};

/// Rounded-division probability via [`RECIP_40`] — bit-identical to
/// [`prob_from_counts`] for all reachable count pairs (`c0, c1 ≥ 1`).
#[inline]
fn prob_recip(c0: u8, c1: u8) -> u16 {
    let d = c0 as u32 + c1 as u32;
    let n = ((c0 as u32) << 16) + (d >> 1);
    let p = ((n as u64 * RECIP_40[d as usize]) >> 40) as u32;
    // Reachable states never clamp — p ∈ [255, 65280] for all
    // (c0, c1) ≥ 1, re-proven exhaustively by the equivalence test —
    // so the reference formula's clamp reduces to a debug assertion.
    debug_assert!((1..=65535).contains(&p));
    p as u16
}

/// The fresh-bin probability (`prob_from_counts(1, 1)` = exactly 1/2).
const FRESH_PROB: u16 = prob_from_counts(1, 1);

/// One adaptive statistic bin.
///
/// Counts saturate at 255 and are renormalized by halving (keeping each
/// count at least 1), which gives recent history more weight — the same
/// scheme the production Lepton `Branch` uses. The derived probability is
/// 16-bit fixed point: `P(bit == false) ≈ prob_false() / 65536`.
// `repr(C)` pins the byte layout ({c0, c1, prob_lo, prob_hi} per bin)
// that the vectorized [`refresh_probs`] sweep depends on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(C)]
pub struct Branch {
    /// `counts[0]` tracks `false` bits, `counts[1]` tracks `true` bits.
    counts: [u8; 2],
    /// Cached `prob_from_counts(counts[0], counts[1])`, maintained as an
    /// invariant by [`Branch::record`]. Keeping it inside the bin means
    /// the coder's query hits the same cache line as the counts.
    prob: u16,
}

impl Default for Branch {
    fn default() -> Self {
        Self::new()
    }
}

impl Branch {
    /// A fresh bin with a 50-50 prior (one observation of each symbol).
    #[inline]
    pub const fn new() -> Self {
        Branch {
            counts: [1, 1],
            prob: FRESH_PROB,
        }
    }

    /// Probability that the next bit is `false`, in 16-bit fixed point,
    /// clamped to `1..=65535`. A load, not a division — the value is
    /// maintained by [`Branch::record`].
    #[inline]
    pub fn prob_false(&self) -> u16 {
        self.prob
    }

    /// Record an observed bit and adapt the probability.
    #[inline]
    pub fn record(&mut self, bit: bool) {
        self.record_deferred(bit);
        self.refresh();
    }

    /// Record an observed bit WITHOUT refreshing the cached probability.
    ///
    /// The bin is left with a stale `prob` (still the pre-record value);
    /// the caller must run [`Branch::refresh`] or [`refresh_probs`]
    /// before the next probability query on this bin. Correct whenever
    /// each bin in a batch is touched at most once between refreshes —
    /// the coder reads the probability *before* recording, so the stale
    /// window is never observed.
    #[inline]
    pub fn record_deferred(&mut self, bit: bool) {
        let idx = bit as usize;
        if self.counts[idx] == 255 {
            // Saturated: halve both counts (rounding up, so each stays >= 1)
            // to keep adapting while preserving the learned skew.
            self.counts[0] = (self.counts[0] >> 1) | 1;
            self.counts[1] = (self.counts[1] >> 1) | 1;
        }
        self.counts[idx] += 1;
    }

    /// Recompute the cached probability from the counts, restoring the
    /// invariant after [`Branch::record_deferred`]. Idempotent on bins
    /// whose cache is already consistent.
    #[inline]
    pub fn refresh(&mut self) {
        self.prob = prob_recip(self.counts[0], self.counts[1]);
    }

    /// Raw `(false_count, true_count)` pair, for tests and debugging.
    #[inline]
    pub fn counts(&self) -> (u8, u8) {
        (self.counts[0], self.counts[1])
    }

    /// True if this bin has never been updated.
    #[inline]
    pub fn is_fresh(&self) -> bool {
        self.counts == [1, 1]
    }
}

/// Refresh the cached probability of every bin in the slice — the batch
/// companion to [`Branch::record_deferred`]. On AVX2 hosts the sweep
/// runs four bins per step: counts are byte-gathered into 32-bit lanes,
/// the per-denominator reciprocal is vector-gathered from `RECIP_40`,
/// and the rounded division becomes one widening multiply + shift per
/// lane — bit-identical to [`Branch::refresh`] (the numerator is below
/// 2^24, so both 32×32→64 partial products are exact). Other dispatch
/// levels use the scalar loop: the sweep is gather-bound, and SSE2 has
/// no vector gather to win with.
pub fn refresh_probs(bins: &mut [Branch]) {
    #[cfg(target_arch = "x86_64")]
    if lepton_simd::level() == lepton_simd::SimdLevel::Avx2 {
        // SAFETY: dispatch guarantees the CPU supports AVX2.
        unsafe { x86::refresh_probs_avx2(bins) };
        return;
    }
    for b in bins.iter_mut() {
        b.refresh();
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{Branch, RECIP_40};
    use std::arch::x86_64::*;

    /// Four-wide deferred-probability refresh (see [`super::refresh_probs`]).
    ///
    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn refresh_probs_avx2(bins: &mut [Branch]) {
        // Byte-gather masks: bin k of a 4-bin group (16 bytes, repr(C))
        // contributes its count bytes (offsets 4k and 4k+1) into 32-bit
        // lane k, zero-extended.
        let c0_mask = _mm_setr_epi8(0, -1, -1, -1, 4, -1, -1, -1, 8, -1, -1, -1, 12, -1, -1, -1);
        let c1_mask = _mm_setr_epi8(1, -1, -1, -1, 5, -1, -1, -1, 9, -1, -1, -1, 13, -1, -1, -1);
        let mut i = 0usize;
        while i + 4 <= bins.len() {
            let v = _mm_loadu_si128(bins.as_ptr().add(i) as *const __m128i);
            let c0 = _mm_shuffle_epi8(v, c0_mask);
            let c1 = _mm_shuffle_epi8(v, c1_mask);
            let d = _mm_add_epi32(c0, c1);
            // n = (c0 << 16) + (d >> 1), the rounded-division numerator.
            let n = _mm_add_epi32(_mm_slli_epi32(c0, 16), _mm_srli_epi32(d, 1));
            let recip = _mm256_i32gather_epi64::<8>(RECIP_40.as_ptr() as *const i64, d);
            let n64 = _mm256_cvtepu32_epi64(n);
            // n < 2^24 ⇒ n·recip = n·recip_lo + (n·recip_hi << 32) with
            // both 32×32→64 partial products exact.
            let prod = _mm256_add_epi64(
                _mm256_mul_epu32(n64, recip),
                _mm256_slli_epi64(_mm256_mul_epu32(n64, _mm256_srli_epi64(recip, 32)), 32),
            );
            let mut p = [0u64; 4];
            _mm256_storeu_si256(p.as_mut_ptr() as *mut __m256i, _mm256_srli_epi64(prod, 40));
            for (k, &pk) in p.iter().enumerate() {
                bins[i + k].prob = pk as u16;
            }
            i += 4;
        }
        for b in &mut bins[i..] {
            b.refresh();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_branch_is_even() {
        let b = Branch::new();
        let p = b.prob_false();
        assert!((32700..=32800).contains(&p), "p = {p}");
        assert!(b.is_fresh());
    }

    #[test]
    fn skews_toward_observations() {
        let mut b = Branch::new();
        for _ in 0..100 {
            b.record(false);
        }
        assert!(b.prob_false() > 60000, "p = {}", b.prob_false());
        let mut b = Branch::new();
        for _ in 0..100 {
            b.record(true);
        }
        assert!(b.prob_false() < 5000, "p = {}", b.prob_false());
    }

    #[test]
    fn counts_saturate_by_halving() {
        let mut b = Branch::new();
        for _ in 0..10_000 {
            b.record(true);
        }
        let (c0, c1) = b.counts();
        assert!(c1 >= 128, "true count stays near saturation: {c1}");
        assert!(c0 >= 1, "false count never reaches zero: {c0}");
        // Still strongly skewed after many renormalizations.
        assert!(b.prob_false() < 2000);
    }

    #[test]
    fn probability_never_zero_or_one() {
        let mut b = Branch::new();
        for _ in 0..100_000 {
            b.record(true);
        }
        assert!(b.prob_false() >= 1);
        let mut b = Branch::new();
        for _ in 0..100_000 {
            b.record(false);
        }
        assert!(b.prob_false() >= 60000, "skewed toward false");
        assert!(b.prob_false() < u16::MAX, "never a certain prediction");
    }

    #[test]
    fn adaptation_recovers_after_regime_change() {
        let mut b = Branch::new();
        for _ in 0..1000 {
            b.record(false);
        }
        assert!(b.prob_false() > 60000);
        for _ in 0..1000 {
            b.record(true);
        }
        assert!(b.prob_false() < 32768, "renormalization lets it flip");
    }

    /// Reference formula, written independently of `prob_from_counts`
    /// (the exact expression the pre-LUT hot path computed per bit).
    fn reference_prob(c0: u32, c1: u32) -> u16 {
        let p = (c0 * 65536 + (c0 + c1) / 2) / (c0 + c1);
        p.clamp(1, 65535) as u16
    }

    /// The LUT matches the rounded-division formula for every reachable
    /// count pair (both counts >= 1).
    #[test]
    fn lut_matches_division_exhaustively() {
        for c0 in 1..=255u32 {
            for c1 in 1..=255u32 {
                assert_eq!(
                    PROB_LUT[(c0 * 256 + c1) as usize],
                    reference_prob(c0, c1),
                    "counts ({c0}, {c1})"
                );
            }
        }
    }

    /// The reciprocal-multiply hot path is exact — equal to the rounded
    /// division (and hence the LUT) for every reachable count pair.
    #[test]
    fn reciprocal_matches_division_exhaustively() {
        for c0 in 1..=255u8 {
            for c1 in 1..=255u8 {
                assert_eq!(
                    prob_recip(c0, c1),
                    reference_prob(c0 as u32, c1 as u32),
                    "counts ({c0}, {c1})"
                );
            }
        }
    }

    /// `record` keeps the cached probability equal to the formula from
    /// *every* reachable state — including through the saturation /
    /// renormalization path (counts at 255).
    #[test]
    fn record_preserves_cache_from_every_state() {
        for c0 in 1..=255u8 {
            for c1 in 1..=255u8 {
                for bit in [false, true] {
                    let mut b = Branch {
                        counts: [c0, c1],
                        prob: prob_from_counts(c0, c1),
                    };
                    b.record(bit);
                    let (n0, n1) = b.counts();
                    // The cache invariant holds after the update…
                    assert_eq!(
                        b.prob_false(),
                        reference_prob(n0 as u32, n1 as u32),
                        "after record({bit}) from ({c0}, {c1})"
                    );
                    // …and the renormalization arithmetic matches the
                    // documented scheme.
                    let (e0, e1) = if (bit && c1 == 255) || (!bit && c0 == 255) {
                        let h0 = (c0 >> 1) | 1;
                        let h1 = (c1 >> 1) | 1;
                        if bit {
                            (h0, h1 + 1)
                        } else {
                            (h0 + 1, h1)
                        }
                    } else if bit {
                        (c0, c1 + 1)
                    } else {
                        (c0 + 1, c1)
                    };
                    assert_eq!((n0, n1), (e0, e1), "counts after record");
                    assert!(n0 >= 1 && n1 >= 1, "counts never reach zero");
                }
            }
        }
    }

    /// Deferred record + refresh lands in exactly the state `record`
    /// produces, from every reachable state.
    #[test]
    fn deferred_record_then_refresh_equals_record() {
        for c0 in 1..=255u8 {
            for c1 in 1..=255u8 {
                for bit in [false, true] {
                    let start = Branch {
                        counts: [c0, c1],
                        prob: prob_from_counts(c0, c1),
                    };
                    let mut eager = start;
                    eager.record(bit);
                    let mut deferred = start;
                    deferred.record_deferred(bit);
                    // Stale window: counts moved, prob untouched.
                    assert_eq!(deferred.prob_false(), start.prob_false());
                    deferred.refresh();
                    assert_eq!(deferred, eager, "from ({c0}, {c1}) bit {bit}");
                }
            }
        }
    }

    /// The batch sweep equals per-bin `refresh` for every reachable
    /// count pair, at every dispatch level, for every slice tail shape.
    /// (The AVX2 sweep runs groups of 4 with a scalar tail, so lengths
    /// 0..=9 cover all group/tail splits.)
    #[test]
    fn refresh_probs_matches_scalar_exhaustively() {
        // Every reachable pair once, packed into one big slice: bins are
        // seeded with a WRONG cached probability so the test fails if any
        // lane is skipped.
        let mut bins = Vec::with_capacity(255 * 255);
        for c0 in 1..=255u8 {
            for c1 in 1..=255u8 {
                bins.push(Branch {
                    counts: [c0, c1],
                    prob: 0x5555,
                });
            }
        }
        let detected = {
            lepton_simd::force_level(None);
            lepton_simd::level()
        };
        for lvl in [lepton_simd::SimdLevel::Scalar, detected] {
            for len in (0..=9usize).chain([bins.len()]) {
                let mut got = bins[..len].to_vec();
                lepton_simd::force_level(Some(lvl));
                refresh_probs(&mut got);
                lepton_simd::force_level(None);
                for (i, b) in got.iter().enumerate() {
                    let (c0, c1) = b.counts();
                    assert_eq!(
                        b.prob_false(),
                        prob_from_counts(c0, c1),
                        "({c0}, {c1}) at {i} len {len} level {lvl:?}"
                    );
                }
            }
        }
    }
}
