//! The runtime kill switch gates histogram and trace recording.
//!
//! Lives in its own integration binary: the switch is process-global,
//! so it must not race the recording unit tests.

use lepton_obs::{set_enabled, Histogram, TraceRing};

#[test]
fn kill_switch_gates_histograms_and_traces() {
    let h = Histogram::new();

    set_enabled(false);
    h.record(42);
    let guard = lepton_obs::span_enter("killed_op");
    lepton_obs::mark_stage("stage");
    guard.finish("ok", 1, 1);
    assert_eq!(h.count(), 0, "disabled histogram recorded");
    assert!(
        !TraceRing::global()
            .recent(64)
            .iter()
            .any(|t| t.op == "killed_op"),
        "disabled span recorded"
    );

    set_enabled(true);
    h.record(42);
    let guard = lepton_obs::span_enter("live_op");
    guard.finish("ok", 1, 1);
    assert_eq!(h.count(), 1);
    assert!(TraceRing::global()
        .recent(64)
        .iter()
        .any(|t| t.op == "live_op"));
}
