//! The single nearest-rank percentile implementation.
//!
//! Both the offline figure harnesses ([`Percentiles`], re-exported by
//! `lepton_cluster::metrics`) and the runtime histograms
//! ([`crate::Histogram`]) defer to [`nearest_rank_index`], so a p99
//! printed by `fig10_replay` and a p99 served by `Op::Stats` v2 mean
//! the same thing.

/// Index of the nearest-rank percentile `p` (0..=100) in a sorted
/// sequence of `len` samples. Returns 0 for the empty sequence.
///
/// The formula is `round(p/100 · (len-1))`, clamped — the historical
/// semantics of `cluster::metrics::Percentiles`, now pinned here.
pub fn nearest_rank_index(len: usize, p: f64) -> usize {
    if len == 0 {
        return 0;
    }
    let rank = ((p / 100.0) * (len as f64 - 1.0)).round() as usize;
    rank.min(len - 1)
}

/// Nearest-rank percentile of an already-sorted slice; 0.0 when empty.
pub fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[nearest_rank_index(sorted.len(), p)]
}

/// Exact percentile computation over collected samples (the paper
/// reports p50/p75/p95/p99 everywhere).
///
/// This is the offline accumulator used by the figure harnesses; the
/// runtime side approximates the same statistic from
/// [`crate::Histogram`] buckets without keeping samples.
#[derive(Clone, Debug, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// New, empty.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sample.
    pub fn push(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
    }

    /// Percentile `p` in 0..=100 (nearest-rank).
    pub fn percentile(&mut self, p: f64) -> f64 {
        self.ensure_sorted();
        nearest_rank(&self.samples, p)
    }

    /// The (p50, p75, p95, p99) quadruple the paper's figures use.
    pub fn quad(&mut self) -> (f64, f64, f64, f64) {
        (
            self.percentile(50.0),
            self.percentile(75.0),
            self.percentile(95.0),
            self.percentile(99.0),
        )
    }

    /// Mean of samples.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.samples.iter().map(|v| (v - m) * (v - m)).sum::<f64>()
            / (self.samples.len() - 1) as f64;
        var.sqrt()
    }

    /// Maximum sample.
    pub fn max(&mut self) -> f64 {
        self.percentile(100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-computed oracle pinning nearest-rank semantics. The same
    /// values drive the histogram agreement test in `hist` and the
    /// `Percentiles` delegation below: all three paths must agree.
    #[test]
    fn nearest_rank_matches_hand_oracle() {
        // 5 samples, ranks 0..=4. rank = round(p/100 * 4).
        let s = [10.0, 20.0, 30.0, 40.0, 50.0];
        for (p, want) in [
            (0.0, 10.0),   // round(0)   = 0
            (10.0, 10.0),  // round(0.4) = 0
            (12.5, 20.0),  // round(0.5) = 1 (ties round away from zero)
            (50.0, 30.0),  // round(2)   = 2
            (74.9, 40.0),  // round(2.996) = 3
            (87.5, 50.0),  // round(3.5) = 4
            (99.0, 50.0),  // round(3.96) = 4
            (100.0, 50.0), // round(4)   = 4
        ] {
            assert_eq!(nearest_rank(&s, p), want, "p={p}");
        }
        assert_eq!(nearest_rank(&[], 50.0), 0.0);
        assert_eq!(nearest_rank(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn percentiles_delegate_to_nearest_rank() {
        let mut acc = Percentiles::new();
        let raw = [50.0, 10.0, 40.0, 20.0, 30.0]; // unsorted on purpose
        for v in raw {
            acc.push(v);
        }
        let mut sorted = raw;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.0, 12.5, 50.0, 87.5, 99.0, 100.0] {
            assert_eq!(acc.percentile(p), nearest_rank(&sorted, p));
        }
    }

    #[test]
    fn empty_percentiles_are_zero() {
        let mut p = Percentiles::new();
        assert_eq!(p.percentile(50.0), 0.0);
        assert_eq!(p.mean(), 0.0);
        assert!(p.is_empty());
    }
}
