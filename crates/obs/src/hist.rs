//! Fixed-size log-bucketed atomic histograms.
//!
//! # Bucket layout
//!
//! Values are `u64` (by convention microseconds for latencies, raw
//! units otherwise). The bucket index is a truncated floating-point
//! representation of the value: 3 mantissa bits per power of two, so
//! every octave splits into 8 linear sub-buckets and the relative
//! quantisation error is bounded by 1/8 = 12.5%. Values below 8 get
//! their own exact buckets. The full `u64` range fits in
//! [`BUCKET_COUNT`] = 496 buckets — 4 KiB of atomics per histogram,
//! no allocation or resizing after construction.
//!
//! Percentiles are computed by walking bucket counts with the shared
//! nearest-rank rule ([`crate::percentile::nearest_rank_index`]), so
//! runtime p50/p99/p999 agree with the offline sample-sorting
//! harnesses up to bucket quantisation — and exactly, for exactly
//! representable values.

use crate::percentile::nearest_rank_index;
use std::sync::atomic::{AtomicU64, Ordering};

/// Mantissa bits per octave: 8 linear sub-buckets per power of two.
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;

/// Total number of buckets covering the whole `u64` range.
pub const BUCKET_COUNT: usize = SUB + (64 - SUB_BITS as usize) * SUB; // 496

/// Bucket index for a value. Exact below `SUB` (16); log-linear above.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    SUB + octave * SUB + sub
}

/// Representative value reported for a bucket (its lower bound plus
/// half the bucket width; exact for the exact buckets).
pub fn bucket_value(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let octave = ((idx - SUB) / SUB) as u32;
    let sub = ((idx - SUB) % SUB) as u64;
    let msb = octave + SUB_BITS;
    let width = 1u64 << (msb - SUB_BITS);
    let low = (1u64 << msb) + sub * width;
    low + width / 2
}

/// A lock-free histogram: one atomic counter per log bucket.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New, empty.
    pub fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKET_COUNT],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation. Three relaxed RMWs; no locks, no
    /// allocation. Gated by the global kill switch / `stub` feature.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] in microseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Nearest-rank percentile (`p` in 0..=100) from bucket counts.
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }

    /// A point-in-time copy of the non-empty buckets. Not atomic
    /// with respect to concurrent `record`s; each bucket read is.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u16, n));
            }
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// A plain (non-atomic) copy of a histogram: what travels on the
/// `Stats` v2 wire and lands in bench JSON.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Sparse `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(u16, u64)>,
}

impl HistogramSnapshot {
    /// Mean of observed values; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank percentile from bucket counts: finds the bucket
    /// holding the sample that sorting would put at the shared
    /// nearest-rank index, and reports its representative value.
    pub fn percentile(&self, p: f64) -> u64 {
        let total: u64 = self.buckets.iter().map(|&(_, n)| n).sum();
        if total == 0 {
            return 0;
        }
        let rank = nearest_rank_index(total as usize, p) as u64;
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen > rank {
                return bucket_value(idx as usize);
            }
        }
        bucket_value(self.buckets.last().map(|&(i, _)| i as usize).unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_total() {
        let mut last = 0usize;
        for v in 0..4096u64 {
            let i = bucket_index(v);
            assert!(i >= last, "v={v}");
            assert!(i < BUCKET_COUNT);
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
    }

    #[test]
    fn bucket_value_inverts_exact_range() {
        // Values 0..16 are exactly representable (width-1 buckets).
        for v in 0..16u64 {
            assert_eq!(bucket_value(bucket_index(v)), v);
        }
    }

    #[test]
    fn relative_error_bounded() {
        for v in [100u64, 999, 12_345, 1 << 20, (1 << 40) + 12345] {
            let rep = bucket_value(bucket_index(v));
            let err = (rep as f64 - v as f64).abs() / v as f64;
            assert!(err <= 0.125, "v={v} rep={rep} err={err}");
        }
    }

    /// The histogram and the offline sorted-sample path agree exactly
    /// on exactly-representable values — the "one oracle" half that
    /// lives on the runtime side (see `percentile::tests` for the
    /// hand-computed oracle itself).
    #[test]
    fn histogram_matches_sorted_sample_nearest_rank() {
        let samples: Vec<u64> = vec![1, 2, 2, 3, 5, 8, 8, 9, 12, 15];
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted: Vec<f64> = samples.iter().map(|&s| s as f64).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(
                h.percentile(p),
                crate::percentile::nearest_rank(&sorted, p) as u64,
                "p={p}"
            );
        }
    }

    #[test]
    fn snapshot_roundtrips_counts() {
        let h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v * 7);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, (0..1000u64).map(|v| v * 7).sum::<u64>());
        assert_eq!(s.buckets.iter().map(|&(_, n)| n).sum::<u64>(), 1000);
    }

    // The global kill-switch behavior is pinned in
    // `tests/kill_switch.rs` (own binary: the flag is process-wide
    // and would race with the recording tests here).
}
