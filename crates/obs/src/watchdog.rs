//! Runtime anomaly watchdogs — the paper's §6 monitoring loop.
//!
//! The deployment in the paper watched two kinds of signal: *value*
//! series (fleet compression ratio drifting means a model or corpus
//! regression) and *rate* series (shed/error spikes mean overload or
//! a sick replica). [`MeanShiftDetector`] and [`RateDetector`] are
//! those two alarms; the offline incident-replay harnesses
//! (`lepton_cluster::anomaly`) re-export and reuse them, so a
//! threshold tuned in replay means the same thing live.
//!
//! A [`Watchdog`] owns one of each, buckets observations into
//! fixed-size evaluation windows (count-based, so tests and replays
//! are deterministic — no wall clock), and latches a degraded-health
//! flag that servers expose via `Stats` v2 and fleet gateways consult
//! for routing decisions. The flag clears itself after a configurable
//! number of consecutive healthy windows.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Flags values that shift from the long-run baseline by more than
/// `sigma` standard deviations (Welford online mean/variance).
///
/// Anomalous observations are *not* absorbed into the baseline — a
/// sustained regression keeps alarming instead of re-training the
/// detector to accept it.
#[derive(Clone, Debug)]
pub struct MeanShiftDetector {
    sigma: f64,
    min_samples: u64,
    n: u64,
    mean: f64,
    m2: f64,
}

impl MeanShiftDetector {
    /// Detector alarming at `sigma` deviations once `min_samples`
    /// baseline observations have accumulated.
    pub fn new(sigma: f64, min_samples: u64) -> Self {
        MeanShiftDetector {
            sigma,
            min_samples: min_samples.max(2),
            n: 0,
            mean: 0.0,
            m2: 0.0,
        }
    }

    /// Observe `x`; true when it is anomalous against the baseline.
    pub fn observe(&mut self, x: f64) -> bool {
        if self.n >= self.min_samples {
            let var = self.m2 / (self.n - 1) as f64;
            let dev = var.sqrt().max(f64::EPSILON * self.mean.abs().max(1.0));
            if (x - self.mean).abs() > self.sigma * dev {
                return true;
            }
        }
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        false
    }

    /// Baseline observations absorbed so far.
    pub fn samples(&self) -> u64 {
        self.n
    }

    /// Current baseline mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

/// Flags windows whose event rate (`hits / events`) exceeds a fixed
/// threshold fraction.
#[derive(Clone, Copy, Debug)]
pub struct RateDetector {
    threshold: f64,
}

impl RateDetector {
    /// Detector alarming when a window's rate exceeds `threshold`
    /// (a fraction in 0..=1).
    pub fn new(threshold: f64) -> Self {
        RateDetector { threshold }
    }

    /// True when `hits` out of `events` exceeds the threshold.
    pub fn observe(&self, hits: u64, events: u64) -> bool {
        events > 0 && hits as f64 / events as f64 > self.threshold
    }
}

/// Watchdog thresholds. Defaults are deliberately conservative: a
/// window only trips on a >25% shed/error rate or a 4σ ratio shift.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// Events per evaluation window (count-based, not time-based).
    pub window: u64,
    /// Standard deviations of compression-ratio shift that alarm.
    pub ratio_sigma: f64,
    /// Baseline ratio samples required before the shift alarm arms.
    pub min_ratio_samples: u64,
    /// Shed-rate fraction above which a window is anomalous.
    pub shed_threshold: f64,
    /// Error-rate fraction above which a window is anomalous.
    pub error_threshold: f64,
    /// Consecutive healthy windows required to clear the flag.
    pub clear_after: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            window: 32,
            ratio_sigma: 4.0,
            min_ratio_samples: 64,
            shed_threshold: 0.25,
            error_threshold: 0.25,
            clear_after: 2,
        }
    }
}

#[derive(Debug, Default)]
struct WindowState {
    events: u64,
    sheds: u64,
    errors: u64,
    ratio_sum: f64,
    ratio_n: u64,
    healthy_streak: u32,
}

/// Live anomaly watchdog latching a degraded-health flag.
#[derive(Debug)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    degraded: AtomicBool,
    evaluations: AtomicU64,
    trips: AtomicU64,
    inner: Mutex<(WindowState, MeanShiftDetector)>,
}

impl Watchdog {
    /// New watchdog with the given thresholds.
    pub fn new(cfg: WatchdogConfig) -> Self {
        let detector = MeanShiftDetector::new(cfg.ratio_sigma, cfg.min_ratio_samples);
        Watchdog {
            cfg,
            degraded: AtomicBool::new(false),
            evaluations: AtomicU64::new(0),
            trips: AtomicU64::new(0),
            inner: Mutex::new((WindowState::default(), detector)),
        }
    }

    /// Watchdog with default thresholds.
    pub fn with_defaults() -> Self {
        Self::new(WatchdogConfig::default())
    }

    /// The configured thresholds.
    pub fn config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    /// Record one admission/read event. `shed` marks load-shedding
    /// refusals; `error` marks failures (conversion errors, replica
    /// failovers). Completes a window every `cfg.window` events.
    pub fn record_event(&self, shed: bool, error: bool) {
        let mut inner = self.inner.lock().expect("watchdog poisoned");
        let (w, _) = &mut *inner;
        w.events += 1;
        w.sheds += u64::from(shed);
        w.errors += u64::from(error);
        if w.events >= self.cfg.window {
            self.evaluate(&mut inner);
        }
    }

    /// Record one compression ratio (compressed/original, 0..≈1).
    pub fn record_ratio(&self, ratio: f64) {
        if !ratio.is_finite() {
            return;
        }
        let mut inner = self.inner.lock().expect("watchdog poisoned");
        inner.0.ratio_sum += ratio;
        inner.0.ratio_n += 1;
    }

    fn evaluate(&self, inner: &mut (WindowState, MeanShiftDetector)) {
        let (w, detector) = inner;
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        let rates = RateDetector::new(self.cfg.shed_threshold).observe(w.sheds, w.events)
            || RateDetector::new(self.cfg.error_threshold).observe(w.errors, w.events);
        let ratio_shift = if w.ratio_n > 0 {
            detector.observe(w.ratio_sum / w.ratio_n as f64)
        } else {
            false
        };
        if rates || ratio_shift {
            w.healthy_streak = 0;
            if !self.degraded.swap(true, Ordering::Relaxed) {
                self.trips.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            w.healthy_streak += 1;
            if w.healthy_streak >= self.cfg.clear_after {
                self.degraded.store(false, Ordering::Relaxed);
            }
        }
        let streak = w.healthy_streak;
        *w = WindowState {
            healthy_streak: streak,
            ..WindowState::default()
        };
    }

    /// True while the degraded-health flag is latched.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Windows evaluated so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// Healthy→degraded transitions so far.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Export state into `registry` under `watchdog.*` gauges.
    pub fn publish(&self, registry: &crate::Registry) {
        registry
            .gauge("health.degraded")
            .set(i64::from(self.degraded()));
        registry
            .gauge("watchdog.evaluations")
            .set(self.evaluations() as i64);
        registry.gauge("watchdog.trips").set(self.trips() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WatchdogConfig {
        WatchdogConfig {
            window: 8,
            clear_after: 2,
            ..WatchdogConfig::default()
        }
    }

    #[test]
    fn shed_storm_trips_within_one_window() {
        let w = Watchdog::new(cfg());
        for _ in 0..8 {
            w.record_event(true, false);
        }
        assert!(w.degraded());
        assert_eq!(w.evaluations(), 1);
        assert_eq!(w.trips(), 1);
    }

    #[test]
    fn healthy_windows_clear_the_flag() {
        let w = Watchdog::new(cfg());
        for _ in 0..8 {
            w.record_event(false, true);
        }
        assert!(w.degraded());
        for _ in 0..8 {
            w.record_event(false, false);
        }
        assert!(w.degraded(), "one healthy window is not enough");
        for _ in 0..8 {
            w.record_event(false, false);
        }
        assert!(!w.degraded());
        assert_eq!(w.trips(), 1);
    }

    #[test]
    fn low_rate_errors_stay_healthy() {
        let w = Watchdog::new(cfg());
        for i in 0..64 {
            w.record_event(false, i % 8 == 0); // 12.5% < 25%
        }
        assert!(!w.degraded());
        assert_eq!(w.evaluations(), 8);
    }

    #[test]
    fn ratio_shift_trips_after_baseline() {
        let w = Watchdog::new(WatchdogConfig {
            window: 4,
            min_ratio_samples: 4,
            ratio_sigma: 4.0,
            ..WatchdogConfig::default()
        });
        // Stable baseline around 0.77 with tiny jitter; one event per
        // ratio, so every 4 observations close out a window.
        for i in 0..32 {
            w.record_ratio(0.77 + (i % 4) as f64 * 1e-3);
            w.record_event(false, false);
        }
        assert!(!w.degraded());
        // Corpus suddenly stops compressing.
        for _ in 0..4 {
            w.record_ratio(0.99);
            w.record_event(false, false);
        }
        assert!(w.degraded());
    }

    #[test]
    fn mean_shift_detector_flags_outliers_only() {
        let mut d = MeanShiftDetector::new(3.0, 4);
        for i in 0..100 {
            assert!(!d.observe(10.0 + (i % 5) as f64 * 0.1));
        }
        assert!(d.observe(20.0));
        // The outlier was not absorbed: baseline still near 10.2.
        assert!((d.mean() - 10.2).abs() < 0.1);
    }

    #[test]
    fn publish_exports_gauges() {
        let w = Watchdog::new(cfg());
        for _ in 0..8 {
            w.record_event(true, false);
        }
        let reg = crate::Registry::new();
        w.publish(&reg);
        let s = reg.snapshot();
        assert_eq!(s.gauge("health.degraded"), 1);
        assert_eq!(s.gauge("watchdog.evaluations"), 1);
        assert!(s.degraded());
    }
}
