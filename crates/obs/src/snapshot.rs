//! Point-in-time metric snapshots and their versioned wire format.
//!
//! This is the payload of the server's `Stats` v2 op. Layout (all
//! integers little-endian):
//!
//! ```text
//! u8  version        (= WIRE_VERSION)
//! u8  flags          (bit 0: watchdog degraded; rest reserved, zero)
//! u32 entry_count    (reject > MAX_ENTRIES)
//! entry*:
//!   u16 name_len     (1..=MAX_NAME, UTF-8 bytes follow)
//!   u8  kind         (0 counter, 1 gauge, 2 histogram)
//!   counter:   u64 value
//!   gauge:     i64 value, i64 high_water
//!   histogram: u64 count, u64 sum, u16 n_buckets (<= BUCKET_COUNT),
//!              then n_buckets × (u16 index < BUCKET_COUNT, u64 count),
//!              indexes strictly ascending
//! ```
//!
//! Decoding is strict: truncated or oversized payloads, bad versions,
//! unknown kinds, malformed names and out-of-range buckets all fail
//! with a typed [`SnapshotWireError`]. Old clients keep speaking the
//! fixed 24-byte v1 `StatsReply`; this format only travels on the new
//! op, so the version byte exists for v3, not for v1 disambiguation.

use crate::hist::{HistogramSnapshot, BUCKET_COUNT};

/// Version byte emitted by [`Snapshot::to_wire`].
pub const WIRE_VERSION: u8 = 2;

/// Upper bound on entries a decoder will accept.
pub const MAX_ENTRIES: u32 = 4096;

/// Upper bound on a metric name length in bytes.
pub const MAX_NAME: usize = 256;

/// One metric's value inside a [`Snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Gauge value plus its high-water mark.
    Gauge {
        /// Current value.
        value: i64,
        /// Highest value observed.
        high_water: i64,
    },
    /// Sparse histogram copy.
    Histogram(HistogramSnapshot),
}

/// A name-sorted point-in-time copy of a registry (plus the health
/// flag), convertible to and from the v2 wire format.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// `(name, value)` pairs, ascending by name.
    pub entries: Vec<(String, MetricValue)>,
}

/// Typed decode failures for the v2 snapshot wire format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotWireError {
    /// Payload ended before the announced structure did.
    Truncated,
    /// Bytes remained after the announced structure ended.
    TrailingBytes(usize),
    /// Unknown version byte.
    BadVersion(u8),
    /// Unknown metric-kind byte.
    BadKind(u8),
    /// Name length zero, over [`MAX_NAME`], or not UTF-8.
    BadName,
    /// More entries than [`MAX_ENTRIES`] announced.
    TooManyEntries(u32),
    /// Histogram bucket index out of range or not ascending.
    BadBucket(u16),
}

impl std::fmt::Display for SnapshotWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotWireError::Truncated => write!(f, "snapshot payload truncated"),
            SnapshotWireError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after snapshot")
            }
            SnapshotWireError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotWireError::BadKind(k) => write!(f, "unknown metric kind {k}"),
            SnapshotWireError::BadName => write!(f, "malformed metric name"),
            SnapshotWireError::TooManyEntries(n) => {
                write!(f, "snapshot announces {n} entries (cap {MAX_ENTRIES})")
            }
            SnapshotWireError::BadBucket(i) => write!(f, "bad histogram bucket index {i}"),
        }
    }
}

impl std::error::Error for SnapshotWireError {}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotWireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(SnapshotWireError::Truncated)?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SnapshotWireError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, SnapshotWireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> Result<u32, SnapshotWireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, SnapshotWireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, SnapshotWireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl Snapshot {
    /// Value for `name`, if present.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Convenience: counter value for `name`, or 0.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(&MetricValue::Counter(v)) => v,
            _ => 0,
        }
    }

    /// Convenience: gauge value for `name`, or 0.
    pub fn gauge(&self, name: &str) -> i64 {
        match self.get(name) {
            Some(&MetricValue::Gauge { value, .. }) => value,
            _ => 0,
        }
    }

    /// Convenience: histogram snapshot for `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Merge entries from `other` after this snapshot's own (callers
    /// keep namespaces disjoint via prefixes), re-sorting by name.
    pub fn merge(&mut self, other: Snapshot) {
        self.entries.extend(other.entries);
        self.entries.sort_by(|a, b| a.0.cmp(&b.0));
    }

    /// True when the embedded health flag entry reports degraded.
    pub fn degraded(&self) -> bool {
        self.gauge("health.degraded") != 0
    }

    /// Serialise to the v2 wire format (see module docs).
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.entries.len() * 32);
        out.push(WIRE_VERSION);
        out.push(u8::from(self.degraded()));
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for (name, v) in &self.entries {
            debug_assert!(!name.is_empty() && name.len() <= MAX_NAME);
            out.extend_from_slice(&(name.len() as u16).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            match v {
                MetricValue::Counter(c) => {
                    out.push(0);
                    out.extend_from_slice(&c.to_le_bytes());
                }
                MetricValue::Gauge { value, high_water } => {
                    out.push(1);
                    out.extend_from_slice(&value.to_le_bytes());
                    out.extend_from_slice(&high_water.to_le_bytes());
                }
                MetricValue::Histogram(h) => {
                    out.push(2);
                    out.extend_from_slice(&h.count.to_le_bytes());
                    out.extend_from_slice(&h.sum.to_le_bytes());
                    out.extend_from_slice(&(h.buckets.len() as u16).to_le_bytes());
                    for &(idx, n) in &h.buckets {
                        out.extend_from_slice(&idx.to_le_bytes());
                        out.extend_from_slice(&n.to_le_bytes());
                    }
                }
            }
        }
        out
    }

    /// Strict decode of the v2 wire format.
    pub fn from_wire(buf: &[u8]) -> Result<Snapshot, SnapshotWireError> {
        let mut c = Cursor { buf, pos: 0 };
        let version = c.u8()?;
        if version != WIRE_VERSION {
            return Err(SnapshotWireError::BadVersion(version));
        }
        let _flags = c.u8()?; // redundant with the health.degraded entry
        let count = c.u32()?;
        if count > MAX_ENTRIES {
            return Err(SnapshotWireError::TooManyEntries(count));
        }
        let mut entries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let name_len = c.u16()? as usize;
            if name_len == 0 || name_len > MAX_NAME {
                return Err(SnapshotWireError::BadName);
            }
            let name = std::str::from_utf8(c.take(name_len)?)
                .map_err(|_| SnapshotWireError::BadName)?
                .to_owned();
            let kind = c.u8()?;
            let value = match kind {
                0 => MetricValue::Counter(c.u64()?),
                1 => MetricValue::Gauge {
                    value: c.i64()?,
                    high_water: c.i64()?,
                },
                2 => {
                    let count = c.u64()?;
                    let sum = c.u64()?;
                    let n_buckets = c.u16()? as usize;
                    if n_buckets > BUCKET_COUNT {
                        return Err(SnapshotWireError::BadBucket(n_buckets as u16));
                    }
                    let mut buckets = Vec::with_capacity(n_buckets);
                    let mut last: Option<u16> = None;
                    for _ in 0..n_buckets {
                        let idx = c.u16()?;
                        if idx as usize >= BUCKET_COUNT || last.is_some_and(|l| idx <= l) {
                            return Err(SnapshotWireError::BadBucket(idx));
                        }
                        last = Some(idx);
                        buckets.push((idx, c.u64()?));
                    }
                    MetricValue::Histogram(HistogramSnapshot {
                        count,
                        sum,
                        buckets,
                    })
                }
                k => return Err(SnapshotWireError::BadKind(k)),
            };
            entries.push((name, value));
        }
        if c.pos != buf.len() {
            return Err(SnapshotWireError::TrailingBytes(buf.len() - c.pos));
        }
        Ok(Snapshot { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            entries: vec![
                ("a.count".into(), MetricValue::Counter(42)),
                (
                    "b.depth".into(),
                    MetricValue::Gauge {
                        value: -3,
                        high_water: 17,
                    },
                ),
                (
                    "c.lat_us".into(),
                    MetricValue::Histogram(HistogramSnapshot {
                        count: 3,
                        sum: 300,
                        buckets: vec![(5, 1), (80, 2)],
                    }),
                ),
            ],
        }
    }

    #[test]
    fn wire_roundtrip() {
        let s = sample();
        assert_eq!(Snapshot::from_wire(&s.to_wire()).unwrap(), s);
        let empty = Snapshot::default();
        assert_eq!(Snapshot::from_wire(&empty.to_wire()).unwrap(), empty);
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let wire = sample().to_wire();
        for cut in 0..wire.len() {
            assert_eq!(
                Snapshot::from_wire(&wire[..cut]),
                Err(SnapshotWireError::Truncated),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn trailing_and_oversize_rejected() {
        let mut wire = sample().to_wire();
        wire.push(0);
        assert_eq!(
            Snapshot::from_wire(&wire),
            Err(SnapshotWireError::TrailingBytes(1))
        );

        let mut huge = vec![WIRE_VERSION, 0];
        huge.extend_from_slice(&(MAX_ENTRIES + 1).to_le_bytes());
        assert_eq!(
            Snapshot::from_wire(&huge),
            Err(SnapshotWireError::TooManyEntries(MAX_ENTRIES + 1))
        );
    }

    #[test]
    fn bad_version_kind_name_bucket_rejected() {
        let mut wire = sample().to_wire();
        wire[0] = 9;
        assert!(matches!(
            Snapshot::from_wire(&wire),
            Err(SnapshotWireError::BadVersion(9))
        ));

        // kind byte of the first entry: 1 ver + 1 flags + 4 count +
        // 2 name_len + 7 name.
        let mut wire = sample().to_wire();
        wire[15] = 7;
        assert!(matches!(
            Snapshot::from_wire(&wire),
            Err(SnapshotWireError::BadKind(7))
        ));

        let mut wire = sample().to_wire();
        wire[6] = 0; // name_len low byte → 0
        wire[7] = 0;
        assert_eq!(Snapshot::from_wire(&wire), Err(SnapshotWireError::BadName));
    }

    #[test]
    fn degraded_flag_travels() {
        let mut s = Snapshot::default();
        assert!(!s.degraded());
        s.entries.push((
            "health.degraded".into(),
            MetricValue::Gauge {
                value: 1,
                high_water: 1,
            },
        ));
        assert!(s.degraded());
        assert_eq!(s.to_wire()[1], 1);
        assert!(Snapshot::from_wire(&s.to_wire()).unwrap().degraded());
    }
}
