//! The named metric directory.
//!
//! A [`Registry`] maps stable dotted names (`server.op.compress.latency_us`)
//! to shared metric handles. The map itself sits behind a mutex, but
//! only registration and snapshotting take it: callers resolve their
//! handles once at construction time and then record through plain
//! `Arc`s, so the request path never contends on the registry.
//!
//! Processes usually hold several registries: one global one
//! ([`Registry::global`]) for process-wide singletons (the codec
//! engine, job traces), and one per service/gateway instance so
//! in-process fleets (e.g. `LocalFleet`) keep per-node statistics.

use crate::hist::Histogram;
use crate::metric::{Counter, Gauge};
use crate::snapshot::{MetricValue, Snapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

#[derive(Clone)]
enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Handle {
    fn kind(&self) -> &'static str {
        match self {
            Handle::Counter(_) => "counter",
            Handle::Gauge(_) => "gauge",
            Handle::Histogram(_) => "histogram",
        }
    }
}

/// A directory of named counters, gauges and histograms.
#[derive(Default)]
pub struct Registry {
    // BTreeMap so snapshots come out name-sorted and deterministic.
    inner: Mutex<BTreeMap<String, Handle>>,
}

impl Registry {
    /// New, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry for singleton subsystems.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Get or create the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind —
    /// that is a naming bug, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.lock().expect("registry poisoned");
        let h = map
            .entry(name.to_owned())
            .or_insert_with(|| Handle::Counter(Arc::new(Counter::new())));
        match h {
            Handle::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Get or create the gauge `name` (panics on kind mismatch).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.inner.lock().expect("registry poisoned");
        let h = map
            .entry(name.to_owned())
            .or_insert_with(|| Handle::Gauge(Arc::new(Gauge::new())));
        match h {
            Handle::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or create the histogram `name` (panics on kind mismatch).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.lock().expect("registry poisoned");
        let h = map
            .entry(name.to_owned())
            .or_insert_with(|| Handle::Histogram(Arc::new(Histogram::new())));
        match h {
            Handle::Histogram(hi) => Arc::clone(hi),
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// Register an externally owned counter under `name`, replacing
    /// any previous entry. Lets subsystems that already embed their
    /// counters (e.g. the sharded blockstore) surface them without
    /// rerouting their hot paths.
    pub fn adopt_counter(&self, name: &str, c: &Arc<Counter>) {
        let mut map = self.inner.lock().expect("registry poisoned");
        map.insert(name.to_owned(), Handle::Counter(Arc::clone(c)));
    }

    /// Register an externally owned gauge under `name` (see
    /// [`Registry::adopt_counter`]).
    pub fn adopt_gauge(&self, name: &str, g: &Arc<Gauge>) {
        let mut map = self.inner.lock().expect("registry poisoned");
        map.insert(name.to_owned(), Handle::Gauge(Arc::clone(g)));
    }

    /// Register an externally owned histogram under `name` (see
    /// [`Registry::adopt_counter`]).
    pub fn adopt_histogram(&self, name: &str, h: &Arc<Histogram>) {
        let mut map = self.inner.lock().expect("registry poisoned");
        map.insert(name.to_owned(), Handle::Histogram(Arc::clone(h)));
    }

    /// Point-in-time copy of every registered metric, name-sorted.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.inner.lock().expect("registry poisoned");
        let entries = map
            .iter()
            .map(|(name, h)| {
                let v = match h {
                    Handle::Counter(c) => MetricValue::Counter(c.get()),
                    Handle::Gauge(g) => MetricValue::Gauge {
                        value: g.value(),
                        high_water: g.high_water(),
                    },
                    Handle::Histogram(hi) => MetricValue::Histogram(hi.snapshot()),
                };
                (name.clone(), v)
            })
            .collect();
        Snapshot { entries }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let map = self.inner.lock().expect("registry poisoned");
        f.debug_struct("Registry").field("len", &map.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b.count").add(3);
        r.gauge("a.depth").set(5);
        r.histogram("c.lat_us").record(100);
        let s = r.snapshot();
        let names: Vec<&str> = s.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a.depth", "b.count", "c.lat_us"]);
        assert_eq!(s.get("b.count"), Some(&MetricValue::Counter(3)));
    }

    #[test]
    fn adopted_counter_is_live() {
        let r = Registry::new();
        let c = Arc::new(Counter::new());
        r.adopt_counter("ext.hits", &c);
        c.add(9);
        match r.snapshot().get("ext.hits") {
            Some(&MetricValue::Counter(9)) => {}
            other => panic!("{other:?}"),
        }
    }
}
