//! Dependency-light, lock-free runtime telemetry for the Lepton stack.
//!
//! The paper's deployment story (§6) leans on fleet-wide monitoring:
//! an 18-row exit-code taxonomy, compression-ratio time series, and
//! anomaly alarms gating rollout. This crate is the in-process half of
//! that loop, shared by every serving crate:
//!
//! - [`Counter`] / [`Gauge`]: plain atomics, `Relaxed` on the hot
//!   path — telemetry never synchronises program data.
//! - [`Histogram`]: fixed-size log-bucketed atomic histogram; p50,
//!   p99 and p999 come from bucket counts, never from sorting sample
//!   vectors.
//! - [`Registry`]: named metric directory. Registration and snapshot
//!   take a mutex; recording touches only pre-resolved `Arc` handles,
//!   so the request path stays lock-free.
//! - [`trace`]: a `JobTrace` span API recording per-stage wall time
//!   (header parse → scan decode → arithmetic code → verify → store)
//!   into a bounded ring of recent jobs.
//! - [`Watchdog`]: feeds compression-ratio and shed/error-rate series
//!   into the same detectors the offline cluster harnesses use, and
//!   flips a degraded-health flag servers and gateways report.
//! - [`Percentiles`] / [`nearest_rank_index`]: the single nearest-rank
//!   implementation the offline harnesses and the runtime histograms
//!   both defer to.
//!
//! Snapshots serialise to a versioned length-prefixed wire format
//! ([`Snapshot::to_wire`]) served by the server's `Stats` v2 op.
//!
//! Building with the `stub` feature compiles every recording call to a
//! no-op; [`set_enabled`] is the runtime equivalent for A/B overhead
//! measurements.

pub mod hist;
pub mod metric;
pub mod percentile;
pub mod registry;
pub mod snapshot;
pub mod trace;
pub mod watchdog;

pub use hist::{Histogram, HistogramSnapshot};
pub use metric::{Counter, Gauge};
pub use percentile::{nearest_rank, nearest_rank_index, Percentiles};
pub use registry::Registry;
pub use snapshot::{MetricValue, Snapshot, SnapshotWireError};
pub use trace::{mark_stage, span_enter, unmarked, JobTrace, SpanGuard, TraceRing};
pub use watchdog::{MeanShiftDetector, RateDetector, Watchdog, WatchdogConfig};

use std::sync::atomic::{AtomicBool, Ordering};

/// Global runtime kill switch for the *expensive* recording paths
/// (histograms and job traces). Counters and gauges always record:
/// they are load-bearing (admission accounting, lease balancing) and
/// cost a single relaxed RMW. `Relaxed` is enough — the flag gates
/// statistics, not program order.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable histogram and trace recording at runtime.
///
/// Used by the `metrics_overhead` harness to measure telemetry cost
/// without rebuilding; see the crate-level `stub` feature for the
/// compile-time equivalent.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when histogram and trace recording is live.
#[inline]
pub fn enabled() -> bool {
    if cfg!(feature = "stub") {
        return false;
    }
    ENABLED.load(Ordering::Relaxed)
}
