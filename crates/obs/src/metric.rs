//! Scalar metrics: monotonic counters and up/down gauges.
//!
//! # Memory-ordering rationale (the `SeqCst` downgrade)
//!
//! Every operation here is `Relaxed` except the gauge decrement /
//! read pair, and that is deliberate:
//!
//! - Counters and high-water marks are *pure statistics*: no other
//!   memory location is published or consumed through them, so there
//!   is nothing for an `Acquire`/`Release` edge to order. Atomicity
//!   alone (the total modification order every atomic has) guarantees
//!   increments are never lost and `fetch_max` converges to the true
//!   maximum.
//! - The gauge's `sub` (the lease-release path) uses `Release`, and
//!   `value()` uses `Acquire`. This preserves the one cross-thread
//!   guarantee callers of the old `SeqCst` code actually relied on:
//!   an observer that reads `active == 0` also observes every write
//!   the finished jobs made before releasing their leases. The RAII
//!   lease makes the decrement the *last* action of a job, so the
//!   Release/Acquire pair on that single atomic is exactly the edge
//!   needed — `SeqCst`'s global ordering across unrelated atomics
//!   bought nothing.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonic event counter.
///
/// Cache-line aligned: registry cells are allocated independently but
/// hot ones (the engine's `busy_us`, the server's request counters) are
/// bumped from every worker thread, and two cells sharing a line turn
/// unrelated counters into a coherence ping-pong. One line per cell
/// costs bytes, not time.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if cfg!(feature = "stub") {
            return;
        }
        // Relaxed: statistics only; see module docs.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An up/down gauge with a monotonic high-water mark.
///
/// Backs concurrency/inflight accounting, so unlike [`Counter`] it is
/// *not* disabled by the `stub` feature — a gauge that stops moving
/// would unbalance RAII leases.
// Cache-line aligned for the same false-sharing reason as [`Counter`];
// `value` and `high_water` deliberately share the line (they are always
// written together).
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct Gauge {
    value: AtomicI64,
    high_water: AtomicI64,
}

impl Gauge {
    /// New gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
            high_water: AtomicI64::new(0),
        }
    }

    /// Increment by `n`, returning the post-increment value, and fold
    /// it into the high-water mark.
    #[inline]
    pub fn add(&self, n: i64) -> i64 {
        // Relaxed RMW: the RMW itself is atomic, and the returned
        // `now` is this thread's own edge. fetch_max is monotonic
        // regardless of ordering. See module docs.
        let now = self.value.fetch_add(n, Ordering::Relaxed) + n;
        self.high_water.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// Decrement by `n`. `Release` so an observer that sees the
    /// gauge drained also sees the releasing thread's prior writes
    /// (module docs).
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Release);
    }

    /// Overwrite the value (sampled gauges, e.g. queue depth) and
    /// fold it into the high-water mark.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value. `Acquire` pairs with [`Gauge::sub`].
    #[inline]
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Acquire)
    }

    /// Highest value ever observed by [`Gauge::add`] / [`Gauge::set`].
    #[inline]
    pub fn high_water(&self) -> i64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_value_and_high_water() {
        let g = Gauge::new();
        assert_eq!(g.add(1), 1);
        assert_eq!(g.add(2), 3);
        g.sub(3);
        assert_eq!(g.value(), 0);
        assert_eq!(g.high_water(), 3);
        g.set(2);
        assert_eq!(g.high_water(), 3);
        g.set(7);
        assert_eq!(g.high_water(), 7);
    }

    /// The relaxed orderings still yield an exact max and a balanced
    /// count under contention (per-atomic modification order).
    #[test]
    fn gauge_is_exact_under_threads() {
        let g = Arc::new(Gauge::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    g.add(1);
                    g.sub(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.value(), 0);
        let hw = g.high_water();
        assert!((1..=8).contains(&hw), "high water {hw}");
    }
}
