//! Per-job stage traces: where did this conversion's wall time go?
//!
//! A job (one compress/decompress/store operation) opens a span with
//! [`span_enter`]; the stages it passes through — header parse, scan
//! decode, arithmetic code, verify, store — call [`mark_stage`] at
//! their boundaries. Marks find the active span through a thread
//! local, so deep codec internals never thread a trace handle through
//! their signatures; in the pipelined encoder, stages that fan out to
//! other workers simply don't mark (their cost shows up in the
//! caller's wait stage). Closing the span pushes a [`JobTrace`] into
//! a bounded ring of recent jobs and folds each stage duration into
//! `trace.stage.*` histograms on the global registry, so `Stats` v2
//! exposes stage-level p50/p99/p999 fleet-wide.
//!
//! The ring holds [`DEFAULT_RING_CAP`] entries behind a mutex touched
//! once per job (jobs are milliseconds; the push is nanoseconds).

use crate::registry::Registry;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Completed jobs retained by the global ring.
pub const DEFAULT_RING_CAP: usize = 256;

/// Stages a single trace will record before dropping further marks
/// (defensive bound; real jobs have ~5).
const MAX_STAGES: usize = 16;

/// One finished job's stage breakdown.
#[derive(Clone, Debug)]
pub struct JobTrace {
    /// Ring-assigned job id (monotonic per process).
    pub id: u64,
    /// Operation label (`"compress"`, `"decompress"`, ...).
    pub op: &'static str,
    /// Outcome label (`"ok"` or an error taxonomy row label).
    pub outcome: &'static str,
    /// Input bytes.
    pub bytes_in: u64,
    /// Output bytes.
    pub bytes_out: u64,
    /// End-to-end wall time.
    pub total: Duration,
    /// `(stage, wall time)` in execution order.
    pub stages: Vec<(&'static str, Duration)>,
}

struct ActiveSpan {
    id: u64,
    op: &'static str,
    started: Instant,
    last_mark: Instant,
    stages: Vec<(&'static str, Duration)>,
}

thread_local! {
    static CURRENT: RefCell<Option<ActiveSpan>> = const { RefCell::new(None) };
    /// When true, [`mark_stage`] drops marks on this thread (see
    /// [`unmarked`]).
    static SUSPENDED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Run `f` with stage marking suspended on this thread: marks inside
/// `f` are dropped, and the whole interval is attributed to the next
/// mark after `f` returns. Used to charge a nested operation's cost to
/// a single caller stage — e.g. the encoder's verification decode runs
/// the decoder (whose internal marks would otherwise leak its stage
/// names into the encode trace) and then marks `"verify"` once.
pub fn unmarked<R>(f: impl FnOnce() -> R) -> R {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            SUSPENDED.with(|s| s.set(prev));
        }
    }
    let _restore = Restore(SUSPENDED.with(|s| s.replace(true)));
    f()
}

/// Bounded ring of recent [`JobTrace`]s.
pub struct TraceRing {
    cap: usize,
    next_id: AtomicU64,
    ring: Mutex<VecDeque<JobTrace>>,
}

impl TraceRing {
    /// New ring retaining at most `cap` recent jobs.
    pub fn new(cap: usize) -> Self {
        TraceRing {
            cap: cap.max(1),
            next_id: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// The process-wide ring fed by [`span_enter`].
    pub fn global() -> &'static TraceRing {
        static GLOBAL: OnceLock<TraceRing> = OnceLock::new();
        GLOBAL.get_or_init(|| TraceRing::new(DEFAULT_RING_CAP))
    }

    fn push(&self, t: JobTrace) {
        let mut ring = self.ring.lock().expect("trace ring poisoned");
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(t);
    }

    /// Jobs currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace ring poisoned").len()
    }

    /// True when no jobs have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most recent `n` traces, newest last.
    pub fn recent(&self, n: usize) -> Vec<JobTrace> {
        let ring = self.ring.lock().expect("trace ring poisoned");
        ring.iter().rev().take(n).rev().cloned().collect()
    }
}

/// RAII guard for a job span. Obtain via [`span_enter`]; close with
/// [`SpanGuard::finish`]. Dropping without finishing records the job
/// with outcome `"abandoned"`.
#[must_use = "hold the guard for the span's lifetime and call finish()"]
pub struct SpanGuard {
    armed: bool,
}

/// Open a job span on this thread. Returns a disarmed no-op guard if
/// recording is disabled or a span is already active (nested jobs —
/// e.g. engine-inline sub-work — fold into their parent).
pub fn span_enter(op: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { armed: false };
    }
    CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        if cur.is_some() {
            return SpanGuard { armed: false };
        }
        let now = Instant::now();
        *cur = Some(ActiveSpan {
            id: TraceRing::global().next_id.fetch_add(1, Ordering::Relaxed),
            op,
            started: now,
            last_mark: now,
            stages: Vec::with_capacity(8),
        });
        SpanGuard { armed: true }
    })
}

/// Record the time since the previous mark (or span start) as stage
/// `name` on the active span, if any. Cheap no-op otherwise.
pub fn mark_stage(name: &'static str) {
    if SUSPENDED.with(|s| s.get()) {
        return;
    }
    CURRENT.with(|c| {
        if let Some(span) = c.borrow_mut().as_mut() {
            if span.stages.len() < MAX_STAGES {
                let now = Instant::now();
                span.stages.push((name, now - span.last_mark));
                span.last_mark = now;
            }
        }
    });
}

impl SpanGuard {
    /// Close the span: push the [`JobTrace`] into the global ring and
    /// fold stage durations into `trace.stage.*` histograms.
    pub fn finish(mut self, outcome: &'static str, bytes_in: u64, bytes_out: u64) {
        self.close(outcome, bytes_in, bytes_out);
    }

    fn close(&mut self, outcome: &'static str, bytes_in: u64, bytes_out: u64) {
        if !self.armed {
            return;
        }
        self.armed = false;
        let Some(span) = CURRENT.with(|c| c.borrow_mut().take()) else {
            return;
        };
        let reg = Registry::global();
        for &(stage, d) in &span.stages {
            // Stage names are a small static set; the format+lock here
            // runs once per multi-millisecond job, off the hot loops.
            reg.histogram(&format!("trace.stage.{stage}_us"))
                .record_duration(d);
        }
        let total = span.started.elapsed();
        reg.histogram(&format!("trace.job.{}_us", span.op))
            .record_duration(total);
        TraceRing::global().push(JobTrace {
            id: span.id,
            op: span.op,
            outcome,
            bytes_in,
            bytes_out,
            total,
            stages: span.stages,
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            self.close("abandoned", 0, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests share the process-global ring and TLS slot; each
    // runs on its own test thread, so TLS spans never collide, and
    // assertions only inspect traces they created (by op name).

    #[test]
    fn span_records_stages_in_order() {
        let g = span_enter("test_op_a");
        mark_stage("parse");
        mark_stage("decode");
        g.finish("ok", 10, 4);
        let t = TraceRing::global()
            .recent(DEFAULT_RING_CAP)
            .into_iter()
            .rev()
            .find(|t| t.op == "test_op_a")
            .expect("trace recorded");
        let names: Vec<_> = t.stages.iter().map(|&(n, _)| n).collect();
        assert_eq!(names, ["parse", "decode"]);
        assert_eq!((t.outcome, t.bytes_in, t.bytes_out), ("ok", 10, 4));
        assert!(Registry::global().histogram("trace.stage.parse_us").count() >= 1);
    }

    #[test]
    fn nested_span_is_noop_and_drop_abandons() {
        let outer = span_enter("test_op_b");
        {
            let inner = span_enter("test_op_b_inner");
            mark_stage("inner_stage");
            inner.finish("ok", 0, 0); // disarmed: outer span continues
        }
        drop(outer); // abandoned
        let ring = TraceRing::global().recent(DEFAULT_RING_CAP);
        assert!(!ring.iter().any(|t| t.op == "test_op_b_inner"));
        let t = ring
            .iter()
            .rev()
            .find(|t| t.op == "test_op_b")
            .expect("outer recorded");
        assert_eq!(t.outcome, "abandoned");
        // The inner mark landed on the outer span.
        assert!(t.stages.iter().any(|&(n, _)| n == "inner_stage"));
    }

    #[test]
    fn unmarked_folds_interval_into_next_mark() {
        let g = span_enter("test_op_c");
        mark_stage("first");
        unmarked(|| {
            mark_stage("hidden"); // dropped
        });
        mark_stage("after"); // includes the unmarked interval
        g.finish("ok", 0, 0);
        let t = TraceRing::global()
            .recent(DEFAULT_RING_CAP)
            .into_iter()
            .rev()
            .find(|t| t.op == "test_op_c")
            .expect("trace recorded");
        let names: Vec<_> = t.stages.iter().map(|&(n, _)| n).collect();
        assert_eq!(names, ["first", "after"]);
    }

    #[test]
    fn ring_is_bounded() {
        let ring = TraceRing::new(4);
        for i in 0..10 {
            ring.push(JobTrace {
                id: i,
                op: "x",
                outcome: "ok",
                bytes_in: 0,
                bytes_out: 0,
                total: Duration::ZERO,
                stages: Vec::new(),
            });
        }
        assert_eq!(ring.len(), 4);
        let ids: Vec<u64> = ring.recent(10).iter().map(|t| t.id).collect();
        assert_eq!(ids, [6, 7, 8, 9]);
    }
}
