//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the two pieces the workspace's service layer uses:
//!
//! * [`channel::bounded`] — a blocking, cloneable-on-both-ends MPMC
//!   channel with a fixed capacity, used as a connection-permit
//!   semaphore. Built on `Mutex<VecDeque>` + `Condvar`; correctness
//!   over microbenchmark throughput.
//! * [`sync::WaitGroup`] — clone to register a participant, drop to
//!   leave, [`wait`](sync::WaitGroup::wait) to block until all other
//!   participants have left.
//!
//! Extend the shim if a future PR needs `select!`, scoped threads, or
//! the lock-free queues.

/// Multi-producer multi-consumer channels (subset of
/// `crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        not_full: Condvar,
        not_empty: Condvar,
        cap: usize,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Creates a channel holding at most `cap` in-flight messages;
    /// sends block while it is full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "bounded(0) rendezvous channels are not supported");
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::with_capacity(cap),
                senders: 1,
                receivers: 1,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            cap,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is full right now; the message is handed back.
        Full(T),
        /// Every receiver is gone; the message is handed back.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `value`. Fails if
        /// all receivers have been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.queue.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.items.len() < self.shared.cap {
                    st.items.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self.shared.not_full.wait(st).unwrap();
            }
        }

        /// Enqueues `value` only if there is room right now: the
        /// admission-control primitive — a full queue is an answer
        /// (shed), not a place to wait.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.queue.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if st.items.len() < self.shared.cap {
                st.items.push_back(value);
                self.shared.not_empty.notify_one();
                Ok(())
            } else {
                Err(TrySendError::Full(value))
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    /// The receiving half; cloneable (MPMC, each message delivered
    /// to exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.queue.lock().unwrap();
            match st.items.pop_front() {
                Some(v) => {
                    self.shared.not_full.notify_one();
                    Ok(v)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.queue.lock().unwrap();
            loop {
                if let Some(v) = st.items.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }
}

/// Thread-coordination utilities (subset of `crossbeam::sync`).
pub mod sync {
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner {
        count: Mutex<usize>,
        zero: Condvar,
    }

    /// Blocks one thread until a set of peers has finished.
    ///
    /// Each clone registers a participant; dropping a clone
    /// deregisters it. [`wait`](WaitGroup::wait) consumes this handle
    /// and blocks until every *other* participant has dropped.
    pub struct WaitGroup {
        inner: Arc<Inner>,
    }

    impl WaitGroup {
        /// Creates a group with one participant (this handle).
        pub fn new() -> Self {
            WaitGroup {
                inner: Arc::new(Inner {
                    count: Mutex::new(1),
                    zero: Condvar::new(),
                }),
            }
        }

        /// Drops this handle and blocks until the participant count
        /// reaches zero.
        pub fn wait(self) {
            let inner = Arc::clone(&self.inner);
            drop(self); // removes our own registration
            let mut n = inner.count.lock().unwrap();
            while *n > 0 {
                n = inner.zero.wait(n).unwrap();
            }
        }
    }

    impl Default for WaitGroup {
        fn default() -> Self {
            WaitGroup::new()
        }
    }

    impl Clone for WaitGroup {
        fn clone(&self) -> Self {
            *self.inner.count.lock().unwrap() += 1;
            WaitGroup {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl Drop for WaitGroup {
        fn drop(&mut self) {
            let mut n = self.inner.count.lock().unwrap();
            *n -= 1;
            if *n == 0 {
                self.inner.zero.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use super::sync::WaitGroup;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn bounded_channel_as_semaphore() {
        let (tx, rx) = channel::bounded::<()>(2);
        tx.send(()).unwrap();
        tx.send(()).unwrap();
        assert!(rx.try_recv().is_ok());
        tx.send(()).unwrap();
        assert!(rx.try_recv().is_ok());
        assert!(rx.try_recv().is_ok());
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
    }

    #[test]
    fn send_blocks_at_capacity_until_recv() {
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = std::thread::spawn(move || tx.send(2).unwrap());
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().unwrap();
    }

    #[test]
    fn try_send_never_blocks_and_hands_the_message_back() {
        let (tx, rx) = channel::bounded::<u32>(1);
        tx.try_send(1).unwrap();
        assert_eq!(tx.try_send(2), Err(channel::TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(4), Err(channel::TrySendError::Disconnected(4)));
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn waitgroup_waits_for_all_clones() {
        let wg = WaitGroup::new();
        let done = Arc::new(AtomicUsize::new(0));
        let mut threads = Vec::new();
        for _ in 0..4 {
            let guard = wg.clone();
            let done = Arc::clone(&done);
            threads.push(std::thread::spawn(move || {
                done.fetch_add(1, Ordering::SeqCst);
                drop(guard);
            }));
        }
        wg.wait();
        assert_eq!(done.load(Ordering::SeqCst), 4);
        for t in threads {
            t.join().unwrap();
        }
    }
}
