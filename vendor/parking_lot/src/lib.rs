//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the small slice of the `parking_lot` API the workspace
//! uses — [`Mutex`] and [`RwLock`] whose guards are obtained without a
//! `Result` — implemented on top of `std::sync`. Lock poisoning is
//! deliberately ignored (a panicked writer does not wedge every later
//! reader), which matches `parking_lot`'s semantics closely enough for
//! this workspace: the protected values are chunk indexes and counters
//! that remain structurally valid at every await/panic point.
//!
//! Only the methods the workspace calls are provided. If a future PR
//! needs more of the real API (fairness, timeouts, condvars), extend
//! this shim or vendor the real crate.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose [`lock`](Mutex::lock) never returns a
/// poison error.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Poison from a
    /// previously panicked holder is discarded.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the inner value, requiring no
    /// locking because `&mut self` proves unique access.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose `read`/`write` never return poison errors.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the inner value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLock(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn mutex_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u8));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
