//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this crate
//! provides the slice of `rand` the workspace uses: the [`Rng`] and
//! [`SeedableRng`] traits, [`rngs::StdRng`], and
//! [`seq::SliceRandom`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed on every platform, which
//! is exactly what the corpus builder and cluster simulator need for
//! reproducible figures. It does **not** promise the same byte stream
//! as the real `rand::rngs::StdRng` (ChaCha12); seeds are stable
//! within this workspace only.
//!
//! Only the methods the workspace calls are provided; extend the shim
//! if a future PR needs more (`thread_rng`, distributions, weighted
//! choice, ...).

/// Core trait: a source of uniformly random `u64`s plus the derived
/// sampling helpers the workspace uses.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Extension trait with the typed sampling helpers (`gen`, `gen_range`,
/// `gen_bool`). Mirrors `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its full uniform range.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable from their full range via [`Rng::gen`]. Mirrors
/// `rand::distributions::Standard`.
pub trait Standard {
    /// Draws one uniformly random value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::sample(rng))
    }
}

/// Ranges sampleable via [`Rng::gen_range`]. Mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
impl_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_range_float {
    // The uniform draw must happen at the target type's own mantissa
    // width: computing it in f64 and casting down can round up to
    // exactly 1.0, which would let a half-open range return its
    // excluded upper bound.
    ($($t:ty => $shift:expr),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = (rng.next_u64() >> $shift) as $t
                    * (1.0 / (1u64 << (64 - $shift)) as $t);
                let v = self.start + (self.end - self.start) * u;
                // Rounding in the multiply-add can still land exactly on
                // `end`; fold that sliver back to keep the range half-open.
                if v < self.end { v } else { self.start }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = (rng.next_u64() >> $shift) as $t
                    * (1.0 / (1u64 << (64 - $shift)) as $t);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_range_float!(f32 => 40, f64 => 11);

/// RNGs constructible from a seed. Mirrors `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The per-RNG seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Named RNG types. Mirrors `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// Deterministic xoshiro256++ generator standing in for
    /// `rand::rngs::StdRng`. Same seed ⇒ same stream, on every
    /// platform, forever — the property the corpus and simulator rely
    /// on. Not cryptographically secure.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // xoshiro requires a nonzero state; remix through SplitMix64
            // if a caller hands us an all-zero seed.
            if s == [0; 4] {
                let mut sm = SplitMix64 { state: 0 };
                for w in &mut s {
                    *w = sm.next();
                }
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers. Mirrors `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait for random slice access. Mirrors
    /// `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Returns an iterator over `amount` distinct random elements
        /// (fewer if the slice is shorter).
        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let mut idx: Vec<usize> = (0..self.len()).collect();
            idx.shuffle(rng);
            idx.truncate(amount.min(self.len()));
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn choose_and_choose_multiple() {
        let mut rng = StdRng::seed_from_u64(1);
        let pool = [10, 20, 30, 40];
        assert!(pool.choose(&mut rng).is_some());
        let picked: Vec<&i32> = pool.choose_multiple(&mut rng, 2).collect();
        assert_eq!(picked.len(), 2);
        assert_ne!(picked[0], picked[1]);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!(empty.choose_multiple(&mut rng, 3).count(), 0);
    }
}
