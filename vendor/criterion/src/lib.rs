//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the slice of criterion the workspace's `benches/*` use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`bench_with_input`](BenchmarkGroup::bench_with_input),
//! [`Bencher::iter`], [`Throughput`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are deliberately simple: each benchmark runs
//! `sample_size` timed samples after one warm-up call and reports the
//! median per-iteration time (plus derived throughput) on stdout.
//! There are no HTML reports, no outlier analysis, and no baseline
//! comparisons — rerun and diff by eye, or replace this shim with real
//! criterion when the registry is reachable.

use std::time::{Duration, Instant};

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Unit used to convert measured time into a rate.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// A `group/function/parameter` benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Labels a benchmark as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Labels a benchmark by its parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// A group of benchmarks sharing a name, sample size, and throughput.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the work performed per iteration, enabling rate output.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id, &b.samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id, &b.samples);
        self
    }

    /// Ends the group. (A no-op here; kept for API parity.)
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{}: no samples", self.name, id.label);
            return;
        }
        let mut sorted = samples.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let mibps = n as f64 / median.as_secs_f64() / (1024.0 * 1024.0);
                format!("  {mibps:10.1} MiB/s")
            }
            Some(Throughput::Elements(n)) => {
                let eps = n as f64 / median.as_secs_f64();
                format!("  {eps:10.0} elem/s")
            }
            None => String::new(),
        };
        println!(
            "{}/{}: median {:>12?} over {} samples{rate}",
            self.name,
            id.label,
            median,
            sorted.len()
        );
    }
}

/// Timing context handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` (after one warm-up call),
    /// recording one sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Returns its argument unoptimized (mirrors `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a callable group (mirrors
/// criterion's macro of the same name; only the simple
/// `criterion_group!(name, fn, ...)` form is supported).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[doc = concat!("Runs the `", stringify!($name), "` benchmark group.")]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main()` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("str_id", |b| b.iter(|| 1 + 1));
        g.bench_function(BenchmarkId::new("param", 8), |b| b.iter(|| 2 * 2));
        g.bench_with_input(BenchmarkId::new("input", 4), &4u32, |b, &n| {
            b.iter(|| n * n)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
