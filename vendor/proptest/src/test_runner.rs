//! Runner configuration and the deterministic RNG behind every case.

/// Per-`proptest!` block configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test function runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps debug-profile test
        // runs quick while still exploring a meaningful input space.
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64-based generator used by all strategies. Seeded from the
/// test's name so runs are reproducible everywhere.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator whose stream is a pure function of `name`
    /// (FNV-1a hash of the test's module path and identifier).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly random index in `0..n`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}
