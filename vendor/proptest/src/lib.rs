//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`](strategy::Strategy) with
//! `prop_map`, [`any`](arbitrary::any), range and tuple strategies,
//! [`vec`](collection::vec())/[`btree_map`](collection::btree_map()), [`Just`](strategy::Just),
//! [`prop_oneof!`], and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs via the
//!   ordinary `assert!` panic message (each case is deterministic, so a
//!   failure reproduces exactly on re-run) but is not minimized.
//! * **Deterministic seeding.** The RNG seed is derived from the test's
//!   module path and name, so every run and every machine explores the
//!   same cases. There is no `PROPTEST_CASES` env or failure
//!   persistence file.
//! * **Mild edge biasing** stands in for proptest's sophisticated
//!   value distribution: integer strategies return boundary values
//!   (0, 1, MAX) a fraction of the time.
//!
//! Only what the workspace uses is implemented; extend the shim if a
//! future PR needs `prop_filter`, `prop_flat_map`, regex strategies,
//! etc.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test body.
///
/// Maps to a plain `assert!`; the panic aborts the failing case with
/// the formatted message. No shrinking is attempted.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test body (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test body (plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly among several strategies producing the same value
/// type. Weighted variants (`3 => strat`) are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::boxed($strat)),+
        ])
    };
}

/// Declares property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn roundtrips(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
///         prop_assert_eq!(decode(&encode(&bytes)), bytes);
///     }
/// }
/// ```
///
/// Each declared function runs `cases` deterministic random cases; the
/// strategy expressions are re-evaluated per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(
                    let $pat =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                // Bodies may early-exit a case with `return Ok(())`
                // (real proptest runs them in a Result-returning
                // closure), so ours does too. `prop_assert*` panic
                // instead of returning Err; Err is therefore unused
                // but kept for source compatibility.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), ::std::string::String> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = __outcome {
                    panic!("proptest case failed: {e}");
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3usize..17, b in 1u16..=65535, flag in any::<bool>()) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b >= 1);
            prop_assert_ne!(flag, !flag);
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_form_parses(x in any::<u32>()) {
            let _ = x;
        }
    }

    #[test]
    fn prop_map_and_tuples() {
        let strat = (1u8..=4, 0u32..10).prop_map(|(a, b)| a as u32 * 100 + b);
        let mut rng = TestRng::deterministic("prop_map_and_tuples");
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((100..=499).contains(&v));
        }
    }

    #[test]
    fn oneof_and_just_cover_all_arms() {
        let strat = prop_oneof![Just(1u8), Just(2), Just(3)];
        let mut rng = TestRng::deterministic("oneof");
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn btree_map_sizes() {
        let strat = crate::collection::btree_map(0u32..1000, any::<bool>(), 0..6);
        let mut rng = TestRng::deterministic("btree");
        for _ in 0..100 {
            assert!(strat.generate(&mut rng).len() < 6);
        }
    }
}
