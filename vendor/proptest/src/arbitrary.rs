//! `any::<T>()` — full-range strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-range strategy. Mirrors
/// `proptest::arbitrary::Arbitrary`, minus the parameterization.
pub trait Arbitrary {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Returns the canonical strategy for `T` (mirrors `proptest::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Surface boundary values more often than a uniform
                // draw would — a cheap stand-in for proptest's biased
                // value distribution.
                match rng.next_u64() % 16 {
                    0 => 0,
                    1 => 1 as $t,
                    2 => <$t>::MAX,
                    3 => <$t>::MIN,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
