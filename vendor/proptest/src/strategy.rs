//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the runner's RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors
    /// `proptest::strategy::Strategy::prop_map`).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies of one value type; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Builds a union from its (non-empty) arms.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }

    /// Boxes one arm; helper for the `prop_oneof!` expansion.
    pub fn boxed<S: Strategy<Value = V> + 'static>(s: S) -> Box<dyn Strategy<Value = V>> {
        Box::new(s)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * u as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * u as $t
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
