//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;

/// A length constraint for collection strategies. Built from `usize`,
/// `Range<usize>`, or `RangeInclusive<usize>`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below(self.hi_inclusive - self.lo + 1)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`](fn@vec).
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap`s with `size` key draws. Key collisions
/// dedup naturally, so the map may come out smaller than requested.
pub fn btree_map<K: Strategy, V: Strategy>(
    keys: K,
    values: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V> {
    BTreeMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = self.size.pick(rng);
        (0..n)
            .map(|_| (self.keys.generate(rng), self.values.generate(rng)))
            .collect()
    }
}
