//! Property tests over the whole stack: arbitrary synthesized JPEGs
//! must round-trip through Lepton under arbitrary thread counts and
//! chunk sizes; Deflate must round-trip arbitrary bytes; the container
//! parser must never panic on arbitrary input.

use lepton::codec::{compress, compress_chunked, decompress, CompressOptions, ThreadPolicy};
use lepton::corpus::builder::{clean_jpeg, CorpusSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn lepton_roundtrip_arbitrary_images(
        seed in any::<u64>(),
        dim in 48usize..220,
        threads in 1usize..6,
    ) {
        let spec = CorpusSpec {
            min_dim: dim,
            max_dim: dim + 32,
            ..Default::default()
        };
        let jpg = clean_jpeg(&spec, seed);
        let opts = CompressOptions {
            threads: ThreadPolicy::Fixed(threads),
            ..Default::default()
        };
        let lepton = compress(&jpg, &opts).expect("synthesized baselines compress");
        prop_assert_eq!(decompress(&lepton).expect("admitted containers decode"), jpg);
    }

    #[test]
    fn chunked_roundtrip_arbitrary_boundaries(
        seed in any::<u64>(),
        chunk_kb in 4usize..64,
    ) {
        let spec = CorpusSpec {
            min_dim: 160,
            max_dim: 288,
            ..Default::default()
        };
        let jpg = clean_jpeg(&spec, seed);
        let chunks = compress_chunked(&jpg, chunk_kb << 10, &CompressOptions::default())
            .expect("chunked compression");
        let mut out = Vec::new();
        for c in &chunks {
            out.extend(decompress(c).expect("chunk decode"));
        }
        prop_assert_eq!(out, jpg);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn deflate_roundtrip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let z = lepton::deflate::zlib_compress(&data, lepton::deflate::Level::Default);
        prop_assert_eq!(lepton::deflate::zlib_decompress(&z, data.len().max(16)).expect("inflate"), data);
    }

    #[test]
    fn container_parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let _ = decompress(&data); // error or garbage, never panic
    }

    #[test]
    fn sha256_streaming_consistency(
        data in proptest::collection::vec(any::<u8>(), 0..10_000),
        split in 0usize..10_000,
    ) {
        use lepton::storage::sha256::{sha256, Sha256};
        let split = split.min(data.len());
        let mut h = Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finish(), sha256(&data));
    }
}
