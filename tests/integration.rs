//! Cross-crate integration tests: the full paper pipeline exercised
//! end-to-end through the facade crate.

use lepton::codec::{compress, compress_chunked, decompress, CompressOptions, ThreadPolicy};
use lepton::corpus::builder::{clean_jpeg, CorpusSpec};
use lepton::corpus::{Corpus, CorpusSpec as Spec2};
use lepton::storage::{BlockStore, StoredFormat};

fn spec(max_dim: usize) -> CorpusSpec {
    CorpusSpec {
        min_dim: 96,
        max_dim,
        ..Default::default()
    }
}

#[test]
fn corpus_to_storage_to_bytes() {
    // The full production path: synthesize user files, store them,
    // read them back byte-exactly.
    let store = BlockStore::default();
    let corpus = Corpus::generate(&Spec2 {
        count: 12,
        min_dim: 64,
        max_dim: 192,
        clean_fraction: 0.75,
        seed: 0xABCD,
    });
    for f in &corpus.files {
        let manifest = store.put_file(&f.data);
        assert_eq!(
            store.get_file(&manifest).expect("read back"),
            f.data,
            "kind {:?} seed {}",
            f.kind,
            f.seed
        );
    }
    // Clean JPEGs landed as Lepton; savings accrued.
    assert!(
        store
            .metrics
            .lepton_chunks
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0
    );
    assert!(store.metrics.savings() > 0.05);
}

#[test]
fn qualification_over_mixed_corpus() {
    // The §5.7 qualification loop: no alarms allowed over a corpus with
    // rejects and corruption.
    use lepton::codec::verify::qualify;
    let corpus = Corpus::generate(&Spec2 {
        count: 40,
        min_dim: 64,
        max_dim: 160,
        clean_fraction: 0.8,
        seed: 0x9A41,
    });
    let files: Vec<&[u8]> = corpus.files.iter().map(|f| f.data.as_slice()).collect();
    let q = qualify(files, &CompressOptions::default());
    assert!(q.qualified(), "alarms: {}", q.alarms);
    assert!(q.verified >= 25);
    assert!(q.ratio() < 0.9);
}

#[test]
fn determinism_across_thread_counts() {
    // §5.2: single- and multi-threaded compressions both round-trip;
    // repeated runs are byte-identical.
    let jpg = clean_jpeg(&spec(320), 5);
    for threads in [1usize, 2, 8] {
        let opts = CompressOptions {
            threads: ThreadPolicy::Fixed(threads),
            ..Default::default()
        };
        let a = compress(&jpg, &opts).expect("compress");
        let b = compress(&jpg, &opts).expect("compress");
        assert_eq!(a, b, "threads={threads}");
        assert_eq!(decompress(&a).expect("decode"), jpg);
    }
}

#[test]
fn chunked_equals_whole_file() {
    let jpg = clean_jpeg(&spec(512), 6);
    let whole =
        decompress(&compress(&jpg, &CompressOptions::default()).expect("whole")).expect("dec");
    let chunks = compress_chunked(&jpg, 32 << 10, &CompressOptions::default()).expect("chunked");
    let mut reassembled = Vec::new();
    for c in &chunks {
        reassembled.extend(decompress(c).expect("chunk decode"));
    }
    assert_eq!(whole, jpg);
    assert_eq!(reassembled, jpg);
}

#[test]
fn baselines_agree_on_corpus() {
    // Every baseline codec round-trips every corpus file (Fig. 2's
    // precondition).
    use lepton::baselines::all_codecs;
    let corpus = Corpus::generate(&Spec2 {
        count: 10,
        min_dim: 64,
        max_dim: 128,
        clean_fraction: 0.7,
        seed: 0xBA5E,
    });
    for codec in all_codecs() {
        for f in &corpus.files {
            let enc = codec.encode(&f.data).expect("encode");
            let dec = codec.decode(&enc, f.data.len()).expect("decode");
            assert_eq!(dec, f.data, "{} on {:?}", codec.name(), f.kind);
        }
    }
}

#[test]
fn corrupted_containers_never_panic() {
    // §6.7 regression: fuzz-ish corruption of real containers.
    let jpg = clean_jpeg(&spec(160), 7);
    let lepton = compress(&jpg, &CompressOptions::default()).expect("compress");
    let mut x = 0x5EEDu64;
    for _ in 0..200 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let mut bad = lepton.clone();
        let pos = (x as usize) % bad.len();
        bad[pos] ^= (x >> 17) as u8 | 1;
        let _ = decompress(&bad); // must return, not panic/hang
    }
    // Truncations too.
    for cut in [0usize, 1, 10, lepton.len() / 2, lepton.len() - 1] {
        let _ = decompress(&lepton[..cut]);
    }
}

#[test]
fn shutoff_and_backfill_flow() {
    let store = BlockStore::default();
    store.set_shutoff(true);
    let jpg = clean_jpeg(&spec(128), 8);
    let key = store.put_chunk(&jpg);
    assert_eq!(store.format_of(&key), Some(StoredFormat::Deflate));
    store.set_shutoff(false);
    let (n, _) = store.backfill_pass();
    assert_eq!(n, 1);
    assert_eq!(store.format_of(&key), Some(StoredFormat::Lepton));
    assert_eq!(store.get_chunk(&key).expect("chunk"), jpg);
}
