//! Cross-crate integration: the service layer wired into the
//! operational machinery — §6.6 timeout requeue, §5.7 shutoff-driven
//! Deflate fallback, and the storage layer fed through the socket.

use lepton::cluster::anomaly::TimeoutQueue;
use lepton::corpus::builder::{clean_jpeg, CorpusSpec};
use lepton::server::{client, serve, ClientError, Endpoint, ServiceConfig, Status};
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(60);

fn spec() -> CorpusSpec {
    CorpusSpec {
        min_dim: 64,
        max_dim: 160,
        ..Default::default()
    }
}

fn tcp_any() -> Endpoint {
    Endpoint::tcp("127.0.0.1:0").unwrap()
}

/// §6.6: a decode that exceeds the timeout window is not an error to
/// page a human about — it is queued and re-verified on an isolated,
/// healthy cluster; three consecutive clean decodes clear it.
#[test]
fn timed_out_decode_clears_through_requeue_pipeline() {
    // A big enough image that a 1 ms client deadline cannot be met.
    let big = CorpusSpec {
        min_dim: 640,
        max_dim: 900,
        ..Default::default()
    };
    let jpeg = clean_jpeg(&big, 42);
    let container = lepton::codec::compress(&jpeg, &Default::default()).unwrap();

    let overloaded = serve(&tcp_any(), ServiceConfig::default()).unwrap();
    let err = client::decompress(overloaded.endpoint(), &container, Duration::from_millis(1))
        .expect_err("1 ms deadline must trip");
    assert!(
        err.is_timeout(),
        "classified as the §6.6 condition: {err:?}"
    );

    // The pipeline: report, then drain against a healthy cluster.
    let healthy = serve(&tcp_any(), ServiceConfig::default()).unwrap();
    let mut queue = TimeoutQueue::default();
    queue.report_timeout(7);
    queue.drain(|_chunk_id| {
        client::decompress(healthy.endpoint(), &container, TIMEOUT)
            .map(|out| out == jpeg)
            .unwrap_or(false)
    });
    assert_eq!(queue.cleared, 1, "three clean decodes delete the entry");
    assert_eq!(queue.paged, 0, "no human was woken");
    assert!(queue.is_empty());

    overloaded.shutdown();
    healthy.shutdown();
}

/// §5.7 at the system level: with the shutoff switch on, the *storage*
/// layer keeps admitting chunks — via Deflate — while the conversion
/// service refuses Lepton encodes; flipping the switch back restores
/// Lepton service with no operator action.
#[test]
fn shutoff_degrades_to_deflate_then_recovers() {
    let switch =
        std::env::temp_dir().join(format!("lepton-pipeline-shutoff-{}", std::process::id()));
    let _ = std::fs::remove_file(&switch);
    let service = serve(
        &tcp_any(),
        ServiceConfig {
            shutoff_file: Some(switch.clone()),
            ..Default::default()
        },
    )
    .unwrap();
    let jpeg = clean_jpeg(&spec(), 9);

    // Engage the switch: the service refuses, and the caller does what
    // the blockserver does — store Deflate instead.
    std::fs::write(&switch, b"on").unwrap();
    let refusal = client::compress(service.endpoint(), &jpeg, TIMEOUT).unwrap_err();
    assert!(matches!(refusal, ClientError::Refused(Status::Shutdown)));
    let fallback = lepton::deflate::zlib_compress(&jpeg, lepton::deflate::Level::Default);
    assert_eq!(
        lepton::deflate::zlib_decompress(&fallback, jpeg.len()).unwrap(),
        jpeg,
        "durability holds through the degraded path"
    );

    // Disengage: full Lepton service resumes, and the Lepton form is
    // smaller than the Deflate fallback was.
    std::fs::remove_file(&switch).unwrap();
    let lepton = client::compress(service.endpoint(), &jpeg, TIMEOUT).unwrap();
    assert!(lepton.len() < fallback.len());
    assert_eq!(
        client::decompress(service.endpoint(), &lepton, TIMEOUT).unwrap(),
        jpeg
    );
    service.shutdown();
}

/// The serving path end to end: originals in a BlockStore, conversions
/// over the wire, downloads byte-exact — storage and service agreeing
/// on the same container format.
#[test]
fn store_and_serve_agree_on_containers() {
    use lepton::storage::{BlockStore, StoredFormat};
    let service = serve(&tcp_any(), ServiceConfig::default()).unwrap();
    let store = BlockStore::default();
    let jpeg = clean_jpeg(&spec(), 11);

    // Upload path: service compresses, store admits the original.
    let via_wire = client::compress(service.endpoint(), &jpeg, TIMEOUT).unwrap();
    let key = store.put_chunk(&jpeg);
    assert_eq!(store.format_of(&key), Some(StoredFormat::Lepton));

    // The wire container decodes to what the store returns.
    assert_eq!(
        client::decompress(service.endpoint(), &via_wire, TIMEOUT).unwrap(),
        store.get_chunk(&key).unwrap()
    );
    service.shutdown();
}
