//! Format evolution and the §6.7 "accidental deployment of an
//! incompatible old version" incident, on real containers.
//!
//! Lepton's format changed over its deployment: features were added
//! (old decoders reject newer files) and the format was made stricter
//! (new decoders reject the oldest files). Builds stay "qualified"
//! forever, and the deployment tool's blank-field default was the
//! *first* qualified build — until that combination broke availability
//! on Dec 12, 2016. This example replays the incident and the repair.
//!
//! Run with: `cargo run --release --example format_migration`

use lepton::codec::CompressOptions;
use lepton::corpus::builder::{clean_jpeg, CorpusSpec};
use lepton::storage::deploy::{
    repair_scan, Build, DeployOutcome, QualificationRegistry, VersionedChunk, VersionedCodec,
};

fn main() {
    // Three generations of the software, each qualified over a corpus
    // before release (§5.7).
    let mut registry = QualificationRegistry::default();
    registry.qualify(Build {
        hash: "v1-initial".into(),
        writes_version: 1,
        accepts_from: 1,
    });
    registry.qualify(Build {
        hash: "v2-features".into(),
        writes_version: 2,
        accepts_from: 1,
    });
    println!("qualified builds: {:?}", registry.qualified().len());

    // The fleet runs v2. A new team member deploys with the hash field
    // left blank; the tool's internal default is the first qualified
    // build.
    let DeployOutcome::Deployed(accidental) = registry.deploy(None) else {
        panic!("deploy must resolve")
    };
    println!("blank-field deploy resolves to: {} (!!)", accidental.hash);

    let modern = VersionedCodec::new(registry.qualified()[1].clone(), CompressOptions::default());
    let stale = VersionedCodec::new(accidental.clone(), CompressOptions::default());

    // Billions of files were uploaded during the two-hour window; here,
    // a dozen, striped across good and bad blockservers.
    let spec = CorpusSpec {
        min_dim: 96,
        max_dim: 200,
        ..Default::default()
    };
    let photos: Vec<Vec<u8>> = (0..12).map(|s| clean_jpeg(&spec, 7000 + s)).collect();
    let mut stored: Vec<VersionedChunk> = photos
        .iter()
        .enumerate()
        .map(|(i, jpeg)| {
            let codec = if i % 3 == 0 { &stale } else { &modern };
            VersionedChunk {
                container: codec.compress(jpeg).expect("clean JPEG compresses"),
                version: codec.writes_version(),
            }
        })
        .collect();

    // First warning sign: availability drops — v1 servers can't decode
    // v2 files.
    let ok_on_stale = stored
        .iter()
        .filter(|c| stale.decompress(&c.container).is_ok())
        .count();
    println!(
        "availability on mis-deployed servers: {}/{} ({:.1}%)",
        ok_on_stale,
        stored.len(),
        100.0 * ok_on_stale as f64 / stored.len() as f64
    );

    // Operators roll back, then run the repair scan: every file written
    // at a version the go-forward build refuses is decoded by a
    // compatible reader and re-encoded into the current format.
    let current = VersionedCodec::new(
        Build {
            hash: "v2-strict".into(),
            writes_version: 2,
            accepts_from: 2,
        },
        CompressOptions::default(),
    );
    let originals = |i: usize| Some(photos[i].clone());
    let repaired = repair_scan(&mut stored, &current, &originals).expect("repair");
    println!("repair scan re-encoded {repaired} files (paper: 18)");

    for (chunk, jpeg) in stored.iter().zip(&photos) {
        assert_eq!(
            &current
                .decompress(&chunk.container)
                .expect("post-repair decode"),
            jpeg,
            "byte-exact after migration"
        );
    }
    println!("all files decode byte-exactly on the current build ✓");

    // The post-incident tool: blank field = newest build, and
    // format-incompatible builds are no longer eligible at all.
    match registry.deploy_safe(None) {
        DeployOutcome::Deployed(b) => println!("safe tool default: {}", b.hash),
        DeployOutcome::UnknownHash(e) => println!("safe tool refused: {e}"),
    }
    match registry.deploy_safe(Some("v1-initial")) {
        DeployOutcome::Deployed(b) => println!("safe tool deployed: {}", b.hash),
        DeployOutcome::UnknownHash(e) => println!("safe tool refused: {e}"),
    }
}
