//! A photo-archive backend: store a mixed batch of user files in the
//! content-addressed block store, watch Lepton savings accrue, then
//! backfill the stragglers — the §5.6 deployment loop in miniature.
//!
//! Run with: `cargo run --release --example photo_archive`

use lepton::corpus::{Corpus, CorpusSpec};
use lepton::storage::{BlockStore, StoredFormat};

fn main() {
    let store = BlockStore::default();
    store.enable_safety_net(); // ramp-up posture (§5.7)

    // A user directory: mostly photos, some other files, some corrupt.
    let corpus = Corpus::generate(&CorpusSpec {
        count: 30,
        min_dim: 96,
        max_dim: 320,
        clean_fraction: 0.8,
        seed: 7,
    });

    let mut manifests = Vec::new();
    for f in &corpus.files {
        manifests.push((store.put_file(&f.data), f.data.clone()));
    }
    println!(
        "stored {} files / {} chunks; savings so far: {:.1}%",
        manifests.len(),
        store.chunk_count(),
        store.metrics.savings() * 100.0
    );
    println!("exit codes (paper §6.2 table):");
    for (code, n) in store.exit_codes.lock().iter() {
        println!("  {:<24} {}", code.label(), n);
    }

    // Every file reads back byte-exactly, whatever format it landed in.
    for (manifest, original) in &manifests {
        let restored = store.get_file(manifest).expect("stored files read back");
        assert_eq!(&restored, original);
    }
    println!("all files verified byte-exact ✓");

    // Simulate the shutoff switch drill, then backfill.
    store.set_shutoff(true);
    let late = corpus.files[0].data.clone();
    let key = store.put_chunk(&late[..late.len().min(1 << 20)]);
    assert_ne!(store.format_of(&key), Some(StoredFormat::Lepton));
    store.set_shutoff(false);
    let (converted, saved) = store.backfill_pass();
    println!("backfill converted {converted} chunk(s), saving {saved} bytes");
    println!("final savings: {:.1}%", store.metrics.savings() * 100.0);
}
