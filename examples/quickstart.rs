//! Quickstart: compress a JPEG with Lepton, verify the byte-exact
//! round trip, and inspect the savings.
//!
//! Run with: `cargo run --release --example quickstart`

use lepton::codec::{compress_with_stats, decompress, CompressOptions};
use lepton::corpus::builder::{clean_jpeg, CorpusSpec};

fn main() {
    // Synthesize a camera-like JPEG (stand-in for a user photo).
    let spec = CorpusSpec {
        min_dim: 256,
        max_dim: 512,
        ..Default::default()
    };
    let jpeg = clean_jpeg(&spec, 42);
    println!("input JPEG: {} bytes", jpeg.len());

    // Compress. `verify: true` (default) runs the production admission
    // rule: the container is decompressed and compared before returning.
    let (lepton, stats) =
        compress_with_stats(&jpeg, &CompressOptions::default()).expect("baseline JPEG compresses");
    println!(
        "lepton container: {} bytes ({:.1}% savings, {} thread segments)",
        lepton.len(),
        100.0 * (1.0 - lepton.len() as f64 / jpeg.len() as f64),
        stats.segments
    );

    // Decompress: bytes are identical to the original file.
    let restored = decompress(&lepton).expect("admitted containers decode");
    assert_eq!(restored, jpeg);
    println!("round trip: byte-exact ✓");

    // Component breakdown (the paper's Figure 4 view).
    println!(
        "input scan bits: 7x7={}k edge={}k dc={}k",
        stats.scan_in.ac77_bits / 8192,
        stats.scan_in.edge_bits / 8192,
        stats.scan_in.dc_bits / 8192,
    );
}
