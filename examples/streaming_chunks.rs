//! Distribution across independent chunks + streaming decode: split a
//! JPEG at hard 64 KiB boundaries, compress each chunk independently,
//! then decode an arbitrary middle chunk by itself and stream another —
//! the §3.4 serving path.
//!
//! Run with: `cargo run --release --example streaming_chunks`

use lepton::codec::DecompressOptions;
use lepton::codec::{compress_chunked, decompress, decompress_streaming, CompressOptions};
use lepton::corpus::builder::{clean_jpeg, CorpusSpec};

fn main() {
    let spec = CorpusSpec {
        min_dim: 640,
        max_dim: 768,
        ..Default::default()
    };
    let jpeg = clean_jpeg(&spec, 99);
    let chunk_size = 64 << 10;
    println!(
        "JPEG of {} bytes, chunked at {} KiB",
        jpeg.len(),
        chunk_size >> 10
    );

    let chunks = compress_chunked(&jpeg, chunk_size, &CompressOptions::default())
        .expect("chunked compression");
    println!("{} independent Lepton containers:", chunks.len());
    for (i, c) in chunks.iter().enumerate() {
        let orig = (jpeg.len() - i * chunk_size).min(chunk_size);
        println!(
            "  chunk {i}: {:>7} -> {:>7} bytes ({:.1}% savings)",
            orig,
            c.len(),
            100.0 * (1.0 - c.len() as f64 / orig as f64)
        );
    }

    // Serve only the middle chunk — no other chunk needed (the paper's
    // "decompress any substring" requirement).
    let mid = chunks.len() / 2;
    let part = decompress(&chunks[mid]).expect("independent decode");
    let start = mid * chunk_size;
    let end = ((mid + 1) * chunk_size).min(jpeg.len());
    assert_eq!(part, jpeg[start..end]);
    println!("middle chunk decoded independently ✓");

    // Stream the first chunk: fragments arrive in order, early.
    let mut fragments = 0usize;
    let mut received = Vec::new();
    decompress_streaming(
        &chunks[0],
        &DecompressOptions::default(),
        &mut |b: &[u8]| {
            fragments += 1;
            received.extend_from_slice(b);
        },
    )
    .expect("streaming decode");
    assert_eq!(received, jpeg[..chunk_size.min(jpeg.len())]);
    println!("chunk 0 streamed in {fragments} fragments ✓");

    // Reassemble everything.
    let mut whole = Vec::new();
    for c in &chunks {
        whole.extend(decompress(c).expect("decode"));
    }
    assert_eq!(whole, jpeg);
    println!("full reassembly byte-exact ✓");
}
