//! The production service layer over real sockets (§5.5): a local
//! blockserver conversion service on a Unix-domain socket, a dedicated
//! outsourcing cluster on TCP, and a router that sheds load with
//! power-of-two choices when the local machine is saturated.
//!
//! Run with: `cargo run --release --example conversion_service`

use lepton::corpus::builder::{clean_jpeg, CorpusSpec};
use lepton::server::{client, serve, Destination, Endpoint, Router, ServiceConfig, Strategy};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(60);

fn main() {
    // The local blockserver's Lepton process: listening on a UDS, as
    // in production ("Lepton operates by listening on a Unix-domain
    // socket for files").
    let sock = std::env::temp_dir().join(format!("lepton-example-{}.sock", std::process::id()));
    let local = serve(
        &Endpoint::uds(&sock),
        ServiceConfig {
            max_connections: 16,
            busy_threshold: 1, // tiny threshold so the demo outsources
            ..Default::default()
        },
    )
    .expect("bind local service");
    println!("local service:     {}", local.endpoint());

    // The dedicated outsourcing cluster: two machines on TCP ("the
    // blockserver instead will make a TCP connection to a machine
    // tagged for outsourcing").
    let dedicated: Vec<_> = (0..2)
        .map(|i| {
            let h = serve(
                &Endpoint::tcp("127.0.0.1:0").expect("loopback"),
                ServiceConfig::default(),
            )
            .expect("bind dedicated service");
            println!("dedicated node {i}:  {}", h.endpoint());
            h
        })
        .collect();

    let router = Router::new(
        local.endpoint().clone(),
        vec![],
        dedicated.iter().map(|h| h.endpoint().clone()).collect(),
        Strategy::ToDedicated,
        1,
        TIMEOUT,
    );

    // A burst of photo uploads: more simultaneous conversions than the
    // local machine wants to run (the Thursday-peak regime of Fig. 9).
    let spec = CorpusSpec {
        min_dim: 320,
        max_dim: 512,
        ..Default::default()
    };
    let photos: Vec<Vec<u8>> = (0..8).map(|s| clean_jpeg(&spec, 1000 + s)).collect();

    println!(
        "\nconverting {} uploads through the router...",
        photos.len()
    );
    let start = Instant::now();
    std::thread::scope(|scope| {
        let router = &router;
        for (i, jpeg) in photos.iter().enumerate() {
            scope.spawn(move || {
                let (lepton, dest) = router.compress(jpeg).expect("conversion");
                let back = lepton::codec::decompress(&lepton).expect("decode");
                assert_eq!(&back, jpeg, "byte-exact through the wire");
                let where_ = match dest {
                    Destination::Local => "local".to_string(),
                    Destination::Outsourced(ep) => format!("outsourced -> {ep}"),
                };
                println!(
                    "  upload {i}: {:>7} -> {:>7} bytes  [{where_}]",
                    jpeg.len(),
                    lepton.len()
                );
            });
        }
    });
    println!("burst done in {:?}", start.elapsed());

    // Where did the work land?
    println!(
        "\nrouting: {} local, {} outsourced, {} fallbacks",
        router.metrics.local.load(Ordering::Relaxed),
        router.metrics.outsourced.load(Ordering::Relaxed),
        router.metrics.fallbacks.load(Ordering::Relaxed),
    );
    for (i, h) in dedicated.iter().enumerate() {
        let s = h.stats();
        println!(
            "dedicated node {i}: served {} (high water {})",
            s.total_served, s.high_water
        );
    }
    let s = local.stats();
    println!(
        "local:            served {} (high water {})",
        s.total_served, s.high_water
    );

    // Load probes are first-class protocol citizens (the power-of-two
    // router uses them); so is liveness.
    client::ping(local.endpoint(), TIMEOUT).expect("ping");
    let probe = client::probe(local.endpoint(), TIMEOUT).expect("stats probe");
    println!(
        "probe: active={} busy_threshold={} — busy: {}",
        probe.active,
        probe.busy_threshold,
        probe.is_busy()
    );

    local.shutdown();
    for h in dedicated {
        h.shutdown();
    }
    println!("all services drained and stopped ✓");
}
