//! Operate the fleet: run the deployment simulator with and without
//! outsourcing and print the §5.5 comparison, then the backfill power
//! economics of §5.6.1.
//!
//! Run with: `cargo run --release --example fleet_simulation`

use lepton::cluster::backfill::{simulate_backfill, BackfillConfig, Economics};
use lepton::cluster::workload::DAY;
use lepton::cluster::{ClusterConfig, ClusterSim, OutsourcePolicy, WorkloadConfig};

fn main() {
    println!("== outsourcing (paper §5.5) ==");
    for (name, policy) in [
        ("Control", OutsourcePolicy::None),
        ("To self", OutsourcePolicy::ToSelf),
        ("To dedicated", OutsourcePolicy::ToDedicated),
    ] {
        let cfg = ClusterConfig {
            policy,
            horizon: DAY / 2.0,
            blockservers: 24,
            dedicated: 10,
            workload: WorkloadConfig {
                base_encode_rate: 9.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut r = ClusterSim::new(cfg).run();
        println!(
            "{:<14} p50 {:>5.2}s  p99 {:>5.2}s  outsourced {:>6}  completed {}",
            name,
            r.latency.percentile(50.0),
            r.latency.percentile(99.0),
            r.outsourced,
            r.completed
        );
    }

    println!("\n== backfill economics (paper §5.6.1) ==");
    let cfg = BackfillConfig::default();
    let eco = Economics::from_config(&cfg);
    println!("conversions per kWh: {:.0}", eco.conversions_per_kwh);
    println!("GiB saved per kWh:   {:.1}", eco.gib_saved_per_kwh());
    println!(
        "break-even electricity price vs $0.15/GiB-yr storage: ${:.2}/kWh",
        eco.breakeven_kwh_price(0.15, 1.0)
    );
    let samples = simulate_backfill(&cfg, 24.0, 100.0, 100.0);
    let peak = samples.iter().map(|s| s.power_kw).fold(0.0, f64::max);
    let conv = samples
        .iter()
        .map(|s| s.conversions_per_sec)
        .fold(0.0, f64::max);
    println!("fleet peak: {peak:.0} kW, {conv:.0} conversions/s (paper: 278 kW, 5583/s)");
}
